package timing

import "testing"

// TestClockReset pins the cycle-counter half of the Reset/Recycle
// contract: a recycled machine's clock rebases to 0 so every latency
// anchor (DRAM window start, refresh schedule) matches a fresh
// device's construction-time reading.
func TestClockReset(t *testing.T) {
	c := MustNewClock(1_000_000_000)
	c.Advance(12345)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now after Reset = %d, want 0", c.Now())
	}
	c.Advance(7)
	if c.Now() != 7 {
		t.Errorf("Now after Reset+Advance = %d, want 7", c.Now())
	}
}

// TestNoiseResetReplays pins the jitter half: Reset reseeds the
// generator from the stored seed, so a recycled machine's noise stream
// replays the fresh machine's sample for sample — the property the
// reset-equivalence difftest relies on to compare latencies exactly.
func TestNoiseResetReplays(t *testing.T) {
	n, err := NewNoise(42, 0.5, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]Cycles, 64)
	for i := range first {
		first[i] = n.Sample()
	}
	n.Reset()
	for i := range first {
		if got := n.Sample(); got != first[i] {
			t.Fatalf("sample %d after Reset = %d, want %d", i, got, first[i])
		}
	}
}
