// Package timing provides the simulator's cycle clock, the per-machine
// latency table, and a seeded noise model standing in for interrupts and
// other measurement disturbance. All simulated devices charge their costs
// to one shared Clock, so "how long did this phase take" is always the
// difference of two cycle readings — the analogue of rdtsc on the paper's
// test machines.
package timing

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Cycles counts CPU core cycles.
type Cycles uint64

// Clock is the global cycle counter for one simulated machine.
type Clock struct {
	now Cycles
	// freqHz converts cycles to wall time (e.g. 2.6e9 for a 2.6 GHz part).
	freqHz uint64
}

// NewClock creates a clock for a core running at freqHz cycles per second.
func NewClock(freqHz uint64) (*Clock, error) {
	if freqHz == 0 {
		return nil, fmt.Errorf("timing: frequency must be positive")
	}
	return &Clock{freqHz: freqHz}, nil
}

// MustNewClock is NewClock but panics on error.
func MustNewClock(freqHz uint64) *Clock {
	c, err := NewClock(freqHz)
	if err != nil {
		panic(err)
	}
	return c
}

// Now returns the current cycle count (the simulated rdtsc).
//
//pthammer:noalloc
func (c *Clock) Now() Cycles { return c.now }

// Advance moves the clock forward by n cycles.
//
//pthammer:noalloc
func (c *Clock) Advance(n Cycles) { c.now += n }

// Reset rebases the clock to cycle 0, the value a fresh NewClock
// starts at. Part of the Reset/Recycle contract: a recycled machine's
// phase timings are cycle deltas from zero, exactly as on a freshly
// constructed one.
//
//pthammer:noalloc
func (c *Clock) Reset() { c.now = 0 }

// FreqHz returns the core frequency in Hz.
func (c *Clock) FreqHz() uint64 { return c.freqHz }

// Duration converts a cycle count to simulated wall time.
func (c *Clock) Duration(n Cycles) time.Duration {
	// n / freq seconds; compute in float to avoid overflow for large n.
	sec := float64(n) / float64(c.freqHz)
	return time.Duration(sec * float64(time.Second))
}

// CyclesFor converts a wall-time duration into cycles at this clock's
// frequency.
func (c *Clock) CyclesFor(d time.Duration) Cycles {
	return Cycles(d.Seconds() * float64(c.freqHz))
}

// LatencyTable holds the cost in cycles of each microarchitectural event.
// The values are per-machine and calibrated so the simulated distributions
// land in the ranges the paper reports (Figures 5 and 6).
type LatencyTable struct {
	// Cache hierarchy hit latencies.
	L1Hit  Cycles
	L2Hit  Cycles
	LLCHit Cycles

	// DRAM access latencies by row-buffer outcome.
	DRAMRowHit      Cycles // row already open
	DRAMRowClosed   Cycles // bank precharged, row must be activated
	DRAMRowConflict Cycles // different row open: precharge + activate

	// TLB lookup costs.
	TLBL1Hit Cycles // dTLB hit
	TLBL2Hit Cycles // sTLB hit (after dTLB miss)

	// Paging-structure cache hit (per level consulted).
	PSCacheHit Cycles

	// PageWalkStep is the fixed per-level overhead of the hardware walker
	// on top of the memory access that fetches the entry.
	PageWalkStep Cycles

	// Register/ALU cost of one NOP (for the Figure 5 padding sweep).
	NOP Cycles

	// CLFlushCost models the clflush instruction used by the explicit
	// baseline.
	CLFlushCost Cycles

	// LLCArbitration is the extra cost of an LLC access that has to win
	// the shared slice back from another core: it is charged only when
	// the previous LLC access came from a different core, so a
	// single-core machine never pays it. Zero disables the charge.
	LLCArbitration Cycles

	// DRAMBankArbitration is the per-bank analogue: the scheduling
	// penalty when consecutive requests to one bank come from different
	// cores. Like LLCArbitration it can never fire on a single-core
	// machine and may be zero.
	DRAMBankArbitration Cycles
}

// DefaultLatencies returns a latency table with Sandy/Ivy Bridge-class
// values. Machine presets tweak individual entries.
func DefaultLatencies() LatencyTable {
	return LatencyTable{
		L1Hit:           4,
		L2Hit:           12,
		LLCHit:          30,
		DRAMRowHit:      90,
		DRAMRowClosed:   135,
		DRAMRowConflict: 190,
		TLBL1Hit:        1,
		TLBL2Hit:        7,
		PSCacheHit:      2,
		PageWalkStep:    3,
		NOP:             1,
		CLFlushCost:     40,
		// Contention costs for the multi-core mode; a single-core
		// machine never charges either (there is no other core to have
		// touched the shared structure since the last access).
		LLCArbitration:      8,
		DRAMBankArbitration: 24,
	}
}

// Validate reports an error if any latency is zero or the ordering
// invariants (L1 < L2 < LLC < DRAM; row hit < closed < conflict) are
// violated.
func (t LatencyTable) Validate() error {
	switch {
	case t.L1Hit == 0 || t.L2Hit == 0 || t.LLCHit == 0:
		return fmt.Errorf("timing: cache latencies must be positive")
	case !(t.L1Hit < t.L2Hit && t.L2Hit < t.LLCHit):
		return fmt.Errorf("timing: cache latencies must be strictly increasing (L1 %d, L2 %d, LLC %d)", t.L1Hit, t.L2Hit, t.LLCHit)
	case !(t.LLCHit < t.DRAMRowHit):
		return fmt.Errorf("timing: DRAM row hit (%d) must exceed LLC hit (%d)", t.DRAMRowHit, t.LLCHit)
	case !(t.DRAMRowHit < t.DRAMRowClosed && t.DRAMRowClosed < t.DRAMRowConflict):
		return fmt.Errorf("timing: DRAM latencies must order hit < closed < conflict")
	case t.TLBL1Hit == 0 || t.TLBL2Hit == 0:
		return fmt.Errorf("timing: TLB latencies must be positive")
	case !(t.TLBL1Hit < t.TLBL2Hit):
		return fmt.Errorf("timing: dTLB hit (%d) must be cheaper than sTLB hit (%d)", t.TLBL1Hit, t.TLBL2Hit)
	case t.PSCacheHit == 0:
		return fmt.Errorf("timing: paging-structure cache hit cost must be positive")
	case t.PageWalkStep == 0:
		return fmt.Errorf("timing: page walk step cost must be positive")
	case t.CLFlushCost == 0:
		return fmt.Errorf("timing: clflush cost must be positive")
	case t.NOP == 0:
		return fmt.Errorf("timing: NOP cost must be positive")
	}
	return nil
}

// Noise injects occasional latency spikes into timed measurements,
// standing in for interrupts, SMIs and prefetcher interference on the real
// machines. It is what gives Algorithm 2 its (bounded) false-positive
// rate. Deterministic for a given seed.
type Noise struct {
	rng *rand.Rand
	// seed rebuilt the stream on Reset; kept so a recycled source
	// replays exactly the sequence a fresh NewNoise(seed, ...) would.
	seed int64
	// prob is the per-measurement probability of a spike, in [0,1).
	prob float64
	// minSpike/maxSpike bound the added cycles when a spike fires.
	minSpike, maxSpike Cycles
}

// NewNoise creates a noise source. prob is the spike probability per
// sample; spikes add a uniform value in [minSpike, maxSpike].
func NewNoise(seed int64, prob float64, minSpike, maxSpike Cycles) (*Noise, error) {
	// The negated form also rejects NaN, which would otherwise pass
	// both one-sided checks and make every Sample spike.
	if !(prob >= 0 && prob < 1) {
		return nil, fmt.Errorf("timing: noise probability %v outside [0,1)", prob)
	}
	if maxSpike < minSpike {
		return nil, fmt.Errorf("timing: maxSpike %d < minSpike %d", maxSpike, minSpike)
	}
	// Sample draws from [minSpike, maxSpike] via Uint64() % (max-min+1);
	// a range spanning the full uint64 domain overflows that span to 0
	// and would divide by zero, so reject it here.
	if uint64(maxSpike-minSpike) == math.MaxUint64 {
		return nil, fmt.Errorf("timing: spike range [%d, %d] spans the full uint64 domain", minSpike, maxSpike)
	}
	return &Noise{rng: rand.New(rand.NewSource(seed)), seed: seed, prob: prob, minSpike: minSpike, maxSpike: maxSpike}, nil
}

// Reset rewinds the spike stream to its seed, so a recycled noise
// source produces the same sample sequence as a freshly constructed
// one. Part of the Reset/Recycle contract.
//
//pthammer:noalloc
func (n *Noise) Reset() { n.rng.Seed(n.seed) }

// Quiet returns a noise source that never spikes.
func Quiet() *Noise {
	n, err := NewNoise(0, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	return n
}

// Sample returns the extra cycles to add to one timed measurement.
//
//pthammer:noalloc
func (n *Noise) Sample() Cycles {
	if n.prob == 0 {
		return 0
	}
	if n.rng.Float64() >= n.prob {
		return 0
	}
	span := uint64(n.maxSpike - n.minSpike + 1)
	return n.minSpike + Cycles(n.rng.Uint64()%span)
}
