package timing

import (
	"math"
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	if _, err := NewClock(0); err == nil {
		t.Fatal("NewClock(0) accepted")
	}
	c := MustNewClock(2_600_000_000)
	if c.Now() != 0 || c.FreqHz() != 2_600_000_000 {
		t.Fatal("fresh clock state wrong")
	}
	c.Advance(100)
	c.Advance(17)
	if c.Now() != 117 {
		t.Fatalf("Now = %d, want 117", c.Now())
	}
}

func TestDurationCyclesRoundTrip(t *testing.T) {
	c := MustNewClock(1_000_000_000) // 1 GHz: 1 cycle == 1 ns
	if d := c.Duration(1000); d != time.Microsecond {
		t.Fatalf("Duration(1000) = %v, want 1µs", d)
	}
	if n := c.CyclesFor(time.Millisecond); n != 1_000_000 {
		t.Fatalf("CyclesFor(1ms) = %d, want 1e6", n)
	}
	// Round trip.
	if n := c.CyclesFor(c.Duration(123_456)); n != 123_456 {
		t.Fatalf("round trip = %d, want 123456", n)
	}
}

func TestDefaultLatenciesValidate(t *testing.T) {
	if err := DefaultLatencies().Validate(); err != nil {
		t.Fatalf("default table invalid: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*LatencyTable)
	}{
		{"zero L1", func(l *LatencyTable) { l.L1Hit = 0 }},
		{"L2 <= L1", func(l *LatencyTable) { l.L2Hit = l.L1Hit }},
		{"LLC <= L2", func(l *LatencyTable) { l.LLCHit = l.L2Hit }},
		{"DRAM hit <= LLC", func(l *LatencyTable) { l.DRAMRowHit = l.LLCHit }},
		{"conflict <= closed", func(l *LatencyTable) { l.DRAMRowConflict = l.DRAMRowClosed }},
		{"zero TLBL1Hit", func(l *LatencyTable) { l.TLBL1Hit = 0 }},
		{"zero TLBL2Hit", func(l *LatencyTable) { l.TLBL2Hit = 0 }},
		{"TLBL1 >= TLBL2", func(l *LatencyTable) { l.TLBL1Hit = l.TLBL2Hit }},
		{"zero PSCacheHit", func(l *LatencyTable) { l.PSCacheHit = 0 }},
		{"zero PageWalkStep", func(l *LatencyTable) { l.PageWalkStep = 0 }},
		{"zero CLFlushCost", func(l *LatencyTable) { l.CLFlushCost = 0 }},
		{"zero NOP", func(l *LatencyTable) { l.NOP = 0 }},
	}
	for _, tc := range cases {
		l := DefaultLatencies()
		tc.mutate(&l)
		if err := l.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid table", tc.name)
		}
	}
}

func TestNewNoiseRejections(t *testing.T) {
	if _, err := NewNoise(1, -0.1, 0, 10); err == nil {
		t.Error("negative prob accepted")
	}
	if _, err := NewNoise(1, 1.0, 0, 10); err == nil {
		t.Error("prob 1.0 accepted")
	}
	if _, err := NewNoise(1, math.NaN(), 0, 10); err == nil {
		t.Error("NaN prob accepted")
	}
	if _, err := NewNoise(1, 0.5, 10, 5); err == nil {
		t.Error("max < min accepted")
	}
	// Full-domain span used to overflow span arithmetic to zero and
	// divide by zero inside Sample.
	if _, err := NewNoise(1, 0.5, 0, Cycles(math.MaxUint64)); err == nil {
		t.Error("full uint64 spike span accepted")
	}
	// Maximal non-overflowing span is fine and must not panic.
	n, err := NewNoise(1, 0.999, 1, Cycles(math.MaxUint64))
	if err != nil {
		t.Fatalf("near-full span rejected: %v", err)
	}
	for i := 0; i < 64; i++ {
		n.Sample()
	}
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	a, err := NewNoise(42, 0.5, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewNoise(42, 0.5, 100, 200)
	spikes := 0
	for i := 0; i < 1000; i++ {
		sa, sb := a.Sample(), b.Sample()
		if sa != sb {
			t.Fatalf("sample %d diverged: %d vs %d", i, sa, sb)
		}
		if sa != 0 {
			spikes++
			if sa < 100 || sa > 200 {
				t.Fatalf("spike %d outside [100,200]", sa)
			}
		}
	}
	if spikes == 0 || spikes == 1000 {
		t.Fatalf("spike count %d implausible for prob 0.5", spikes)
	}
}

func TestQuietNeverSpikes(t *testing.T) {
	n := Quiet()
	for i := 0; i < 100; i++ {
		if s := n.Sample(); s != 0 {
			t.Fatalf("Quiet sampled %d", s)
		}
	}
}
