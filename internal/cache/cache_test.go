package cache

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// fakeDRAM is a terminal device with a fixed latency, standing in for
// the real DRAM model.
type fakeDRAM struct {
	clock   *timing.Clock
	lat     timing.Cycles
	lookups int
}

func (f *fakeDRAM) Lookup(mem.Access) mem.Result {
	f.lookups++
	f.clock.Advance(f.lat)
	return mem.Result{Latency: f.lat, Hit: false, Source: mem.LevelDRAM}
}

// tiny configs: L1 2 sets × 2 ways, L2 4 sets × 2 ways, LLC 4 sets × 4
// ways, 64 B lines.
func tinyConfigs() (l1, l2, llc Config) {
	l1 = Config{SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64}
	l2 = Config{SizeBytes: 4 * 2 * 64, Ways: 2, LineBytes: 64}
	llc = Config{SizeBytes: 4 * 4 * 64, Ways: 4, LineBytes: 64}
	return
}

func newTestHierarchy(t *testing.T) (*Hierarchy, *fakeDRAM, *timing.Clock, *perf.Counters) {
	t.Helper()
	clock := timing.MustNewClock(1_000_000_000)
	counters := &perf.Counters{}
	d := &fakeDRAM{clock: clock, lat: 200}
	l1, l2, llc := tinyConfigs()
	h, err := New(l1, l2, llc, d, clock, counters, timing.DefaultLatencies())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h, d, clock, counters
}

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 8, LineBytes: 64},
		{SizeBytes: 32 << 10, Ways: 0, LineBytes: 64},
		{SizeBytes: 32 << 10, Ways: 8, LineBytes: 0},
		{SizeBytes: 32 << 10, Ways: 8, LineBytes: 48},   // not a power of two
		{SizeBytes: 100, Ways: 3, LineBytes: 64},        // not divisible
		{SizeBytes: 3 * 8 * 64, Ways: 8, LineBytes: 64}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestNewRejectsMismatchedHierarchy(t *testing.T) {
	clock := timing.MustNewClock(1_000_000_000)
	counters := &perf.Counters{}
	d := &fakeDRAM{clock: clock, lat: 200}
	l1, l2, llc := tinyConfigs()

	l2bad := l2
	l2bad.LineBytes = 128
	if _, err := New(l1, l2bad, llc, d, clock, counters, timing.DefaultLatencies()); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	llcSmall := Config{SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64}
	if _, err := New(l1, l2, llcSmall, d, clock, counters, timing.DefaultLatencies()); err == nil {
		t.Error("non-inclusive-capable LLC accepted")
	}
	if _, err := New(l1, l2, llc, nil, clock, counters, timing.DefaultLatencies()); err == nil {
		t.Error("nil next device accepted")
	}
}

func TestMissFillsAndHitsDescendLevels(t *testing.T) {
	h, d, clock, counters := newTestHierarchy(t)
	lat := timing.DefaultLatencies()
	addr := phys.Addr(0x1000)

	// Cold miss goes to DRAM and fills every level.
	res := h.Lookup(mem.Access{Addr: addr})
	if res.Hit || res.Source != mem.LevelDRAM || res.Latency != 200 {
		t.Fatalf("cold lookup = %+v", res)
	}
	if d.lookups != 1 {
		t.Fatalf("DRAM lookups = %d", d.lookups)
	}
	if in1, in2, in3 := h.Contains(addr); !in1 || !in2 || !in3 {
		t.Fatalf("fill missing levels: %v %v %v", in1, in2, in3)
	}
	if counters.Read(perf.LLCReference) != 1 || counters.Read(perf.LongestLatCacheMiss) != 1 {
		t.Fatal("cold miss counters wrong")
	}

	// Warm repeat: L1 hit, no DRAM traffic, no LLC reference.
	res = h.Lookup(mem.Access{Addr: addr + 63}) // same line
	if !res.Hit || res.Source != mem.LevelL1 || res.Latency != lat.L1Hit {
		t.Fatalf("warm lookup = %+v", res)
	}
	if d.lookups != 1 || counters.Read(perf.LLCReference) != 1 {
		t.Fatal("L1 hit leaked to lower levels")
	}

	wantClock := timing.Cycles(200) + lat.L1Hit
	if clock.Now() != wantClock {
		t.Fatalf("clock = %d, want %d", clock.Now(), wantClock)
	}
}

func TestL2AndLLCHitPaths(t *testing.T) {
	h, _, _, _ := newTestHierarchy(t)
	lat := timing.DefaultLatencies()

	// L1 has 2 sets × 2 ways. Lines 0, 2, 4 (even line numbers) all
	// index L1 set 0; loading three of them evicts line 0 from L1 only.
	a0, a2, a4 := phys.Addr(0), phys.Addr(2*64), phys.Addr(4*64)
	h.Lookup(mem.Access{Addr: a0})
	h.Lookup(mem.Access{Addr: a2})
	h.Lookup(mem.Access{Addr: a4})
	if in1, _, _ := h.Contains(a0); in1 {
		t.Fatal("line 0 still in L1 after two conflicting fills")
	}

	// a0 now hits in L2 (L2 set 0 holds lines 0 and 4; line 2 went to
	// L2 set 2).
	res := h.Lookup(mem.Access{Addr: a0})
	if !res.Hit || res.Source != mem.LevelL2 || res.Latency != lat.L2Hit {
		t.Fatalf("expected L2 hit, got %+v", res)
	}
}

func TestInclusiveLLCBackInvalidates(t *testing.T) {
	h, d, _, _ := newTestHierarchy(t)

	// LLC set 0 has 4 ways; line numbers ≡ 0 (mod 4) map there.
	// Fill five such lines: the LRU one (line 0) is evicted from the
	// LLC and must be back-invalidated from L1/L2 too.
	target := phys.Addr(0)
	h.Lookup(mem.Access{Addr: target})
	for i := 1; i <= 4; i++ {
		h.Lookup(mem.Access{Addr: phys.Addr(i * 4 * 64)})
	}
	if in1, in2, in3 := h.Contains(target); in1 || in2 || in3 {
		t.Fatalf("line survived inclusive eviction: L1 %v L2 %v LLC %v", in1, in2, in3)
	}

	// The next access must go to DRAM again.
	before := d.lookups
	res := h.Lookup(mem.Access{Addr: target})
	if res.Hit || d.lookups != before+1 {
		t.Fatalf("evicted line did not refetch from DRAM: %+v", res)
	}
}

func TestFlush(t *testing.T) {
	h, d, clock, _ := newTestHierarchy(t)
	lat := timing.DefaultLatencies()
	addr := phys.Addr(0x2000)

	h.Lookup(mem.Access{Addr: addr})
	start := clock.Now()
	if got := h.Flush(addr); got != lat.CLFlushCost {
		t.Fatalf("Flush cost = %d, want %d", got, lat.CLFlushCost)
	}
	if clock.Now()-start != lat.CLFlushCost {
		t.Fatal("Flush did not charge the clock")
	}
	if in1, in2, in3 := h.Contains(addr); in1 || in2 || in3 {
		t.Fatal("Flush left the line cached")
	}
	before := d.lookups
	if res := h.Lookup(mem.Access{Addr: addr}); res.Hit || d.lookups != before+1 {
		t.Fatal("flushed line did not refetch from DRAM")
	}

	// Flushing an uncached line still costs the instruction.
	if got := h.Flush(phys.Addr(0x7000)); got != lat.CLFlushCost {
		t.Fatal("Flush of uncached line free")
	}
}

func TestLRUWithinSet(t *testing.T) {
	h, d, _, _ := newTestHierarchy(t)
	// L1 set 0, 2 ways: load lines 0 and 2, touch 0, then load 4.
	// The LRU victim must be 2, not 0.
	a0, a2, a4 := phys.Addr(0), phys.Addr(2*64), phys.Addr(4*64)
	h.Lookup(mem.Access{Addr: a0})
	h.Lookup(mem.Access{Addr: a2})
	h.Lookup(mem.Access{Addr: a0}) // refresh a0
	h.Lookup(mem.Access{Addr: a4})
	if in1, _, _ := h.Contains(a0); !in1 {
		t.Fatal("recently used line evicted from L1")
	}
	if in1, _, _ := h.Contains(a2); in1 {
		t.Fatal("LRU line survived in L1")
	}
	_ = d
}

// TestSharedAccessors: each per-core hierarchy knows its shared LLC
// slice, and the slice counts its attached cores.
func TestSharedAccessors(t *testing.T) {
	clock := timing.MustNewClock(1_000_000_000)
	counters := &perf.Counters{}
	d := &fakeDRAM{clock: clock, lat: 200}
	l1, l2, llc := tinyConfigs()
	shared, err := NewShared(llc, timing.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if shared.Cores() != 0 {
		t.Fatalf("fresh shared LLC reports %d cores", shared.Cores())
	}
	h, err := NewCore(l1, l2, shared, 0, d, clock, counters, timing.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	if h.Shared() != shared || shared.Cores() != 1 {
		t.Fatalf("attachment bookkeeping: shared match %v, cores %d", h.Shared() == shared, shared.Cores())
	}
}
