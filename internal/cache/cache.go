// Package cache models the data-cache hierarchy: per-core private L1
// and L2 levels over one shared, inclusive last-level cache, all
// set-associative with LRU replacement. Inclusivity is what makes the
// paper's LLC eviction sets work: evicting a line from the LLC
// back-invalidates it from every core's private levels, so a later
// load must go to DRAM — and, in the multi-core mode, an eviction
// caused by one core silently degrades another core's private copies,
// which is exactly the cross-core coupling the mt-* scenarios exploit.
// Flush models clflush for the explicit-hammer baseline.
//
// The split mirrors the hardware: SharedLLC is the one slice of
// cross-core state (tag array, arbitration bookkeeping, the registry
// of private levels to back-invalidate), while Hierarchy is one core's
// port onto it — it owns that core's L1/L2 and charges every latency,
// including LLC arbitration, to that core's clock and counters, so the
// clock/Result/PMC agreement invariant holds per core with any number
// of front-ends sharing the LLC.
package cache

import (
	"fmt"
	"math/bits"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Config sizes one cache level.
type Config struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() uint64 {
	return c.SizeBytes / (uint64(c.Ways) * c.LineBytes)
}

// Validate reports an error for degenerate or non-indexable geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0 || c.Ways <= 0 || c.LineBytes == 0:
		return fmt.Errorf("cache: size/ways/line must be positive (got %d/%d/%d)", c.SizeBytes, c.Ways, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d must be a power of two", c.LineBytes)
	case c.SizeBytes%(uint64(c.Ways)*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", s)
	}
	return nil
}

// newLevel builds one level as a tag-only mem.SetAssoc tagged by line
// number: caches track presence, never a payload.
func newLevel(cfg Config) *mem.SetAssoc {
	return mem.NewSetAssocTags(int(cfg.Sets()), cfg.Ways)
}

// SharedLLC is the cross-core state of one inclusive last-level cache:
// the tag array, the line geometry, and the contention bookkeeping.
// Per-core Hierarchy values attach to it via NewCore; everything here
// is mutated only through those per-core ports, which under the
// multi-core interleaver run one at a time.
type SharedLLC struct {
	cfg Config
	llc *mem.SetAssoc
	arb timing.Cycles
	// lastCore is the index of the core whose access touched the LLC
	// most recently, -1 before the first access. An access from a
	// different core pays the arbitration cost — which means a
	// single-core machine can never be charged.
	lastCore int
	// cores holds the registered per-core hierarchies, indexed by core;
	// an LLC eviction back-invalidates the victim line from every one
	// of them (inclusivity is a property of the whole machine, not of
	// the evicting core).
	cores []*Hierarchy
}

// NewShared builds the shared slice of an inclusive LLC. Per-core
// front-ends attach to it with NewCore; the arbitration cost comes
// from the machine's latency table.
func NewShared(llc Config, lat timing.LatencyTable) (*SharedLLC, error) {
	if err := llc.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	return &SharedLLC{
		cfg:      llc,
		llc:      newLevel(llc),
		arb:      lat.LLCArbitration,
		lastCore: -1,
	}, nil
}

// Cores returns how many per-core hierarchies are attached.
func (s *SharedLLC) Cores() int { return len(s.cores) }

// Reset restores the shared slice to its just-built state: the LLC tag
// array empties and the cross-core arbitration bookkeeping rewinds, so
// the first access of the next cohort pays no stale arbitration
// charge. Per-core private levels are reset by each Hierarchy's Reset
// — once per core, while this runs once per machine (the Reset/Recycle
// contract).
//
//pthammer:noalloc
func (s *SharedLLC) Reset() {
	s.llc.Reset()
	s.lastCore = -1
}

// backInvalidate preserves inclusivity machine-wide: the evicted LLC
// line is dropped from every attached core's private levels, whichever
// core's fill caused the eviction.
//
//pthammer:noalloc
func (s *SharedLLC) backInvalidate(line uint64) {
	for _, h := range s.cores {
		h.l1.Invalidate(line)
		h.l2.Invalidate(line)
	}
}

// Hierarchy is one core's port onto the cache subsystem: private
// L1→L2 plus the shared LLC, a mem.Device that forwards LLC misses to
// the next device (the core's DRAM port). All latencies — private
// hits, LLC hits, and LLC arbitration — are charged to this core's
// clock, so N hierarchies over one SharedLLC keep N independent
// clock/Result/PMC agreements.
type Hierarchy struct {
	l1, l2    *mem.SetAssoc
	shared    *SharedLLC
	core      int
	lineShift uint
	next      mem.Device
	clock     *timing.Clock
	counters  *perf.Counters

	l1Hit, l2Hit, llcHit, flushCost timing.Cycles
}

// New builds a single-core hierarchy: a private SharedLLC with this
// hierarchy as its only attached core. All three levels must share one
// line size, and the LLC must be large enough to hold the private
// levels (the inclusive property the eviction-set algorithms rely on).
func New(l1, l2, llc Config, next mem.Device, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*Hierarchy, error) {
	shared, err := NewShared(llc, lat)
	if err != nil {
		return nil, err
	}
	return NewCore(l1, l2, shared, 0, next, clock, counters, lat)
}

// NewCore builds core's hierarchy over an existing shared LLC and
// attaches it. Cores must attach in index order (core == number
// already attached), which the machine facade guarantees; the check
// keeps a miswired machine from silently aliasing two cores' private
// levels under one index.
func NewCore(l1, l2 Config, shared *SharedLLC, core int, next mem.Device, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*Hierarchy, error) {
	if shared == nil {
		return nil, fmt.Errorf("cache: shared LLC must be non-nil")
	}
	for _, c := range []Config{l1, l2} {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if l1.LineBytes != l2.LineBytes || l2.LineBytes != shared.cfg.LineBytes {
		return nil, fmt.Errorf("cache: line sizes differ (L1 %d, L2 %d, LLC %d)", l1.LineBytes, l2.LineBytes, shared.cfg.LineBytes)
	}
	if shared.cfg.SizeBytes < l1.SizeBytes+l2.SizeBytes {
		return nil, fmt.Errorf("cache: inclusive LLC (%d B) smaller than L1+L2 (%d B)", shared.cfg.SizeBytes, l1.SizeBytes+l2.SizeBytes)
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if next == nil || clock == nil || counters == nil {
		return nil, fmt.Errorf("cache: next device, clock and counters must be non-nil")
	}
	if core != len(shared.cores) {
		return nil, fmt.Errorf("cache: core %d attached out of order (want %d)", core, len(shared.cores))
	}
	h := &Hierarchy{
		l1:        newLevel(l1),
		l2:        newLevel(l2),
		shared:    shared,
		core:      core,
		lineShift: uint(bits.TrailingZeros64(l1.LineBytes)),
		next:      next,
		clock:     clock,
		counters:  counters,
		l1Hit:     lat.L1Hit,
		l2Hit:     lat.L2Hit,
		llcHit:    lat.LLCHit,
		flushCost: lat.CLFlushCost,
	}
	shared.cores = append(shared.cores, h)
	return h, nil
}

// Shared returns the LLC slice this hierarchy is attached to.
func (h *Hierarchy) Shared() *SharedLLC { return h.shared }

// Reset empties this core's private levels (L1 and L2). The shared LLC
// is reset separately via SharedLLC.Reset, because on a multi-core
// machine it must be reset exactly once, not once per core.
//
//pthammer:noalloc
func (h *Hierarchy) Reset() {
	h.l1.Reset()
	h.l2.Reset()
}

// lineOf returns the line number containing the address.
//
//pthammer:noalloc
func (h *Hierarchy) lineOf(a phys.Addr) uint64 { return uint64(a) >> h.lineShift }

// Lookup walks L1→L2→LLC and forwards a full miss to the next device,
// filling the line into every level on the way (inclusive fill). Each
// level is probed with a single fused LookupInsert scan: a level that
// misses will be filled with the line no matter where it is eventually
// served from, so the miss path installs it in the same pass that
// detected the miss instead of rescanning the set later. Crossing into
// the shared LLC behind another core's access additionally charges the
// arbitration cost. The whole latency — serving level plus any
// arbitration — is charged to this core's clock.
//
//pthammer:noalloc
func (h *Hierarchy) Lookup(a mem.Access) mem.Result {
	ln := h.lineOf(a.Addr)
	if hit, _, _ := h.l1.LookupInsert(ln); hit {
		h.clock.Advance(h.l1Hit)
		return mem.Result{Latency: h.l1Hit, Hit: true, Source: mem.LevelL1}
	}
	if hit, _, _ := h.l2.LookupInsert(ln); hit {
		h.clock.Advance(h.l2Hit)
		return mem.Result{Latency: h.l2Hit, Hit: true, Source: mem.LevelL2}
	}
	h.counters.Inc(perf.LLCReference)
	s := h.shared
	var arb timing.Cycles
	if s.lastCore != h.core {
		if s.lastCore >= 0 {
			arb = s.arb
		}
		s.lastCore = h.core
	}
	hit, victim, evicted := s.llc.LookupInsert(ln)
	if hit {
		lat := h.llcHit + arb
		h.clock.Advance(lat)
		return mem.Result{Latency: lat, Hit: true, Source: mem.LevelLLC}
	}
	// An LLC fill that evicted a (different) line back-invalidates it
	// from every core's private levels to preserve inclusivity. The
	// victim can never be ln itself: the insert just made ln the set's
	// MRU way.
	if evicted {
		s.backInvalidate(victim)
	}
	h.counters.Inc(perf.LongestLatCacheMiss)
	if arb > 0 {
		h.clock.Advance(arb)
	}
	res := h.next.Lookup(a) //pthammer:alloc-ok interface dispatch to the wired memory device, itself noalloc
	return mem.Result{Latency: res.Latency + arb, Hit: false, Source: res.Source}
}

// Flush models clflush: the line is dropped from every private level
// of every attached core and from the shared LLC (clflush is a
// coherence-domain operation, not a per-core one), and the fixed
// instruction cost is charged to the flushing core whether or not the
// line was cached anywhere.
//
//pthammer:noalloc
func (h *Hierarchy) Flush(a phys.Addr) timing.Cycles {
	ln := h.lineOf(a)
	h.shared.backInvalidate(ln)
	h.shared.llc.Invalidate(ln)
	h.clock.Advance(h.flushCost)
	return h.flushCost
}

// Contains reports which levels currently hold the address's line from
// this core's point of view (its private levels, the shared LLC), for
// tests asserting the inclusive property.
func (h *Hierarchy) Contains(a phys.Addr) (inL1, inL2, inLLC bool) {
	ln := h.lineOf(a)
	return h.l1.Contains(ln), h.l2.Contains(ln), h.shared.llc.Contains(ln)
}
