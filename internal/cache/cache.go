// Package cache models the three-level data-cache hierarchy: private
// L1 and L2 plus a shared, inclusive last-level cache, all
// set-associative with LRU replacement. Inclusivity is what makes the
// paper's LLC eviction sets work: evicting a line from the LLC
// back-invalidates it from the private levels, so a later load must go
// to DRAM. Flush models clflush for the explicit-hammer baseline.
package cache

import (
	"fmt"
	"math/bits"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Config sizes one cache level.
type Config struct {
	SizeBytes uint64
	Ways      int
	LineBytes uint64
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() uint64 {
	return c.SizeBytes / (uint64(c.Ways) * c.LineBytes)
}

// Validate reports an error for degenerate or non-indexable geometry.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes == 0 || c.Ways <= 0 || c.LineBytes == 0:
		return fmt.Errorf("cache: size/ways/line must be positive (got %d/%d/%d)", c.SizeBytes, c.Ways, c.LineBytes)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d must be a power of two", c.LineBytes)
	case c.SizeBytes%(uint64(c.Ways)*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line (%d*%d)", c.SizeBytes, c.Ways, c.LineBytes)
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", s)
	}
	return nil
}

// newLevel builds one level as a mem.SetAssoc tagged by line number.
func newLevel(cfg Config) *mem.SetAssoc {
	return mem.NewSetAssoc(int(cfg.Sets()), cfg.Ways)
}

// Hierarchy is the L1→L2→LLC chain, a mem.Device that forwards LLC
// misses to the next device (DRAM).
type Hierarchy struct {
	l1, l2, llc *mem.SetAssoc
	lineShift   uint
	next        mem.Device
	clock       *timing.Clock
	counters    *perf.Counters

	l1Hit, l2Hit, llcHit, flushCost timing.Cycles
}

// New builds the hierarchy. All three levels must share one line size,
// and the LLC must be large enough to hold the private levels (the
// inclusive property the eviction-set algorithms rely on).
func New(l1, l2, llc Config, next mem.Device, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*Hierarchy, error) {
	for _, c := range []Config{l1, l2, llc} {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if l1.LineBytes != l2.LineBytes || l2.LineBytes != llc.LineBytes {
		return nil, fmt.Errorf("cache: line sizes differ (L1 %d, L2 %d, LLC %d)", l1.LineBytes, l2.LineBytes, llc.LineBytes)
	}
	if llc.SizeBytes < l1.SizeBytes+l2.SizeBytes {
		return nil, fmt.Errorf("cache: inclusive LLC (%d B) smaller than L1+L2 (%d B)", llc.SizeBytes, l1.SizeBytes+l2.SizeBytes)
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if next == nil || clock == nil || counters == nil {
		return nil, fmt.Errorf("cache: next device, clock and counters must be non-nil")
	}
	return &Hierarchy{
		l1:        newLevel(l1),
		l2:        newLevel(l2),
		llc:       newLevel(llc),
		lineShift: uint(bits.TrailingZeros64(l1.LineBytes)),
		next:      next,
		clock:     clock,
		counters:  counters,
		l1Hit:     lat.L1Hit,
		l2Hit:     lat.L2Hit,
		llcHit:    lat.LLCHit,
		flushCost: lat.CLFlushCost,
	}, nil
}

// lineOf returns the line number containing the address.
//
//pthammer:noalloc
func (h *Hierarchy) lineOf(a phys.Addr) uint64 { return uint64(a) >> h.lineShift }

// Lookup walks L1→L2→LLC and forwards a full miss to the next device,
// filling the line into every level on the way (inclusive fill). Each
// level is probed with a single fused LookupInsert scan: a level that
// misses will be filled with the line no matter where it is eventually
// served from, so the miss path installs it in the same pass that
// detected the miss instead of rescanning the set later. The serving
// level's latency is charged to the shared clock.
//
//pthammer:noalloc
func (h *Hierarchy) Lookup(a mem.Access) mem.Result {
	ln := h.lineOf(a.Addr)
	if hit, _, _ := h.l1.LookupInsert(ln); hit {
		h.clock.Advance(h.l1Hit)
		return mem.Result{Latency: h.l1Hit, Hit: true, Source: mem.LevelL1}
	}
	if hit, _, _ := h.l2.LookupInsert(ln); hit {
		h.clock.Advance(h.l2Hit)
		return mem.Result{Latency: h.l2Hit, Hit: true, Source: mem.LevelL2}
	}
	h.counters.Inc(perf.LLCReference)
	hit, victim, evicted := h.llc.LookupInsert(ln)
	if hit {
		h.clock.Advance(h.llcHit)
		return mem.Result{Latency: h.llcHit, Hit: true, Source: mem.LevelLLC}
	}
	// An LLC fill that evicted a (different) line back-invalidates it
	// from the private levels to preserve inclusivity. The victim can
	// never be ln itself: the insert just made ln the set's MRU way.
	if evicted {
		h.l1.Invalidate(victim)
		h.l2.Invalidate(victim)
	}
	h.counters.Inc(perf.LongestLatCacheMiss)
	res := h.next.Lookup(a) //pthammer:alloc-ok interface dispatch to the wired memory device, itself noalloc
	return mem.Result{Latency: res.Latency, Hit: false, Source: res.Source}
}

// Flush models clflush: the line is dropped from every level and the
// fixed instruction cost is charged whether or not it was cached.
func (h *Hierarchy) Flush(a phys.Addr) timing.Cycles {
	ln := h.lineOf(a)
	h.l1.Invalidate(ln)
	h.l2.Invalidate(ln)
	h.llc.Invalidate(ln)
	h.clock.Advance(h.flushCost)
	return h.flushCost
}

// Contains reports which levels currently hold the address's line,
// for tests asserting the inclusive property.
func (h *Hierarchy) Contains(a phys.Addr) (inL1, inL2, inLLC bool) {
	ln := h.lineOf(a)
	return h.l1.Contains(ln), h.l2.Contains(ln), h.llc.Contains(ln)
}
