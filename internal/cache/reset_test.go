package cache

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/phys"
)

// TestResetSplitsPrivateAndShared pins the cache half of the
// Reset/Recycle contract, including the multi-core split: a
// Hierarchy.Reset empties only that core's private L1/L2 (on a
// multi-core machine it runs once per core), while the LLC is emptied
// exactly once via SharedLLC.Reset. A lookup between the two resets
// must therefore still be served by the shared slice without DRAM
// traffic, and only after the shared reset does the line re-miss all
// the way down.
func TestResetSplitsPrivateAndShared(t *testing.T) {
	h, d, _, _ := newTestHierarchy(t)
	addr := phys.Addr(0x2000)

	h.Lookup(mem.Access{Addr: addr})
	if d.lookups != 1 {
		t.Fatalf("cold fill: DRAM lookups = %d, want 1", d.lookups)
	}

	h.Reset()
	if in1, in2, in3 := h.Contains(addr); in1 || in2 || !in3 {
		t.Fatalf("post private Reset Contains = %v %v %v, want false false true", in1, in2, in3)
	}
	res := h.Lookup(mem.Access{Addr: addr})
	if !res.Hit || res.Source != mem.LevelLLC || d.lookups != 1 {
		t.Fatalf("post private Reset lookup = %+v (DRAM lookups %d), want LLC hit without DRAM traffic", res, d.lookups)
	}

	h.Reset()
	h.Shared().Reset()
	if in1, in2, in3 := h.Contains(addr); in1 || in2 || in3 {
		t.Fatalf("line survived full reset: %v %v %v", in1, in2, in3)
	}
	res = h.Lookup(mem.Access{Addr: addr})
	if res.Hit || res.Source != mem.LevelDRAM || d.lookups != 2 {
		t.Fatalf("post full reset lookup = %+v (DRAM lookups %d), want fresh cold miss", res, d.lookups)
	}
}
