// Package clockcharge makes the latency-accounting invariant structural:
// every mem.Device/mem.Translator implementation — a Lookup or Translate
// method taking a mem.Access and returning a mem.Result — must advance
// the shared timing.Clock on every path that returns a Result. The
// simulator's entire measurement story (Figure 5/6 latency histograms,
// Probe verdicts) is cycle differences on that one clock, so a device
// that reports a latency without charging it silently skews every
// downstream distribution.
//
// A return is considered charged when a lexically earlier call in the
// same method either advances a timing.Clock or delegates to another
// device/translator (which this analyzer holds to the same contract).
// Genuinely free paths can carry //pthammer:nocharge-ok <why> on the
// return line.
package clockcharge

import (
	"go/ast"
	"go/token"
	"go/types"

	"pthammer/internal/analysis/framework"
)

// Analyzer is the clock-accounting check.
var Analyzer = &framework.Analyzer{
	Name: "clockcharge",
	Doc:  "require mem.Device/mem.Translator implementations to advance the clock before returning a Result",
	Run:  run,
}

func run(pass *framework.Pass) error {
	ann := framework.CollectAnnotations(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if fd.Name.Name != "Lookup" && fd.Name.Name != "Translate" {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig, _ := obj.Type().(*types.Signature)
			if sig == nil || !isDeviceSig(sig) {
				continue
			}
			checkMethod(pass, ann, fd)
		}
	}
	return nil
}

// isMemType reports whether t is the named type name from a package
// whose import path ends in internal/mem.
func isMemType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		framework.PathMatches(obj.Pkg().Path(), "internal/mem")
}

// isDeviceSig matches the mem.Device/mem.Translator access shape: a
// mem.Access parameter and a mem.Result among the results.
func isDeviceSig(sig *types.Signature) bool {
	hasAccess := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isMemType(sig.Params().At(i).Type(), "Access") {
			hasAccess = true
		}
	}
	if !hasAccess {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isMemType(sig.Results().At(i).Type(), "Result") {
			return true
		}
	}
	return false
}

// checkMethod verifies every return in the method body is preceded by a
// charge.
func checkMethod(pass *framework.Pass, ann *framework.Annotations, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Collect the positions of charging calls: Clock.Advance, or
	// delegation to another device/translator.
	var charges []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isChargeCall(info, call) {
			charges = append(charges, call.Pos())
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Returns inside literals are not the method's returns.
			return false
		case *ast.ReturnStmt:
			if ann.At("nocharge-ok", n.Pos()) {
				return true
			}
			for _, p := range charges {
				if p < n.Pos() {
					return true
				}
			}
			pass.Reportf(n.Pos(), "%s returns a mem.Result without advancing the clock: charge the latency with Clock.Advance (or delegate) first, or annotate //pthammer:nocharge-ok <why>", framework.DeclName(fd))
		}
		return true
	})
}

// isChargeCall reports whether the call advances a timing.Clock or
// delegates to another Lookup/Translate returning a mem.Result.
func isChargeCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.FuncFor(info, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Advance":
		tn, pkgPath := framework.ReceiverTypeName(fn)
		return tn == "Clock" && framework.PathMatches(pkgPath, "internal/timing")
	case "Lookup", "Translate":
		return isDeviceSig(sig)
	}
	return false
}
