// Package timing is a stub of the real internal/timing clock: the
// analyzer matches the Clock type by name and package-path suffix.
package timing

// Cycles counts cycles.
type Cycles uint64

// Clock is the shared cycle counter stub.
type Clock struct{ now Cycles }

// Advance moves the clock forward.
func (c *Clock) Advance(n Cycles) { c.now += n }

// Now reads the clock.
func (c *Clock) Now() Cycles { return c.now }
