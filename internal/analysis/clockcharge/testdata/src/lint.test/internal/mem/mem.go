// Package mem is a stub of the real internal/mem contract types.
package mem

import "lint.test/internal/timing"

// Kind distinguishes access kinds.
type Kind int

// Access is one memory access.
type Access struct {
	Addr uint64
	Kind Kind
}

// Result is what a device reports for one access.
type Result struct {
	Latency timing.Cycles
	Hit     bool
}

// Device serves accesses.
type Device interface {
	Lookup(Access) Result
}

// Translator resolves accesses to frames.
type Translator interface {
	Translate(Access) (uint64, Result)
}
