package dev

import "lint.test/internal/mem"

// Fake is a test-file device: _test.go files are exempt, fakes need no
// clock.
type Fake struct{}

// Lookup is uncharged but unflagged (test file).
func (f *Fake) Lookup(a mem.Access) mem.Result {
	return mem.Result{Hit: true}
}
