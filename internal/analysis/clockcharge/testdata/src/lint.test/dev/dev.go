// Package dev is a clockcharge fixture with charged, delegating,
// uncharged, and exempted device implementations.
package dev

import (
	"lint.test/internal/mem"
	"lint.test/internal/timing"
)

// Good charges every path: Advance on hits, delegation on misses.
type Good struct {
	clock *timing.Clock
	next  mem.Device
}

// Lookup is fully charged.
func (g *Good) Lookup(a mem.Access) mem.Result {
	if a.Kind == 0 {
		g.clock.Advance(4)
		return mem.Result{Latency: 4, Hit: true}
	}
	res := g.next.Lookup(a)
	return res
}

// Bad returns a Result on its first path without touching the clock.
type Bad struct {
	clock *timing.Clock
}

// Lookup forgets to charge the early-out.
func (b *Bad) Lookup(a mem.Access) mem.Result {
	if a.Kind == 0 {
		return mem.Result{Hit: true} // want `Bad\.Lookup returns a mem\.Result without advancing the clock`
	}
	b.clock.Advance(90)
	return mem.Result{Latency: 90}
}

// Walker is a charged Translator implementation.
type Walker struct {
	clock *timing.Clock
}

// Translate charges the walk cost before returning.
func (w *Walker) Translate(a mem.Access) (uint64, mem.Result) {
	w.clock.Advance(3)
	return a.Addr >> 12, mem.Result{Latency: 3}
}

// LazyWalker never charges.
type LazyWalker struct{}

// Translate is uncharged on its only path.
func (w *LazyWalker) Translate(a mem.Access) (uint64, mem.Result) {
	return 0, mem.Result{} // want `LazyWalker\.Translate returns a mem\.Result without advancing the clock`
}

// Free is a genuinely zero-cost fixture device carrying the reviewed
// exemption.
type Free struct{}

// Lookup is exempted.
func (f *Free) Lookup(a mem.Access) mem.Result {
	return mem.Result{Hit: true} //pthammer:nocharge-ok zero-cost fixture device
}

// NotADevice has the method names but not the signature shape: its
// returns are not checked.
type NotADevice struct{}

// Lookup takes a raw address, not a mem.Access.
func (n *NotADevice) Lookup(addr uint64) mem.Result {
	return mem.Result{}
}

// Translate returns no mem.Result.
func (n *NotADevice) Translate(a mem.Access) uint64 {
	return a.Addr
}
