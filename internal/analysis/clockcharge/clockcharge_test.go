package clockcharge_test

import (
	"testing"

	"pthammer/internal/analysis/analyzertest"
	"pthammer/internal/analysis/clockcharge"
)

func TestClockCharge(t *testing.T) {
	analyzertest.Run(t, clockcharge.Analyzer, "testdata",
		"lint.test/internal/timing",
		"lint.test/internal/mem",
		"lint.test/dev",
	)
}
