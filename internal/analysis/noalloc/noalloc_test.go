package noalloc_test

import (
	"testing"

	"pthammer/internal/analysis/analyzertest"
	"pthammer/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analyzertest.Run(t, noalloc.Analyzer, "testdata",
		"lint.test/hotdep",
		"lint.test/hot",
		"lint.test/internal/payload",
	)
}
