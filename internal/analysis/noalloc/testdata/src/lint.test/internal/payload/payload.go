// Package payload is the required-annotation fixture: its import path
// ends in internal/payload, so the analyzer demands //pthammer:noalloc
// on Executor.Run. This copy deliberately omits the annotation.
package payload

// Executor mirrors the real dispatch-loop receiver.
type Executor struct{ pc int }

// Run is a required hot path but is not annotated.
func (e *Executor) Run() int { // want `Executor\.Run must carry //pthammer:noalloc`
	e.pc++
	return e.pc
}
