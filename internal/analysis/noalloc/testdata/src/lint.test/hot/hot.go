// Package hot is the noalloc fixture: annotated functions trip every
// rule, exemptions and allowlists are exercised, unannotated functions
// are ignored.
package hot

import (
	"fmt"
	"math/bits"
	"math/rand"

	"lint.test/hotdep"
)

// sampler is a dynamic dependency the analyzer cannot see through.
type sampler interface {
	Sample() int
}

// stamp implements fmt.Stringer for the boxing case.
type stamp struct{ n int }

func (s stamp) String() string { return "stamp" }

// Probe is the fixture hot-path state.
type Probe struct {
	buf     []int
	table   map[int]int
	dev     sampler
	counter *hotdep.Counter
	name    string
}

// Clean is fully allocation-free: bit arithmetic, annotated callees in
// both this package and the imported one.
//
//pthammer:noalloc
func (p *Probe) Clean(x int) int {
	p.counter.Inc()
	return hotdep.Step(bits.OnesCount(uint(x))) + p.local(x)
}

// local is an annotated same-package callee.
//
//pthammer:noalloc
func (p *Probe) local(x int) int { return x &^ 1 }

// Sample draws from a seeded generator: rand methods are allowlisted.
//
//pthammer:noalloc
func Sample(rng *rand.Rand) float64 { return rng.Float64() }

// Guard panics on bad input: the panic argument subtree (including its
// fmt call and string concatenation) is exempt.
//
//pthammer:noalloc
func (p *Probe) Guard(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("hot: bad input %d", x))
	}
	return x
}

// Reserve carries reviewed line exemptions for its amortized growth.
//
//pthammer:noalloc
func (p *Probe) Reserve(x int) {
	p.buf = append(p.buf, x) //pthammer:alloc-ok amortized growth, fixture
}

// Dirty trips one rule per line.
//
//pthammer:noalloc
func (p *Probe) Dirty(x int) int {
	b := make([]int, x)                // want `make allocates in noalloc function Probe\.Dirty`
	b = append(b, x)                   // want `append may grow its backing array in noalloc function Probe\.Dirty`
	p.table[x] = x                     // want `map write in noalloc function Probe\.Dirty`
	s := p.name + "!"                  // want `string concatenation allocates in noalloc function Probe\.Dirty`
	fmt.Println(s)                     // want `fmt\.Println allocates in noalloc function Probe\.Dirty` `argument boxes a concrete value into an interface parameter`
	_ = hotdep.Grow(x)                 // want `call to hotdep\.Grow from noalloc function Probe\.Dirty: callee is not annotated`
	n := p.dev.Sample()                // want `interface method call sampler\.Sample in noalloc function Probe\.Dirty`
	f := func() int { return x }       // want `function literal captures "x": closure allocation in noalloc function Probe\.Dirty`
	var str fmt.Stringer = stamp{n: x} // want `declaration boxes a concrete value into an interface in noalloc function Probe\.Dirty`
	_ = str
	y := f() // want `dynamic call in noalloc function Probe\.Dirty`
	return len(b) + n + y
}

// boxReturn boxes at the return site.
//
//pthammer:noalloc
func boxReturn(x int) fmt.Stringer {
	return stamp{n: x} // want `return boxes a concrete value into an interface in noalloc function boxReturn`
}

// boxPointer returns a pointer through the interface: pointers fit the
// interface word, no allocation at the conversion.
//
//pthammer:noalloc
func boxPointer(s *stamp) fmt.Stringer {
	return s
}

// Unchecked has no annotation: nothing here is flagged.
func Unchecked(x int) []int {
	out := make([]int, 0, x)
	for i := 0; i < x; i++ {
		out = append(out, i)
	}
	return out
}
