// Package hotdep is the dependency fixture for noalloc's cross-package
// fact flow: hot imports it and may only call its annotated functions.
package hotdep

// Step is allocation-free and annotated, so callers may use it.
//
//pthammer:noalloc
func Step(n int) int { return n + 1 }

// Grow is deliberately unannotated: calling it from a noalloc function
// is flagged.
func Grow(n int) []int { return make([]int, n) }

// Counter is a stub device with one annotated method.
type Counter struct{ n uint64 }

// Inc is annotated so hot paths can bump it.
//
//pthammer:noalloc
func (c *Counter) Inc() { c.n++ }
