// Package noalloc verifies the 0 allocs/op contract on the simulator's
// steady-state hot paths. A function whose doc comment carries
// //pthammer:noalloc may not contain allocating constructs, and every
// statically-resolved module callee must itself be annotated, so the
// guarantee composes across packages (an exported fact carries each
// package's annotated set to its importers).
//
// Flagged inside an annotated function:
//   - make/new builtins, append, composite literals of map/slice type
//   - map writes and string concatenation
//   - function literals that capture enclosing locals (closure allocation)
//   - interface boxing of concrete non-pointer values at call arguments,
//     returns, assignments and conversions
//   - any fmt.* call
//   - calls to unannotated functions, and dynamic calls (interface
//     methods, func values), which the analyzer cannot see through
//
// Escape hatches: the argument of panic(...) is skipped wholesale (a
// panicking path has left the steady state), math/bits and seeded
// math/rand methods are allowlisted, and any single finding can be
// waived with //pthammer:alloc-ok <why> on (or directly above) its line.
//
// A small set of functions (the required map) must carry the annotation:
// those are the hot paths whose 0 allocs/op contract CI depends on, and
// deleting the annotation — or the function — fails the build rather
// than silently dropping the verification.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"pthammer/internal/analysis/framework"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &framework.Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocating constructs in functions annotated //pthammer:noalloc",
	Run:  run,
}

// Fact is the per-package set of //pthammer:noalloc functions, exported
// so importing packages can check cross-package calls.
type Fact struct {
	Funcs []string `json:"funcs"`
}

// required maps a package import-path suffix to declaration names that
// MUST carry //pthammer:noalloc. These are the structural hot-path
// contracts: dropping the annotation (or renaming the function away)
// would silently stop verifying the function's body, so the analyzer
// turns either into a build failure instead.
var required = map[string][]string{
	"internal/payload": {
		// The op-stream dispatch loop: compiled payloads promise the
		// same 0 allocs/op steady state as the closure bodies they
		// lower, and the annotation is how that promise is checked.
		"Executor.Run",
	},
}

// stdlibAllowed reports whether a call into the standard library is known
// allocation-free: math/bits is pure bit arithmetic, and the draw methods
// of a seeded generator (rand.Rand.Float64/Uint64/...) do not allocate.
func stdlibAllowed(fn *types.Func, isMethod bool) bool {
	switch fn.Pkg().Path() {
	case "math/bits":
		return true
	case "math/rand", "math/rand/v2":
		return isMethod
	}
	return false
}

func run(pass *framework.Pass) error {
	ann := framework.CollectAnnotations(pass.Fset, pass.Files)

	// First pass: collect this package's annotated set (needed before
	// checking bodies, since annotated functions may call each other).
	local := make(map[string]bool)
	decls := make(map[string]*ast.FuncDecl)
	var annotated []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls[framework.DeclName(fd)] = fd
			if framework.FuncAnnotated("noalloc", fd) {
				local[framework.DeclName(fd)] = true
				annotated = append(annotated, fd)
			}
		}
	}
	for suffix, names := range required {
		if !framework.PathMatches(pass.PkgPath(), suffix) {
			continue
		}
		for _, n := range names {
			if local[n] {
				continue
			}
			if fd := decls[n]; fd != nil {
				pass.Reportf(fd.Pos(), "%s must carry //pthammer:noalloc: it is a structurally verified hot path", n)
			} else if len(pass.Files) > 0 {
				pass.Reportf(pass.Files[0].Pos(), "required noalloc function %s not found in %s", n, pass.PkgPath())
			}
		}
	}
	if len(annotated) > 0 {
		names := make([]string, 0, len(annotated))
		for _, fd := range annotated {
			names = append(names, framework.DeclName(fd))
		}
		if err := pass.ExportFact(Fact{Funcs: names}); err != nil {
			return err
		}
	}

	c := &checker{pass: pass, ann: ann, local: local, imported: make(map[string]map[string]bool)}
	for _, fd := range annotated {
		c.checkFunc(fd)
	}
	return nil
}

type checker struct {
	pass  *framework.Pass
	ann   *framework.Annotations
	local map[string]bool
	// imported caches per-package annotated sets read from facts.
	imported map[string]map[string]bool
}

// calleeAnnotated reports whether the function named name in package
// path carries //pthammer:noalloc.
func (c *checker) calleeAnnotated(path, name string) bool {
	path = framework.CanonicalPkgPath(path)
	if path == c.pass.PkgPath() {
		return c.local[name]
	}
	set, ok := c.imported[path]
	if !ok {
		set = make(map[string]bool)
		var fact Fact
		if c.pass.ImportFact(path, &fact) {
			for _, n := range fact.Funcs {
				set[n] = true
			}
		}
		c.imported[path] = set
	}
	return set[name]
}

// report emits a finding unless the site carries //pthammer:alloc-ok.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.ann.At("alloc-ok", pos) {
		return
	}
	c.pass.Reportf(pos, format, args...)
}

// checkFunc walks one annotated function body.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo
	obj, _ := info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	outerSig, _ := obj.Type().(*types.Signature)

	// Index function literals so return statements and captures resolve
	// against the innermost enclosing signature.
	var lits []*ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	enclosingSig := func(pos token.Pos) *types.Signature {
		var best *ast.FuncLit
		for _, lit := range lits {
			if lit.Body.Pos() <= pos && pos < lit.Body.End() {
				if best == nil || lit.Pos() > best.Pos() {
					best = lit
				}
			}
		}
		if best == nil {
			return outerSig
		}
		if sig, ok := info.TypeOf(best).(*types.Signature); ok {
			return sig
		}
		return outerSig
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(fd, n)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice:
					c.report(n.Pos(), "map/slice composite literal allocates in noalloc function %s", framework.DeclName(fd))
				}
			}
		case *ast.FuncLit:
			if capt := capturedLocal(info, fd, n); capt != nil {
				c.report(n.Pos(), "function literal captures %q: closure allocation in noalloc function %s", capt.Name(), framework.DeclName(fd))
			}
		case *ast.AssignStmt:
			c.checkAssign(fd, n)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
				c.report(n.Pos(), "map write in noalloc function %s", framework.DeclName(fd))
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(info, n) {
				c.report(n.Pos(), "string concatenation allocates in noalloc function %s", framework.DeclName(fd))
			}
		case *ast.ReturnStmt:
			sig := enclosingSig(n.Pos())
			c.checkReturn(fd, sig, n)
		case *ast.DeclStmt:
			c.checkDecl(fd, n)
		}
		return true
	})
}

// checkCall handles every call form; returns false to prune the walk
// under panic() arguments.
func (c *checker) checkCall(fd *ast.FuncDecl, call *ast.CallExpr) bool {
	info := c.pass.TypesInfo
	name := framework.DeclName(fd)

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				// A panicking path has already left the steady state;
				// the (allocating) message construction is irrelevant.
				return false
			case "make", "new":
				c.report(call.Pos(), "%s allocates in noalloc function %s", b.Name(), name)
			case "append":
				c.report(call.Pos(), "append may grow its backing array in noalloc function %s", name)
			}
			c.checkArgBoxing(fd, call)
			return true
		}
	}

	// Conversions: T(x). Only interface targets allocate.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(info, tv.Type, call.Args[0]) {
			c.report(call.Pos(), "conversion boxes a concrete value into an interface in noalloc function %s", name)
		}
		return true
	}

	fn := framework.FuncFor(info, call)
	if fn == nil || fn.Pkg() == nil {
		c.report(call.Pos(), "dynamic call in noalloc function %s: the analyzer cannot verify the callee", name)
		c.checkArgBoxing(fd, call)
		return true
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	if isMethod && types.IsInterface(sig.Recv().Type()) {
		c.report(call.Pos(), "interface method call %s.%s in noalloc function %s: the analyzer cannot verify the callee", recvName(sig), fn.Name(), name)
		c.checkArgBoxing(fd, call)
		return true
	}

	switch {
	case fn.Pkg().Path() == "fmt":
		c.report(call.Pos(), "fmt.%s allocates in noalloc function %s", fn.Name(), name)
	case stdlibAllowed(fn, isMethod):
	default:
		calleeName := fn.Name()
		if isMethod {
			if tn, _ := framework.ReceiverTypeName(fn); tn != "" {
				calleeName = tn + "." + fn.Name()
			}
		}
		if !c.calleeAnnotated(fn.Pkg().Path(), calleeName) {
			c.report(call.Pos(), "call to %s.%s from noalloc function %s: callee is not annotated //pthammer:noalloc", fn.Pkg().Name(), calleeName, name)
		}
	}
	c.checkArgBoxing(fd, call)
	return true
}

// checkArgBoxing flags arguments implicitly converted to interface
// parameters.
func (c *checker) checkArgBoxing(fd *ast.FuncDecl, call *ast.CallExpr) {
	info := c.pass.TypesInfo
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(info, pt, arg) {
			c.report(arg.Pos(), "argument boxes a concrete value into an interface parameter in noalloc function %s", framework.DeclName(fd))
		}
	}
}

// checkAssign flags map writes, string +=, and interface boxing on
// assignment.
func (c *checker) checkAssign(fd *ast.FuncDecl, s *ast.AssignStmt) {
	info := c.pass.TypesInfo
	name := framework.DeclName(fd)
	for _, lhs := range s.Lhs {
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapIndex(info, idx) {
			c.report(s.Pos(), "map write in noalloc function %s", name)
		}
	}
	if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 {
		if t := info.TypeOf(s.Lhs[0]); t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.report(s.Pos(), "string concatenation allocates in noalloc function %s", name)
			}
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if boxes(info, info.TypeOf(s.Lhs[i]), s.Rhs[i]) {
				c.report(s.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in noalloc function %s", name)
			}
		}
	}
}

// checkReturn flags interface boxing at return sites.
func (c *checker) checkReturn(fd *ast.FuncDecl, sig *types.Signature, s *ast.ReturnStmt) {
	if sig == nil || len(s.Results) != sig.Results().Len() {
		return
	}
	for i, r := range s.Results {
		if boxes(c.pass.TypesInfo, sig.Results().At(i).Type(), r) {
			c.report(r.Pos(), "return boxes a concrete value into an interface in noalloc function %s", framework.DeclName(fd))
		}
	}
}

// checkDecl flags boxing in `var x I = concrete` declarations.
func (c *checker) checkDecl(fd *ast.FuncDecl, ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	info := c.pass.TypesInfo
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		t := info.TypeOf(vs.Type)
		for _, v := range vs.Values {
			if boxes(info, t, v) {
				c.report(v.Pos(), "declaration boxes a concrete value into an interface in noalloc function %s", framework.DeclName(fd))
			}
		}
	}
}

// boxes reports whether assigning e to a target of type t performs an
// allocating interface conversion: t is an interface and e is a concrete
// non-pointer, non-nil value. Pointers (and interfaces) fit in the
// interface data word without allocating.
func boxes(info *types.Info, t types.Type, e ast.Expr) bool {
	if t == nil || !types.IsInterface(t) {
		return false
	}
	et := info.TypeOf(e)
	if et == nil || types.IsInterface(et) {
		return false
	}
	switch u := et.Underlying().(type) {
	case *types.Pointer:
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// capturedLocal returns a variable local to fd (declared outside lit)
// that lit's body references, or nil if the literal captures nothing.
func capturedLocal(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && !(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured = v
			return false
		}
		return true
	})
	return captured
}

// isMapIndex reports whether idx indexes a map.
func isMapIndex(info *types.Info, idx *ast.IndexExpr) bool {
	t := info.TypeOf(idx.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isNonConstString reports whether the expression is a string-typed,
// non-constant binary expression (constant folding happens at compile
// time and allocates nothing).
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// recvName renders an interface receiver's type name for diagnostics.
func recvName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
