package privilegedops_test

import (
	"testing"

	"pthammer/internal/analysis/analyzertest"
	"pthammer/internal/analysis/privilegedops"
)

func TestPrivilegedOps(t *testing.T) {
	analyzertest.Run(t, privilegedops.Analyzer, "testdata",
		"lint.test/internal/machine",
		"lint.test/internal/bench",
		"lint.test/attack",
	)
}
