// Package privilegedops makes the paper's "implicit accesses only" claim
// a compile-time property: machine.Flush (clflush) and
// machine.InvalidatePage (invlpg) are privileged operations an
// unprivileged attacker does not have, so only the explicitly
// allowlisted privileged-baseline bodies — and tests — may call them.
// The runtime PrivilegedOps counters still assert the same invariant on
// the attack path; this analyzer catches a stray call one compile, not
// one CI smoke diff, after it is introduced.
//
// A call site outside the allowlist can carry
// //pthammer:privileged-ok <why> when a new privileged baseline is being
// built; the annotation is a reviewed, greppable exemption.
package privilegedops

import (
	"go/ast"

	"pthammer/internal/analysis/framework"
)

// Analyzer is the privileged-operations check.
var Analyzer = &framework.Analyzer{
	Name: "privilegedops",
	Doc:  "restrict machine.Flush/machine.InvalidatePage to allowlisted privileged baselines",
	Run:  run,
}

// privilegedMethods are the machine.Machine methods that model
// instructions an unprivileged attacker cannot execute.
var privilegedMethods = map[string]bool{
	"Flush":          true,
	"InvalidatePage": true,
}

// allowlist maps a package import-path suffix to the top-level function
// names (Func or Recv.Method) allowed to perform privileged operations.
// These are exactly the explicit-baseline bodies the paper compares
// against.
var allowlist = map[string]map[string]bool{
	"internal/bench": {
		// The privileged flush+invlpg hammer baseline.
		"ImplicitPair.HammerOncePrivileged": true,
		// Scenario table: the explicit clflush baseline closure.
		"Scenarios": true,
	},
	"internal/sweep": {
		// FlushBetween sweeps are the privileged-baseline arm of the
		// Figure 5/6 comparisons.
		"Spec.runShard": true,
	},
	"internal/payload": {
		// The op-stream executor dispatches OpInvlpg/OpFlush for compiled
		// privileged-baseline programs. Whether a *program* is privileged
		// is tracked by Program.Privileged and asserted by the same
		// PrivilegedOps counters the closure paths use; the dispatch loop
		// itself has to be able to reach both worlds.
		"Executor.Run": true,
	},
}

func run(pass *framework.Pass) error {
	path := pass.PkgPath()
	if framework.PathMatches(path, "internal/machine") {
		// The machine package implements the operations; its own bodies
		// (and counters) are the mechanism, not a caller.
		return nil
	}
	var allowed map[string]bool
	for suffix, fns := range allowlist {
		if framework.PathMatches(path, suffix) {
			allowed = fns
			break
		}
	}
	ann := framework.CollectAnnotations(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			// Tests exercise the privileged baselines and the counters
			// themselves.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowed[framework.DeclName(fd)] {
				continue
			}
			checkBody(pass, ann, fd)
		}
	}
	return nil
}

// checkBody flags privileged calls anywhere under the declaration,
// including inside closures (which attribute to the enclosing top-level
// function for allowlist purposes).
func checkBody(pass *framework.Pass, ann *framework.Annotations, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.FuncFor(pass.TypesInfo, call)
		if fn == nil || !privilegedMethods[fn.Name()] {
			return true
		}
		typeName, pkgPath := framework.ReceiverTypeName(fn)
		if typeName != "Machine" || !framework.PathMatches(pkgPath, "internal/machine") {
			return true
		}
		if ann.At("privileged-ok", call.Pos()) {
			return true
		}
		pass.Reportf(call.Pos(), "privileged machine.%s call outside the allowlisted baselines: the attack path must stay flush-free (annotate //pthammer:privileged-ok <why> if this is a new privileged baseline)", fn.Name())
		return true
	})
}
