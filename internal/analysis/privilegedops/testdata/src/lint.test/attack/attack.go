// Package attack is not on the allowlist at all: every privileged call
// is flagged.
package attack

import "lint.test/internal/machine"

// Hammer is the implicit attack loop; only unprivileged loads belong
// here.
func Hammer(m *machine.Machine) {
	m.Load(0)
	m.Load(4096)
	m.Flush(0)          // want `privileged machine\.Flush call outside the allowlisted baselines`
	m.InvalidatePage(0) // want `privileged machine\.InvalidatePage call outside the allowlisted baselines`
}

// HammerOncePrivileged has an allowlisted NAME but lives in a package
// without an allowlist entry, so it is still flagged.
func HammerOncePrivileged(m *machine.Machine) {
	m.Flush(0) // want `privileged machine\.Flush call outside the allowlisted baselines`
}
