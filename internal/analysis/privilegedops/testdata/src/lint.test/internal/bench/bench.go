// Package bench is a privilegedops fixture for the allowlisted
// privileged-baseline bodies.
package bench

import "lint.test/internal/machine"

// ImplicitPair mirrors the real bench pair type.
type ImplicitPair struct {
	M *machine.Machine
}

// HammerOncePrivileged is on the allowlist: it IS the privileged
// baseline.
func (p *ImplicitPair) HammerOncePrivileged() {
	p.M.InvalidatePage(0)
	p.M.Flush(0)
}

// Scenarios is allowlisted; the closure attributes to it.
func Scenarios(m *machine.Machine) func() {
	return func() {
		m.Flush(4096)
	}
}

// HammerOnce is the attack path: privileged calls are flagged.
func (p *ImplicitPair) HammerOnce() {
	p.M.Load(0)
	p.M.Flush(0) // want `privileged machine\.Flush call outside the allowlisted baselines`
}

// NewBaseline carries the reviewed site exemption.
func NewBaseline(m *machine.Machine) {
	m.InvalidatePage(0) //pthammer:privileged-ok fixture for a yet-unlisted baseline
}

// viaClosure checks that closures in unallowlisted functions are still
// flagged.
func viaClosure(m *machine.Machine) func() {
	return func() {
		m.InvalidatePage(0) // want `privileged machine\.InvalidatePage call outside the allowlisted baselines`
	}
}
