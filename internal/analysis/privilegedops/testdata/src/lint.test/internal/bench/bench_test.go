package bench

import (
	"testing"

	"lint.test/internal/machine"
)

// Test files may exercise privileged operations freely: they assert the
// counters and the baselines.
func TestPrivilegedAllowedInTests(t *testing.T) {
	m := &machine.Machine{}
	m.Flush(0)
	m.InvalidatePage(0)
}
