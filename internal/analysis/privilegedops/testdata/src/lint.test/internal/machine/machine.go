// Package machine is a stub of the real internal/machine facade: the
// analyzer matches the Machine receiver type by name and package-path
// suffix, so this fixture stands in for it. The implementing package
// itself is never flagged.
package machine

// Machine is the facade stub.
type Machine struct {
	flushes, invlpgs int
}

// Flush models clflush (privileged in the paper's threat model).
func (m *Machine) Flush(a uint64) uint64 {
	m.flushes++
	return 0
}

// InvalidatePage models invlpg.
func (m *Machine) InvalidatePage(a uint64) bool {
	m.invlpgs++
	return true
}

// Load is an unprivileged access.
func (m *Machine) Load(a uint64) uint64 { return 0 }

// selfUse exercises the implementing-package exemption.
func (m *Machine) selfUse() {
	m.Flush(0)
	m.InvalidatePage(0)
}
