// Package b imports a fixture sibling and the standard library, so the
// self-test covers both importer paths and cross-package fact flow.
package b

import (
	"strings"

	"self/a"
)

func Use() string { // want "fact from self/a: 2 flagged"
	a.Clean()
	return strings.ToUpper("x")
}
