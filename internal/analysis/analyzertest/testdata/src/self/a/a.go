// Package a is the harness self-test dependency fixture.
package a

func FlaggedOne() {} // want "flagged function FlaggedOne"

func Clean() {}

func FlaggedTwo() {} // want `flagged function FlaggedTwo` `second pattern on one line`
