package analyzertest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pthammer/internal/analysis/framework"
)

// selfAnalyzer exercises every harness feature from the analyzer side:
// diagnostics (including two on one line, matching a two-pattern want),
// fact export, and fact import across fixture packages.
var selfAnalyzer = &framework.Analyzer{
	Name: "selftest",
	Doc:  "harness self-test",
	Run: func(pass *framework.Pass) error {
		type fact struct{ Flagged int }
		n := 0
		for _, f := range pass.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				var df fact
				if pass.ImportFact(path, &df) {
					for _, d := range f.Decls {
						if fd, ok := d.(*ast.FuncDecl); ok {
							pass.Reportf(fd.Pos(), "fact from %s: %d flagged", path, df.Flagged)
							break
						}
					}
				}
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || !strings.HasPrefix(fd.Name.Name, "Flagged") {
					continue
				}
				n++
				pass.Reportf(fd.Pos(), "flagged function %s", fd.Name.Name)
				if fd.Name.Name == "FlaggedTwo" {
					pass.Reportf(fd.Pos(), "second pattern on one line")
				}
			}
		}
		return pass.ExportFact(fact{Flagged: n})
	},
}

// TestHarnessSelfTest runs the fixture pair end to end: every want in
// testdata/src/self must be matched and nothing extra reported, or Run
// fails this test for real.
func TestHarnessSelfTest(t *testing.T) {
	Run(t, selfAnalyzer, "testdata", "self/a", "self/b")
}

func TestLoadMissingFixtureIsNil(t *testing.T) {
	h := &harness{
		fset:   token.NewFileSet(),
		root:   filepath.Join("testdata", "src"),
		loaded: make(map[string]*loadedPkg),
	}
	lp, err := h.load("no/such/fixture")
	if lp != nil || err != nil {
		t.Fatalf("load of absent fixture = %v, %v; want nil, nil", lp, err)
	}
}

func TestWantsInParsesQuotingStyles(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n" +
		"var a = 1 // want \"plain\"\n" +
		"var b = 2 // want `backquoted \\d+` \"and a second\"\n" +
		"var c = 3 // unrelated comment\n"
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantsIn(t, fset, f)
	if len(wants) != 3 {
		t.Fatalf("parsed %d wants, want 3", len(wants))
	}
	if wants[0].line != 2 || !wants[0].re.MatchString("plain") {
		t.Errorf("first want = %+v", wants[0])
	}
	if wants[1].line != 3 || !wants[1].re.MatchString("backquoted 42") {
		t.Errorf("second want = %+v", wants[1])
	}
	if wants[2].line != 3 || !wants[2].re.MatchString("and a second") {
		t.Errorf("third want = %+v", wants[2])
	}
}
