// Package analyzertest is a self-contained equivalent of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over
// GOPATH-style fixture packages under testdata/src/<pkg>/ and checks the
// diagnostics against `// want "regexp"` comments in the fixtures. A
// diagnostic must match a want on its file and line; unmatched
// diagnostics and unsatisfied wants both fail the test.
//
// Fixture packages may import each other (by the paths under
// testdata/src, resolved recursively) and the standard library (resolved
// by the source importer, so no compiled export data is needed). When an
// analyzer exports facts, list its dependency fixtures before their
// importers in the Run call: packages run in the given order and facts
// accumulate across them.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"pthammer/internal/analysis/framework"

	"encoding/json"
)

// stdImporter lazily builds one shared source-based importer for the
// standard library; importing (and type-checking) fmt from source is
// expensive, so every harness run shares the cache.
var (
	stdOnce     sync.Once
	stdMu       sync.Mutex
	stdImporter types.Importer
)

func stdImport(path string) (*types.Package, error) {
	stdOnce.Do(func() {
		stdImporter = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	stdMu.Lock()
	defer stdMu.Unlock()
	return stdImporter.Import(path)
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type harness struct {
	fset   *token.FileSet
	root   string // testdata/src
	loaded map[string]*loadedPkg
}

// Import resolves fixture-local packages first, then the standard
// library, satisfying types.Importer for the fixtures' type-check.
func (h *harness) Import(path string) (*types.Package, error) {
	if lp, err := h.load(path); lp != nil || err != nil {
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return stdImport(path)
}

// load parses and type-checks the fixture package at root/path, or
// returns (nil, nil) when no such fixture directory exists.
func (h *harness) load(path string) (*loadedPkg, error) {
	if lp, ok := h.loaded[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(h.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return nil, nil
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("analyzertest: fixture %s has no Go files", path)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(h.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analyzertest: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: h}
	pkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzertest: type-checking %s: %v", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	h.loaded[path] = lp
	return lp, nil
}

// expectation is one `// want "re"` assertion.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantsIn extracts the expectations from a file's comments.
func wantsIn(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(body, "want ") {
				continue
			}
			body = strings.TrimSpace(strings.TrimPrefix(body, "want"))
			pos := fset.Position(c.Pos())
			for body != "" {
				q, err := strconv.QuotedPrefix(body)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s:%d: malformed want pattern %q", pos.Filename, pos.Line, q)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				body = strings.TrimSpace(body[len(q):])
			}
		}
	}
	return out
}

// Run applies the analyzer to each fixture package in order, threading
// facts between them, and checks diagnostics against want comments.
func Run(t *testing.T, a *framework.Analyzer, testdataDir string, pkgs ...string) {
	t.Helper()
	h := &harness{
		fset:   token.NewFileSet(),
		root:   filepath.Join(testdataDir, "src"),
		loaded: make(map[string]*loadedPkg),
	}
	facts := make(map[string]json.RawMessage)

	type diag struct {
		pos token.Position
		msg string
	}
	var diags []diag
	var wants []*expectation

	for _, path := range pkgs {
		lp, err := h.load(path)
		if err != nil {
			t.Fatal(err)
		}
		if lp == nil {
			t.Fatalf("analyzertest: no fixture package %q under %s", path, h.root)
		}
		for _, f := range lp.files {
			wants = append(wants, wantsIn(t, h.fset, f)...)
		}
		path := path
		pass := framework.NewPass(a, h.fset, lp.files, lp.pkg, lp.info,
			func(d framework.Diagnostic) {
				diags = append(diags, diag{pos: h.fset.Position(d.Pos), msg: d.Message})
			},
			func(depPath string) (json.RawMessage, bool) {
				raw, ok := facts[depPath]
				return raw, ok
			},
			func(raw json.RawMessage) { facts[path] = raw })
		if err := a.Run(pass); err != nil {
			t.Fatalf("analyzertest: %s on %s: %v", a.Name, path, err)
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.pos.Filename && w.line == d.pos.Line && w.re.MatchString(d.msg) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.pos.Filename, d.pos.Line, d.msg)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
