// Package driver loads and type-checks the module's packages without any
// dependency beyond the go toolchain itself, then runs pthammer-lint's
// analyzers over them. It shells out to `go list -json -export -deps`,
// which both enumerates the import closure and (via -export) materializes
// compiled export data in the build cache, so dependencies are imported
// through the gc importer instead of being re-typechecked from source.
// Module packages are then checked in dependency order so analyzer facts
// (e.g. noalloc's annotated-function sets) flow from a package to its
// importers.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"pthammer/internal/analysis/framework"
)

// ListedPackage is the subset of `go list -json` output the driver needs.
type ListedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
}

// List runs `go list -json -export -deps patterns...` in dir and decodes
// the JSON stream.
func List(dir string, patterns ...string) ([]*ListedPackage, error) {
	args := append([]string{"list", "-json", "-export", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Diagnostic pairs a finding with its resolved position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run analyzes every non-standard package matched by patterns (plus their
// module-internal deps) with the given analyzers, returning diagnostics
// sorted by position.
func Run(dir string, analyzers []*framework.Analyzer, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := List(dir, patterns...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*ListedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	// facts[pkgPath][analyzerName] holds exported facts; packages are
	// visited in dependency order so a package's facts exist before any
	// importer asks for them.
	facts := make(map[string]map[string]json.RawMessage)

	type entry struct {
		diag framework.Diagnostic
		name string
	}
	var entries []entry

	visited := make(map[string]bool)
	var visit func(p *ListedPackage) error
	visit = func(p *ListedPackage) error {
		if visited[p.ImportPath] || p.Standard {
			return nil
		}
		visited[p.ImportPath] = true
		for _, dep := range p.Imports {
			if d, ok := byPath[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		if len(p.GoFiles) == 0 {
			return nil
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("driver: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return fmt.Errorf("driver: type-checking %s: %v", p.ImportPath, err)
		}
		for _, a := range analyzers {
			a := a
			pass := framework.NewPass(a, fset, files, tpkg, info,
				func(d framework.Diagnostic) {
					entries = append(entries, entry{diag: d, name: a.Name})
				},
				func(depPath string) (json.RawMessage, bool) {
					m, ok := facts[depPath]
					if !ok {
						return nil, false
					}
					raw, ok := m[a.Name]
					return raw, ok
				},
				func(raw json.RawMessage) {
					m := facts[p.ImportPath]
					if m == nil {
						m = make(map[string]json.RawMessage)
						facts[p.ImportPath] = m
					}
					m[a.Name] = raw
				})
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("driver: %s on %s: %v", a.Name, p.ImportPath, err)
			}
		}
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	out := make([]Diagnostic, 0, len(entries))
	for _, e := range entries {
		out = append(out, Diagnostic{
			Position: fset.Position(e.diag.Pos),
			Analyzer: e.name,
			Message:  e.diag.Message,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}
