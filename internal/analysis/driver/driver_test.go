package driver

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pthammer/internal/analysis/determinism"
	"pthammer/internal/analysis/framework"
	"pthammer/internal/analysis/noalloc"
)

// writeModule materializes a throwaway module on disk so the driver's
// real loading path — go list -export, gc importer, dependency-order
// fact flow — runs end to end without touching the pthammer module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunFindsAndOrdersDiagnostics(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.24\n",
		// cmd/ prefix puts the package in determinism's deterministic set.
		"cmd/tool/main.go": `package main

import "time"

func main() {
	_ = time.Now() // finding 1
	m := map[int]int{1: 1}
	for k := range m { // finding 2
		_ = k
	}
}
`,
		"internal/ok/ok.go": `// Package ok is outside the deterministic set.
package ok

import "time"

func Now() time.Time { return time.Now() }
`,
	})

	diags, err := Run(dir, []*framework.Analyzer{determinism.Analyzer}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	// Sorted by position within the file.
	if !strings.Contains(diags[0].Message, "time.Now") {
		t.Errorf("first diagnostic = %+v, want the time.Now finding", diags[0])
	}
	if !strings.Contains(diags[1].Message, "map") {
		t.Errorf("second diagnostic = %+v, want the map-range finding", diags[1])
	}
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			t.Errorf("diagnostic attributed to %q, want determinism", d.Analyzer)
		}
		if !strings.HasSuffix(d.Position.Filename, filepath.Join("cmd", "tool", "main.go")) {
			t.Errorf("diagnostic in %s, want cmd/tool/main.go only", d.Position.Filename)
		}
	}
}

func TestRunFlowsFactsAcrossPackages(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.24\n",
		"dep/dep.go": `package dep

// Step is annotated: callers may use it.
//
//pthammer:noalloc
func Step(n int) int { return n + 1 }

// Grow is not.
func Grow(n int) []int { return make([]int, n) }
`,
		"hot/hot.go": `package hot

import "tmp.test/m/dep"

// Good calls only annotated callees across the package boundary.
//
//pthammer:noalloc
func Good(n int) int { return dep.Step(n) }

// Bad calls an unannotated one.
//
//pthammer:noalloc
func Bad(n int) int { return len(dep.Grow(n)) }
`,
	})

	diags, err := Run(dir, []*framework.Analyzer{noalloc.Analyzer}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the dep.Grow call: %+v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "dep.Grow") {
		t.Fatalf("diagnostic = %+v, want the dep.Grow finding", diags[0])
	}
}

func TestRunReportsLoadErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.24\n",
	})
	if _, err := Run(dir, nil, "./does/not/exist"); err == nil {
		t.Fatal("unknown pattern did not error")
	}

	bad := writeModule(t, map[string]string{
		"go.mod":   "module tmp.test/bad\n\ngo 1.24\n",
		"p/bad.go": "package p\n\nfunc f() { undeclared() }\n",
	})
	if _, err := Run(bad, nil, "./..."); err == nil {
		t.Fatal("package that fails to compile did not error")
	}
}

func TestListEnumeratesDeps(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":   "module tmp.test/m\n\ngo 1.24\n",
		"p/p.go":   "package p\n\nimport \"tmp.test/m/q\"\n\nvar _ = q.V\n",
		"q/q.go":   "package q\n\nvar V = 1\n",
		"q/doc.go": "// Package q has two files.\npackage q\n",
	})
	pkgs, err := List(dir, "./p")
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*ListedPackage)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	q, ok := byPath["tmp.test/m/q"]
	if !ok {
		t.Fatalf("-deps did not surface the dependency; got %d packages", len(pkgs))
	}
	if len(q.GoFiles) != 2 || q.Standard {
		t.Fatalf("dependency listing = %+v", q)
	}
	if _, ok := byPath["tmp.test/m/p"]; !ok {
		t.Fatal("pattern package missing from listing")
	}
}
