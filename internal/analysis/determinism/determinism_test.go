package determinism_test

import (
	"testing"

	"pthammer/internal/analysis/analyzertest"
	"pthammer/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analyzertest.Run(t, determinism.Analyzer, "testdata",
		"lint.test/cmd/tool",
		"lint.test/internal/cohort",
		"lint.test/internal/core",
		"lint.test/internal/fault",
		"lint.test/internal/sweep",
		"lint.test/plain",
	)
}
