// Package determinism flags nondeterminism sources in the packages whose
// output must be byte-identical per seed: the sweep/flip/evset/fault
// pipeline and every cmd/ entry point. PThammer's tables are diffed in CI against
// golden runs, so a wall-clock read, an unseeded global rand call, or an
// unordered map iteration is a correctness bug, not a style issue.
//
// Flagged in deterministic packages (non-test files):
//   - time.Now / time.Since / time.Until
//   - package-level math/rand and math/rand/v2 functions (seeded
//     *rand.Rand methods are fine; constructors New/NewSource/... are
//     fine, since they exist to build seeded generators)
//   - range over a map, unless the loop only gathers keys/values into a
//     slice that a later sort.*/slices.* call in the same function
//     orders, or the site carries //pthammer:nondeterministic-ok
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"pthammer/internal/analysis/framework"
)

// Analyzer is the determinism check.
var Analyzer = &framework.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand and unsorted map iteration in deterministic packages",
	Run:  run,
}

// deterministicSuffixes are the import-path suffixes of the packages with
// per-seed byte-identical output contracts.
var deterministicSuffixes = []string{
	"internal/sweep",
	"internal/flip",
	"internal/evset",
	"internal/fault",
	// The multi-core interleaver: its grant order is the multi-tenant
	// machine's whole determinism story, so a wall-clock read or an
	// unordered iteration here breaks byte-identical mt-* output.
	"internal/core",
	// Compiled payloads must replay bit-identically to the closure
	// bodies they lower — the differential harness compares them down
	// to clock deltas and PMC banks, so nondeterminism here is a
	// correctness bug, not jitter.
	"internal/payload",
	// The cohort scheduler's population tables are byte-diffed across
	// GOMAXPROCS and pool sizes in CI; per-tenant randomness must come
	// from the mixed tenant seed alone.
	"internal/cohort",
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// isDeterministicPkg reports whether the import path is under the
// determinism contract: any cmd/ binary or one of the listed suffixes.
// The cmd match accepts both module-rooted "cmd/pthammer-sweep" and
// testdata-style "lint.test/cmd/tool" paths.
func isDeterministicPkg(path string) bool {
	for _, s := range deterministicSuffixes {
		if framework.PathMatches(path, s) {
			return true
		}
	}
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func run(pass *framework.Pass) error {
	if !isDeterministicPkg(pass.PkgPath()) {
		return nil
	}
	ann := framework.CollectAnnotations(pass.Fset, pass.Files)
	for _, f := range pass.Files {
		if framework.IsTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCalls(pass, fd.Body)
			checkMapRanges(pass, ann, fd.Body, fd.Body)
		}
	}
	return nil
}

// checkCalls flags wall-clock and global-rand calls anywhere in body.
func checkCalls(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.FuncFor(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			// Methods (e.g. on a seeded *rand.Rand) are fine.
			return true
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "call to time.%s in deterministic package: derive timestamps from the simulated clock or the seed", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "call to global %s.%s in deterministic package: use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
}

// checkMapRanges flags map iteration in body (an innermost function
// body), recursing into function literals with their own body scope.
func checkMapRanges(pass *framework.Pass, ann *framework.Annotations, fnBody, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// The literal is its own "same function" scope for the
			// gather-then-sort idiom.
			checkMapRanges(pass, ann, n.Body, n.Body)
			return false
		case *ast.RangeStmt:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if ann.At("nondeterministic-ok", n.Pos()) {
				return true
			}
			if target, ok := gatherTarget(pass.TypesInfo, n); ok && sortedLater(pass.TypesInfo, fnBody, n, target) {
				return true
			}
			pass.Reportf(n.Pos(), "range over map in deterministic package: sort the keys first or annotate //pthammer:nondeterministic-ok")
		}
		return true
	})
}

// gatherTarget checks the gather idiom: the range body consists solely of
// `x = append(x, ...)` statements (possibly nested in if/blocks) against
// a single slice variable, and returns that variable's object.
func gatherTarget(info *types.Info, rng *ast.RangeStmt) (types.Object, bool) {
	var target types.Object
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				obj, ok := appendTo(info, s)
				if !ok {
					return false
				}
				if target == nil {
					target = obj
				} else if target != obj {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil || !walk(s.Body.List) {
					return false
				}
				if s.Else != nil {
					eb, ok := s.Else.(*ast.BlockStmt)
					if !ok || !walk(eb.List) {
						return false
					}
				}
			case *ast.BlockStmt:
				if !walk(s.List) {
					return false
				}
			case *ast.BranchStmt:
				// continue/break inside a filtered gather loop.
			default:
				return false
			}
		}
		return true
	}
	if !walk(rng.Body.List) || target == nil {
		return nil, false
	}
	return target, true
}

// appendTo matches `x = append(x, ...)` and returns x's object.
func appendTo(info *types.Info, s *ast.AssignStmt) (types.Object, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || first.Name != lhs.Name {
		return nil, false
	}
	obj := info.ObjectOf(lhs)
	if obj == nil {
		return nil, false
	}
	return obj, true
}

// sortedLater reports whether, after the range statement, the same
// function body calls a sort/slices function with the gathered slice
// among its arguments.
func sortedLater(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := framework.FuncFor(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
