// Package core is a determinism fixture for the internal/core path
// suffix: the interleaver's grant order must be a pure function of the
// streams' clocks, so wall-clock tiebreaks and map-ordered scheduling
// are exactly the bugs the suffix listing exists to catch.
package core

import "time"

// pick chooses the next stream by wall-clock deadline: flagged, the
// scheduler may only consult simulated clocks.
func pick(deadlines map[int]time.Time) int {
	best := -1
	for i, d := range deadlines { // want `range over map in deterministic package`
		if best == -1 || d.Before(deadlines[best]) {
			best = i
		}
	}
	return best
}

// stamp reads the wall clock: flagged, grant timestamps must come from
// the streams' simulated clocks.
func stamp() time.Time {
	return time.Now() // want `call to time.Now in deterministic package`
}

// pickLowest is the deterministic way: index order over a slice of
// simulated timestamps, strict less-than for the lowest-index tiebreak.
func pickLowest(clocks []uint64) int {
	best := -1
	for i, c := range clocks {
		if best == -1 || c < clocks[best] {
			best = i
		}
	}
	return best
}
