// Package fault is a determinism fixture for the internal/fault path
// suffix: fault models draw from a private seeded stream, so global
// rand is exactly the bug the suffix listing exists to catch.
package fault

import "math/rand"

// drop samples the global stream: flagged, because the injected fault
// sequence must be a pure function of the model's seed.
func drop(rate float64) bool {
	return rand.Float64() < rate // want `call to global rand.Float64 in deterministic package`
}

// dropSeeded draws from a seeded generator: the deterministic way.
func dropSeeded(rng *rand.Rand, rate float64) bool {
	return rng.Float64() < rate
}
