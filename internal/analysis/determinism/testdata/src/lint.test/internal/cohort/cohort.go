// Package cohort is a determinism fixture for the internal/cohort
// path suffix: population tables are byte-diffed across GOMAXPROCS and
// pool sizes in CI, so per-tenant randomness must derive from the
// mixed tenant seed and merged statistics must not depend on map
// order.
package cohort

import "math/rand"

// tenantSeed draws from the global rand: flagged, the whole point of
// the seed mixer is that tenant randomness is a pure function of
// (population seed, index).
func tenantSeed(tenant int) int64 {
	return rand.Int63() // want `call to global rand.Int63 in deterministic package`
}

// mergeRates folds per-class tallies in map order: flagged, the table
// rows' order (and any order-dependent accumulation) would vary run to
// run.
func mergeRates(byClass map[string]int) int {
	total := 0
	for _, n := range byClass { // want `range over map in deterministic package`
		total += n
	}
	return total
}

// mixSeed is the deterministic way: splitmix the population seed with
// the tenant index.
func mixSeed(pop int64, tenant int) int64 {
	z := uint64(pop) + (uint64(tenant)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	return int64(z)
}
