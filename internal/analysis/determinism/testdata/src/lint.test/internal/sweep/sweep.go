// Package sweep is a determinism fixture for the internal/sweep path
// suffix: the shape of the real Histogram bug this analyzer exists to
// catch (float accumulation over map order).
package sweep

import "sort"

type histogram struct {
	counts map[uint64]uint64
}

// mean sums floats in map order: flagged, because float addition is not
// associative and the iteration order varies per run.
func (h *histogram) mean() float64 {
	var sum, n float64
	for c, k := range h.counts { // want `range over map in deterministic package`
		sum += float64(c) * float64(k)
		n += float64(k)
	}
	return sum / n
}

// bins gathers into a slice and sorts it before use: the canonical
// deterministic way to iterate a map.
func (h *histogram) bins() []uint64 {
	var out []uint64
	for c := range h.counts {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// merge is order-independent (integer += per distinct key), so the
// exemption annotation applies.
func (h *histogram) merge(src map[uint64]uint64) {
	//pthammer:nondeterministic-ok
	for c, k := range src {
		h.counts[c] += k
	}
}
