// Package plain is outside the determinism contract: nothing here is
// flagged.
package plain

import "time"

func Stamp() time.Time { return time.Now() }

func Sum(m map[int]int) (sum int) {
	for _, v := range m {
		sum += v
	}
	return
}
