// Package main is a determinism fixture: cmd/ packages are under the
// per-seed reproducibility contract.
package main

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `call to time\.Now in deterministic package`
}

func elapsed(t time.Time) time.Duration {
	return time.Since(t) // want `call to time\.Since in deterministic package`
}

func globalRand() int {
	return rand.Int() // want `call to global rand\.Int in deterministic package`
}

func seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63()
}

func unsorted(m map[int]int) int {
	sum := 0
	for k, v := range m { // want `range over map in deterministic package`
		sum += k * v
	}
	return sum
}

func annotated(m map[int]int) int {
	sum := 0
	//pthammer:nondeterministic-ok
	for k, v := range m {
		sum += k * v
	}
	return sum
}

func gathered(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// gatheredNoSort collects into a slice but never orders it, so the map
// order leaks into the result.
func gatheredNoSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m { // want `range over map in deterministic package`
		keys = append(keys, k)
	}
	return keys
}

// closureScope checks that the gather idiom requires the sort in the
// same function as the loop: the literal's loop has no sort inside it.
func closureScope(m map[int]int) []int {
	var keys []int
	collect := func() {
		for k := range m { // want `range over map in deterministic package`
			keys = append(keys, k)
		}
	}
	collect()
	sort.Ints(keys)
	return keys
}

func main() {
	_ = unsorted(map[int]int{1: 1})
}
