package main

import (
	"testing"
	"time"
)

// Test files are exempt: fixtures and timing helpers may use the wall
// clock freely.
func TestWallClockAllowed(t *testing.T) {
	_ = time.Now()
}
