package unitcheck

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"pthammer/internal/analysis/determinism"
	"pthammer/internal/analysis/driver"
	"pthammer/internal/analysis/framework"
	"pthammer/internal/analysis/noalloc"
)

// writeCfg marshals a Config next to the unit's files and returns its
// path.
func writeCfg(t *testing.T, cfg *Config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "unit.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeFile(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// selfContainedUnit builds a cfg for a package with no imports, the
// simplest unit go vet can hand us.
func selfContainedUnit(t *testing.T, importPath, src string) (*Config, string) {
	t.Helper()
	dir := t.TempDir()
	file := writeFile(t, dir, "unit.go", src)
	vetx := filepath.Join(dir, "unit.vetx")
	return &Config{
		ID:         importPath,
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: importPath,
		GoFiles:    []string{file},
		VetxOutput: vetx,
	}, vetx
}

const dirtyMain = `package main

func main() {
	m := map[int]int{1: 1}
	for k := range m {
		_ = k
	}
}
`

func TestRunReportsDiagnosticsAndWritesVetx(t *testing.T) {
	cfg, vetx := selfContainedUnit(t, "tmp.test/m/cmd/tool", dirtyMain)
	if code := Run(writeCfg(t, cfg), []*framework.Analyzer{determinism.Analyzer}); code != 2 {
		t.Fatalf("unit with a finding exited %d, want 2", code)
	}
	// The go command requires the facts file even when empty.
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx file not written: %v", err)
	}
}

func TestRunVetxOnlySuppressesDiagnostics(t *testing.T) {
	cfg, _ := selfContainedUnit(t, "tmp.test/m/cmd/tool", dirtyMain)
	cfg.VetxOnly = true
	if code := Run(writeCfg(t, cfg), []*framework.Analyzer{determinism.Analyzer}); code != 0 {
		t.Fatalf("VetxOnly unit exited %d, want 0", code)
	}
}

func TestRunCleanUnit(t *testing.T) {
	cfg, _ := selfContainedUnit(t, "tmp.test/m/cmd/tool", "package main\n\nfunc main() {}\n")
	if code := Run(writeCfg(t, cfg), []*framework.Analyzer{determinism.Analyzer}); code != 0 {
		t.Fatalf("clean unit exited %d, want 0", code)
	}
}

func TestRunHonorsSucceedOnTypecheckFailure(t *testing.T) {
	cfg, vetx := selfContainedUnit(t, "tmp.test/m/p", "package p\n\nfunc f() { undeclared() }\n")
	cfg.SucceedOnTypecheckFailure = true
	if code := Run(writeCfg(t, cfg), nil); code != 0 {
		t.Fatalf("SucceedOnTypecheckFailure exited %d, want 0", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("vetx file not written on typecheck failure: %v", err)
	}

	cfg.SucceedOnTypecheckFailure = false
	if code := Run(writeCfg(t, cfg), nil); code != 1 {
		t.Fatalf("typecheck failure without the flag exited %d, want 1", code)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if code := Run(filepath.Join(t.TempDir(), "absent.cfg"), nil); code != 1 {
		t.Fatal("missing cfg accepted")
	}
	bad := writeFile(t, t.TempDir(), "bad.cfg", "not json")
	if code := Run(bad, nil); code != 1 {
		t.Fatal("malformed cfg accepted")
	}
	empty := writeCfg(t, &Config{ImportPath: "p"})
	if code := Run(empty, nil); code != 1 {
		t.Fatal("cfg without files accepted")
	}
}

// TestRunFlowsFactsBetweenUnits drives two units the way go vet would:
// the dependency's vetx output becomes the importer unit's PackageVetx
// input, and export data comes from the real build cache via go list.
// With the fact wired, calling the dependency's annotated function is
// clean; with the fact withheld, the same call is flagged.
func TestRunFlowsFactsBetweenUnits(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "dep"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "hot"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "go.mod", "module tmp.test/m\n\ngo 1.24\n")
	depFile := writeFile(t, filepath.Join(dir, "dep"), "dep.go", `package dep

// Step is annotated.
//
//pthammer:noalloc
func Step(n int) int { return n + 1 }
`)
	hotFile := writeFile(t, filepath.Join(dir, "hot"), "hot.go", `package hot

import "tmp.test/m/dep"

// Good may call the annotated dependency.
//
//pthammer:noalloc
func Good(n int) int { return dep.Step(n) }
`)

	// go list -export materializes dep's export data, exactly what the
	// go command would hand a vettool in PackageFile.
	pkgs, err := driver.List(dir, "./...")
	if err != nil {
		t.Fatal(err)
	}
	var depExport string
	for _, p := range pkgs {
		if p.ImportPath == "tmp.test/m/dep" {
			depExport = p.Export
		}
	}
	if depExport == "" {
		t.Fatal("no export data for the dependency")
	}

	depVetx := filepath.Join(dir, "dep.vetx")
	depCfg := &Config{
		ID: "dep", Compiler: "gc", Dir: dir,
		ImportPath: "tmp.test/m/dep",
		GoFiles:    []string{depFile},
		VetxOutput: depVetx,
	}
	if code := Run(writeCfg(t, depCfg), []*framework.Analyzer{noalloc.Analyzer}); code != 0 {
		t.Fatalf("dep unit exited %d, want 0", code)
	}
	var vf map[string]json.RawMessage
	data, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &vf); err != nil || vf["noalloc"] == nil {
		t.Fatalf("dep vetx %s holds no noalloc fact: %v", data, err)
	}

	hotCfg := &Config{
		ID: "hot", Compiler: "gc", Dir: dir,
		ImportPath:  "tmp.test/m/hot",
		GoFiles:     []string{hotFile},
		PackageFile: map[string]string{"tmp.test/m/dep": depExport},
		PackageVetx: map[string]string{"tmp.test/m/dep": depVetx},
		VetxOutput:  filepath.Join(dir, "hot.vetx"),
	}
	if code := Run(writeCfg(t, hotCfg), []*framework.Analyzer{noalloc.Analyzer}); code != 0 {
		t.Fatalf("hot unit with dep facts exited %d, want 0 (fact did not flow)", code)
	}

	// Withhold the facts: the same call must now be flagged.
	hotCfg.PackageVetx = nil
	if code := Run(writeCfg(t, hotCfg), []*framework.Analyzer{noalloc.Analyzer}); code != 2 {
		t.Fatalf("hot unit without dep facts exited %d, want 2", code)
	}
}
