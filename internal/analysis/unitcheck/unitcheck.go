// Package unitcheck implements the go vet unit-checking protocol for
// pthammer-lint, mirroring golang.org/x/tools/go/analysis/unitchecker
// without the dependency. When the go command runs
// `go vet -vettool=pthammer-lint ./...` it invokes the tool once per
// package with a single *.cfg argument describing that compilation unit
// (files, import map, export data of dependencies, fact files). The tool
// type-checks the unit, runs the analyzers, writes its fact file for
// downstream units, and reports diagnostics on stderr with exit code 2.
package unitcheck

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"pthammer/internal/analysis/framework"
)

// Config is the JSON schema of the .cfg file the go command hands a
// vettool (a subset: fields the shim does not need are omitted and
// ignored by the decoder).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFile is the persisted fact format: analyzer name -> raw fact.
type vetxFile map[string]json.RawMessage

// Run executes the analyzers over the unit described by cfgPath and
// returns the process exit code. Diagnostics go to stderr, matching the
// go vet relay format.
func Run(cfgPath string, analyzers []*framework.Analyzer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
		return 1
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return typecheckFailed(cfg, fmt.Errorf("parsing %s: %v", name, err))
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			return compilerImporter.Import(path)
		}),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailed(cfg, err)
	}

	// Facts of dependencies, loaded lazily from the vetx files the go
	// command produced for them.
	depFacts := make(map[string]vetxFile)
	readDepFact := func(analyzer, depPath string) (json.RawMessage, bool) {
		vf, ok := depFacts[depPath]
		if !ok {
			vf = vetxFile{}
			if path, exists := cfg.PackageVetx[depPath]; exists {
				if data, err := os.ReadFile(path); err == nil {
					// A missing or malformed vetx file only means no
					// facts; analyzers degrade to flagging the call.
					_ = json.Unmarshal(data, &vf)
				}
			}
			depFacts[depPath] = vf
		}
		raw, ok := vf[analyzer]
		return raw, ok
	}

	out := vetxFile{}
	var diags []framework.Diagnostic
	for _, a := range analyzers {
		a := a
		pass := framework.NewPass(a, fset, files, pkg, info,
			func(d framework.Diagnostic) { diags = append(diags, d) },
			func(depPath string) (json.RawMessage, bool) { return readDepFact(a.Name, depPath) },
			func(raw json.RawMessage) { out[a.Name] = raw })
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "pthammer-lint: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}

	if err := writeVetx(cfg, out); err != nil {
		fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
		return 1
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0
	}
	framework.SortDiagnostics(fset, diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	return 2
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config file %s: %v", path, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s has no files", cfg.ImportPath)
	}
	return cfg, nil
}

// writeVetx persists this unit's facts. The go command requires the file
// to exist even when no analyzer exported anything.
func writeVetx(cfg *Config, out vetxFile) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

// typecheckFailed honors SucceedOnTypecheckFailure: the go command sets
// it when the compiler itself will report the error, and expects the
// vettool to stay quiet and succeed.
func typecheckFailed(cfg *Config, err error) int {
	_ = writeVetx(cfg, vetxFile{})
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
	return 1
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
