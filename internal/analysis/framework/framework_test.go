package framework

import (
	"encoding/json"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseAndCheck type-checks one synthetic file and returns everything a
// Pass needs.
func parseAndCheck(t *testing.T, filename, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("example.test/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

const frameworkSrc = `// Package p exercises framework helpers.
package p

import "sort"

type Dev struct{}

// Flush is a method: DeclName must render the receiver base type.
//
//pthammer:noalloc
func (d *Dev) Flush() {}

func Plain(xs []int) {
	sort.Ints(xs) // resolvable package-qualified call
	d := &Dev{}
	d.Flush() //pthammer:privileged-ok test fixture
	f := func() {}
	f() // dynamic call: FuncFor must return nil
}
`

func TestFuncForAndDeclName(t *testing.T) {
	fset, f, _, info := parseAndCheck(t, "p.go", frameworkSrc)

	var names []string
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			names = append(names, DeclName(fd))
		}
	}
	if len(names) != 2 || names[0] != "Dev.Flush" || names[1] != "Plain" {
		t.Fatalf("DeclName over decls = %v, want [Dev.Flush Plain]", names)
	}

	var got []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := FuncFor(info, call); fn != nil {
			got = append(got, fn.Name())
			if fn.Name() == "Flush" {
				name, pkgPath := ReceiverTypeName(fn)
				if name != "Dev" || pkgPath != "example.test/p" {
					t.Errorf("ReceiverTypeName(Flush) = %q, %q", name, pkgPath)
				}
			}
		} else {
			got = append(got, "<dynamic>")
		}
		return true
	})
	want := []string{"Ints", "Flush", "<dynamic>"}
	if len(got) != len(want) {
		t.Fatalf("resolved calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resolved calls = %v, want %v", got, want)
		}
	}
	_ = fset
}

func TestAnnotations(t *testing.T) {
	fset, f, _, _ := parseAndCheck(t, "p.go", frameworkSrc)
	ann := CollectAnnotations(fset, []*ast.File{f})

	var flushDecl *ast.FuncDecl
	var flushCall ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "Flush" {
			flushDecl = fd
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Flush" {
				flushCall = call
			}
		}
		return true
	})
	if flushDecl == nil || flushCall == nil {
		t.Fatal("fixture decls not found")
	}
	if !FuncAnnotated("noalloc", flushDecl) {
		t.Error("doc-comment //pthammer:noalloc not detected")
	}
	if FuncAnnotated("alloc-ok", flushDecl) {
		t.Error("wrong annotation name matched")
	}
	if !ann.At("privileged-ok", flushCall.Pos()) {
		t.Error("trailing //pthammer:privileged-ok not detected at call site")
	}
	if ann.At("alloc-ok", flushCall.Pos()) {
		t.Error("absent annotation reported present")
	}
}

func TestPassFactsAndReport(t *testing.T) {
	fset, f, pkg, info := parseAndCheck(t, "p.go", frameworkSrc)

	a := &Analyzer{Name: "t", Doc: "test"}
	var reported []Diagnostic
	store := map[string]json.RawMessage{"dep/pkg": json.RawMessage(`{"Funcs":["X"]}`)}
	var written json.RawMessage
	pass := NewPass(a, fset, []*ast.File{f}, pkg, info,
		func(d Diagnostic) { reported = append(reported, d) },
		func(path string) (json.RawMessage, bool) { raw, ok := store[path]; return raw, ok },
		func(raw json.RawMessage) { written = raw })

	if got, want := pass.PkgPath(), "example.test/p"; got != want {
		t.Fatalf("PkgPath() = %q, want %q", got, want)
	}

	var fact struct{ Funcs []string }
	if !pass.ImportFact("dep/pkg", &fact) || len(fact.Funcs) != 1 || fact.Funcs[0] != "X" {
		t.Fatalf("ImportFact = %+v", fact)
	}
	if pass.ImportFact("missing/pkg", &fact) {
		t.Fatal("ImportFact reported a fact for an unknown package")
	}
	if err := pass.ExportFact(map[string]int{"n": 1}); err != nil {
		t.Fatal(err)
	}
	if string(written) != `{"n":1}` {
		t.Fatalf("ExportFact wrote %q", written)
	}

	pass.Reportf(f.Pos(), "finding %d", 7)
	if len(reported) != 1 || reported[0].Message != "finding 7" {
		t.Fatalf("Reportf delivered %+v", reported)
	}

	// Nil fact channels (drivers that need no facts) must be inert.
	bare := NewPass(a, fset, []*ast.File{f}, pkg, info, func(Diagnostic) {}, nil, nil)
	if bare.ImportFact("dep/pkg", &fact) {
		t.Fatal("nil readFact produced a fact")
	}
	if err := bare.ExportFact(1); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalPkgPath(t *testing.T) {
	cases := map[string]string{
		"pthammer/internal/sweep":                                "pthammer/internal/sweep",
		"pthammer/internal/sweep [pthammer/internal/sweep.test]": "pthammer/internal/sweep",
		"": "",
	}
	for in, want := range cases {
		if got := CanonicalPkgPath(in); got != want {
			t.Errorf("CanonicalPkgPath(%q) = %q, want %q", in, got, want)
		}
	}
	if p := (&Pass{}); p.PkgPath() != "" {
		t.Error("PkgPath on nil package should be empty")
	}
}

func TestPathMatches(t *testing.T) {
	if !PathMatches("internal/machine", "internal/machine") {
		t.Error("exact path did not match")
	}
	if !PathMatches("pthammer/internal/machine", "internal/machine") {
		t.Error("suffix path did not match")
	}
	if PathMatches("pthammer/notinternal/machine", "internal/machine") {
		t.Error("partial segment matched")
	}
}

func TestSortDiagnostics(t *testing.T) {
	fset := token.NewFileSet()
	fa := fset.AddFile("a.go", -1, 100)
	fb := fset.AddFile("b.go", -1, 100)
	fa.SetLinesForContent([]byte("x\ny\nz\n"))
	fb.SetLinesForContent([]byte("x\ny\nz\n"))
	ds := []Diagnostic{
		{Pos: fb.Pos(0), Message: "b1"},
		{Pos: fa.Pos(4), Message: "a3"},
		{Pos: fa.Pos(2), Message: "a2"},
		{Pos: fa.Pos(3), Message: "a2col2"},
	}
	SortDiagnostics(fset, ds)
	var got []string
	for _, d := range ds {
		got = append(got, d.Message)
	}
	want := []string{"a2", "a2col2", "a3", "b1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order %v, want %v", got, want)
		}
	}
}
