package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// AnnotationPrefix introduces every pthammer lint annotation. The full
// forms are documented in CONTRIBUTING.md:
//
//	//pthammer:noalloc                 (function doc comment)
//	//pthammer:alloc-ok <why>          (line-level noalloc exemption)
//	//pthammer:nondeterministic-ok     (line-level determinism exemption)
//	//pthammer:privileged-ok <why>     (line-level privilegedops exemption)
//	//pthammer:nocharge-ok <why>       (line-level clockcharge exemption)
const AnnotationPrefix = "pthammer:"

// Annotations indexes //pthammer:* line annotations across a package's
// files so analyzers can ask "is this site exempted" in O(1).
type Annotations struct {
	fset *token.FileSet
	// lines maps annotation name -> "file:line" sites carrying it.
	lines map[string]map[lineKey]bool
}

type lineKey struct {
	file string
	line int
}

// annotationName extracts the name from one comment ("//pthammer:alloc-ok
// grow path" -> "alloc-ok"), or "" if the comment is not an annotation.
func annotationName(text string) string {
	body := strings.TrimPrefix(text, "//")
	if !strings.HasPrefix(body, AnnotationPrefix) {
		return ""
	}
	body = strings.TrimPrefix(body, AnnotationPrefix)
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		body = body[:i]
	}
	return body
}

// CollectAnnotations scans every comment in files and indexes the
// pthammer annotations by file and line.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, lines: make(map[string]map[lineKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name := annotationName(c.Text)
				if name == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				m := a.lines[name]
				if m == nil {
					m = make(map[lineKey]bool)
					a.lines[name] = m
				}
				m[lineKey{pos.Filename, pos.Line}] = true
			}
		}
	}
	return a
}

// At reports whether the named annotation appears on the same line as pos
// or on the line directly above it (the two idiomatic placements: trailing
// comment, or a full-line comment above the flagged statement).
func (a *Annotations) At(name string, pos token.Pos) bool {
	m := a.lines[name]
	if m == nil {
		return false
	}
	p := a.fset.Position(pos)
	return m[lineKey{p.Filename, p.Line}] || m[lineKey{p.Filename, p.Line - 1}]
}

// FuncAnnotated reports whether the function declaration's doc comment
// carries the named annotation (e.g. //pthammer:noalloc).
func FuncAnnotated(name string, decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if annotationName(c.Text) == name {
			return true
		}
	}
	return false
}

// IsTestFile reports whether the file's name ends in _test.go.
func IsTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// PathMatches reports whether the import path is the given suffix or ends
// in "/"+suffix — the matching rule every pthammer analyzer uses so the
// checks work identically on the real module and on testdata stubs.
func PathMatches(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
