// Package framework is a minimal, dependency-free stand-in for the parts
// of golang.org/x/tools/go/analysis that pthammer-lint needs. The build
// environment vendors nothing, so the Analyzer/Pass/Diagnostic shapes are
// re-derived here on top of go/ast and go/types alone. Drivers (the
// standalone walker in internal/analysis/driver and the go vet unitchecker
// shim in internal/analysis/unitcheck) construct a Pass per package and
// hand it to each Analyzer's Run.
package framework

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. Name appears in diagnostics and
// keys the analyzer's facts in the per-package facts file.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the fact channel between dependency passes.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	// readFact returns the raw fact this analyzer exported for the
	// given dependency package, if any. Wired by the driver.
	readFact func(pkgPath string) (json.RawMessage, bool)
	// writeFact stores this package's exported fact. Wired by the driver.
	writeFact func(raw json.RawMessage)
}

// NewPass assembles a Pass. readFact/writeFact may be nil when the
// analyzer set in use needs no cross-package facts.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	report func(Diagnostic),
	readFact func(string) (json.RawMessage, bool),
	writeFact func(json.RawMessage)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		Report:    report,
		readFact:  readFact,
		writeFact: writeFact,
	}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ImportFact unmarshals the fact this analyzer exported for pkgPath into
// out, reporting whether such a fact exists.
func (p *Pass) ImportFact(pkgPath string, out any) bool {
	if p.readFact == nil {
		return false
	}
	raw, ok := p.readFact(pkgPath)
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// ExportFact records v as this package's fact for the current analyzer.
func (p *Pass) ExportFact(v any) error {
	if p.writeFact == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	p.writeFact(raw)
	return nil
}

// PkgPath returns the package's canonical import path ("" for a nil
// package, which only happens on typecheck failure paths drivers already
// handle).
func (p *Pass) PkgPath() string {
	if p.Pkg == nil {
		return ""
	}
	return CanonicalPkgPath(p.Pkg.Path())
}

// CanonicalPkgPath strips the " [pkg.test]" suffix go vet appends to
// test-variant import paths, so suffix matching and fact lookup behave
// identically in standalone and vettool runs.
func CanonicalPkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// SortDiagnostics orders diagnostics by file position for stable output.
func SortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// FuncFor returns the *types.Func a call expression statically resolves
// to, or nil for dynamic calls (func values, interface methods) and
// builtins.
func FuncFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// DeclName renders a function declaration as its annotation/allowlist
// key: "Func" for plain functions, "Recv.Method" (receiver base type
// name) for methods.
func DeclName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// ReceiverTypeName returns the name of the named type (or pointer-to-named)
// that is fn's receiver base, and the receiver's package path. Empty
// strings for non-methods.
func ReceiverTypeName(fn *types.Func) (typeName, pkgPath string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), ""
	}
	return obj.Name(), obj.Pkg().Path()
}
