package mem

import "testing"

// TestSetAssocResetMatchesFresh is the per-component half of the
// Reset/Recycle contract for the tag-array primitive underneath every
// cache and TLB level: after Reset, no previously inserted tag is
// visible, no stored value survives, and a replayed insertion sequence
// produces exactly the hit/eviction trace of a just-built instance —
// including LRU order, which a lazy "mark everything invalid but keep
// the order words" reset could silently skew.
func TestSetAssocResetMatchesFresh(t *testing.T) {
	const sets, ways = 4, 2
	recycled := NewSetAssoc(sets, ways)
	for tag := uint64(1); tag <= 24; tag++ {
		recycled.InsertV(tag, tag*10)
	}
	recycled.Reset()

	for tag := uint64(1); tag <= 24; tag++ {
		if recycled.Contains(tag) {
			t.Fatalf("tag %d survived Reset", tag)
		}
		if _, hit := recycled.LookupV(tag); hit {
			t.Fatalf("value for tag %d survived Reset", tag)
		}
	}

	fresh := NewSetAssoc(sets, ways)
	// Replay: revisits (LRU touches), conflict evictions and misses
	// must agree step for step between the recycled and fresh arrays.
	seq := []uint64{3, 7, 11, 3, 15, 19, 7, 23, 27, 3, 31}
	for i, tag := range seq {
		rHit, rEvTag, rEv := recycled.LookupInsert(tag)
		fHit, fEvTag, fEv := fresh.LookupInsert(tag)
		if rHit != fHit || rEvTag != fEvTag || rEv != fEv {
			t.Fatalf("step %d (tag %d): recycled (%v, %d, %v) != fresh (%v, %d, %v)",
				i, tag, rHit, rEvTag, rEv, fHit, fEvTag, fEv)
		}
	}
}
