package mem

import (
	"math/rand"
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindLoad:     "load",
		KindStore:    "store",
		KindPTEFetch: "pte-fetch",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind %d String = %q, want %q", int(k), got, s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		LevelNone:     "none",
		LevelTLB1:     "dTLB",
		LevelTLB2:     "sTLB",
		LevelPageWalk: "page-walk",
		LevelL1:       "L1",
		LevelL2:       "L2",
		LevelLLC:      "LLC",
		LevelDRAM:     "DRAM",
	}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("Level %d String = %q, want %q", int(l), got, s)
		}
	}
	if got := Level(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown level String = %q", got)
	}
}

func TestSetAssocLRUAndInvalidate(t *testing.T) {
	s := NewSetAssoc(2, 2) // tags index sets by low bit

	// Fill set 0 (even tags), refresh tag 0, then overflow: LRU victim
	// must be tag 2.
	s.Insert(0)
	s.Insert(2)
	if !s.Lookup(0) {
		t.Fatal("tag 0 missing after insert")
	}
	ev, evicted := s.Insert(4)
	if !evicted || ev != 2 {
		t.Fatalf("evicted (%d, %v), want (2, true)", ev, evicted)
	}
	if !s.Contains(0) || s.Contains(2) || !s.Contains(4) {
		t.Fatal("post-eviction contents wrong")
	}

	// Re-inserting a present tag refreshes instead of evicting.
	if _, evicted := s.Insert(0); evicted {
		t.Fatal("refreshing insert evicted")
	}

	// Odd tags live in set 1, undisturbed.
	s.Insert(1)
	if !s.Contains(1) || !s.Contains(0) {
		t.Fatal("sets interfered")
	}

	if !s.Invalidate(4) || s.Contains(4) {
		t.Fatal("Invalidate failed")
	}
	if s.Invalidate(4) {
		t.Fatal("double Invalidate reported a hit")
	}
	if s.Lookup(4) {
		t.Fatal("invalidated tag still present")
	}
}

func TestNewSetAssocPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 2}, {2, 0}, {3, 2}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d, %d) did not panic", shape[0], shape[1])
				}
			}()
			NewSetAssoc(shape[0], shape[1])
		}()
	}
}

// TestLookupInsertMatchesLookupThenInsert is the fused-probe property
// test: on a random tag stream, LookupInsert must leave the array in
// exactly the state of the unfused Lookup-then-Insert pair, and report
// the same hits and evictions.
func TestLookupInsertMatchesLookupThenInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fused := NewSetAssoc(4, 3)
	plain := NewSetAssoc(4, 3)
	for i := 0; i < 20000; i++ {
		tag := rng.Uint64() % 64 // heavy set reuse so evictions are common
		hit, evTag, evicted := fused.LookupInsert(tag)
		wantHit := plain.Lookup(tag)
		wantEvTag, wantEvicted := uint64(0), false
		if !wantHit {
			wantEvTag, wantEvicted = plain.Insert(tag)
		}
		if hit != wantHit || evicted != wantEvicted || evTag != wantEvTag {
			t.Fatalf("step %d tag %d: fused (%v, %d, %v) != plain (%v, %d, %v)",
				i, tag, hit, evTag, evicted, wantHit, wantEvTag, wantEvicted)
		}
		// Occasionally invalidate to exercise the packed-prefix repair.
		if i%7 == 0 {
			victim := rng.Uint64() % 64
			if fused.Invalidate(victim) != plain.Invalidate(victim) {
				t.Fatalf("step %d: Invalidate(%d) diverged", i, victim)
			}
		}
		for tag := uint64(0); tag < 64; tag++ {
			if fused.Contains(tag) != plain.Contains(tag) {
				t.Fatalf("step %d: contents diverged at tag %d", i, tag)
			}
		}
	}
}

// TestSetAssocValues exercises the payload plumbing the TLB and
// paging-structure caches rely on: values ride along inserts, survive
// refreshes and the packed-prefix swap Invalidate performs, and die
// with eviction.
func TestSetAssocValues(t *testing.T) {
	s := NewSetAssoc(1, 3)
	s.InsertV(10, 100)
	s.InsertV(20, 200)
	s.InsertV(30, 300)

	if v, hit := s.LookupV(20); !hit || v != 200 {
		t.Fatalf("LookupV(20) = %d/%v, want 200/true", v, hit)
	}
	if v, hit := s.LookupV(99); hit || v != 0 {
		t.Fatalf("LookupV(99) = %d/%v, want miss", v, hit)
	}

	// A hit via the fused probe returns the stored value, not the
	// provided one: cached translations are not silently remapped.
	if hit, cur, _, _ := s.LookupInsertV(10, 999); !hit || cur != 100 {
		t.Fatalf("LookupInsertV(10) = %v/%d, want hit/100", hit, cur)
	}

	// Invalidate the middle entry: the packed-prefix swap must carry
	// tag 30's value along with its tag.
	s.Invalidate(20)
	if v, hit := s.LookupV(30); !hit || v != 300 {
		t.Fatalf("after Invalidate(20), LookupV(30) = %d/%v, want 300/true", v, hit)
	}

	// Refill, touch everything except 10 so it is LRU, then overflow:
	// the eviction must surface tag 10 and install 50's value.
	s.InsertV(40, 400)
	s.LookupV(30)
	s.LookupV(40)
	if _, _, evTag, evicted := s.LookupInsertV(50, 500); !evicted || evTag != 10 {
		t.Fatalf("eviction = %d/%v, want 10/true", evTag, evicted)
	}
	if v, hit := s.LookupV(50); !hit || v != 500 {
		t.Fatalf("LookupV(50) = %d/%v, want 500/true", v, hit)
	}
}

// TestLookupMissDoesNotPerturbLRU pins the tick fix: failed lookups
// must not advance replacement state, so the LRU victim is decided
// only by hits and inserts.
func TestLookupMissDoesNotPerturbLRU(t *testing.T) {
	s := NewSetAssoc(1, 2)
	s.Insert(10) // older
	s.Insert(20) // newer

	// A burst of misses between the inserts and the next eviction must
	// be invisible to replacement order.
	for i := 0; i < 100; i++ {
		if s.Lookup(30) {
			t.Fatal("absent tag reported present")
		}
	}
	ev, evicted := s.Insert(40)
	if !evicted || ev != 10 {
		t.Fatalf("evicted (%d, %v), want (10, true): miss stream perturbed LRU", ev, evicted)
	}

	// Hits do reorder: touch 20 (older than 40 now), then overflow —
	// the victim must be 40.
	if !s.Lookup(20) {
		t.Fatal("tag 20 missing")
	}
	ev, evicted = s.Insert(50)
	if !evicted || ev != 40 {
		t.Fatalf("evicted (%d, %v), want (40, true)", ev, evicted)
	}
}

// TestInvalidateKeepsLRUOrder exercises eviction order after the
// packed-prefix swap that Invalidate performs.
func TestInvalidateKeepsLRUOrder(t *testing.T) {
	s := NewSetAssoc(1, 4)
	for _, tag := range []uint64{1, 2, 3, 4} {
		s.Insert(tag)
	}
	s.Invalidate(1) // oldest goes away; 2 is now LRU
	s.Insert(5)     // fills the freed slot, no eviction
	if ev, evicted := s.Insert(6); !evicted || ev != 2 {
		t.Fatalf("evicted (%d, %v), want (2, true)", ev, evicted)
	}
}

// TestNoFalseHitOnTagZero pins the dead-lane SWAR regression: zeroBytes'
// borrow propagation can flag dead lanes above a true fingerprint match,
// and a dead slot's zeroed tag plane must never verify against a probed
// tag of 0. Tag 0 is reachable — line 0 for the caches, VPN 0 for the
// TLBs — so a false hit here let Invalidate(0) delete a live tag and
// corrupt the recency permutation.
func TestNoFalseHitOnTagZero(t *testing.T) {
	// A nonzero tag whose stored fingerprint byte is 1 — the byte
	// fpBroadcast(0) probes with — so its fingerprint match seeds the
	// borrow that flags the dead lanes above it.
	tag := uint64(1)
	for (tag*fpMul)>>56 > 1 {
		tag++
	}

	s := NewSetAssoc(1, 16)
	s.Insert(tag)

	if s.Lookup(0) {
		t.Fatal("Lookup(0) hit a set that never held tag 0")
	}
	if s.Invalidate(0) {
		t.Fatal("Invalidate(0) deleted from a set that never held tag 0")
	}
	if !s.Lookup(tag) || !s.Contains(tag) {
		t.Fatalf("live tag %#x lost after Invalidate(0)", tag)
	}

	// Tag 0 itself stays a first-class tag: insertable, findable,
	// removable.
	if hit, _, _ := s.LookupInsert(0); hit {
		t.Fatal("LookupInsert(0) hit before tag 0 was inserted")
	}
	if !s.Lookup(0) {
		t.Fatal("tag 0 missing after insert")
	}
	if !s.Invalidate(0) || s.Lookup(0) {
		t.Fatal("tag 0 did not invalidate cleanly")
	}
	if !s.Lookup(tag) {
		t.Fatalf("live tag %#x lost after removing tag 0", tag)
	}
}

// TestProbeBeyondWaysLanes pins the beyond-ways companion bug: with
// fewer than 8 ways the fingerprint words cover lanes the tag plane
// does not, so a candidate flag on such a lane sent verify into the
// next set's tags — and past the end of the array on the last set. A
// probed tag whose fingerprint equals the dead-lane byte makes every
// beyond-ways lane a candidate, so without candMask this panics.
func TestProbeBeyondWaysLanes(t *testing.T) {
	const sets, ways = 16, 4 // the dTLB shape
	// A tag in the last set whose fingerprint is the dead-lane byte.
	tag := uint64(sets - 1)
	for (tag*fpMul)>>56 != deadFP {
		tag += sets
	}

	s := NewSetAssoc(sets, ways)
	if s.Lookup(tag) || s.Invalidate(tag) {
		t.Fatal("empty structure reported a hit")
	}
	if _, ok := s.LookupV(tag); ok {
		t.Fatal("empty structure returned a value")
	}
	if hit, _, _ := s.LookupInsert(tag); hit {
		t.Fatal("LookupInsert hit on first insert")
	}
	if !s.Lookup(tag) {
		t.Fatal("tag missing after insert")
	}
}

// BenchmarkLookupInsertMiss measures the fused probe on a miss-heavy
// stream against a full 16-way set (the LLC shape).
func BenchmarkLookupInsertMiss(b *testing.B) {
	s := NewSetAssoc(1, 16)
	for tag := uint64(0); tag < 16; tag++ {
		s.Insert(tag)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.LookupInsert(uint64(i))
	}
}

// BenchmarkLookupThenInsertMiss is the unfused baseline for comparison.
func BenchmarkLookupThenInsertMiss(b *testing.B) {
	s := NewSetAssoc(1, 16)
	for tag := uint64(0); tag < 16; tag++ {
		s.Insert(tag)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Lookup(uint64(i)) {
			s.Insert(uint64(i))
		}
	}
}
