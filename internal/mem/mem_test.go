package mem

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindLoad:     "load",
		KindStore:    "store",
		KindPTEFetch: "pte-fetch",
	}
	for k, s := range want {
		if got := k.String(); got != s {
			t.Errorf("Kind %d String = %q, want %q", int(k), got, s)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		LevelNone:     "none",
		LevelTLB1:     "dTLB",
		LevelTLB2:     "sTLB",
		LevelPageWalk: "page-walk",
		LevelL1:       "L1",
		LevelL2:       "L2",
		LevelLLC:      "LLC",
		LevelDRAM:     "DRAM",
	}
	for l, s := range want {
		if got := l.String(); got != s {
			t.Errorf("Level %d String = %q, want %q", int(l), got, s)
		}
	}
	if got := Level(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown level String = %q", got)
	}
}

func TestSetAssocLRUAndInvalidate(t *testing.T) {
	s := NewSetAssoc(2, 2) // tags index sets by low bit

	// Fill set 0 (even tags), refresh tag 0, then overflow: LRU victim
	// must be tag 2.
	s.Insert(0)
	s.Insert(2)
	if !s.Lookup(0) {
		t.Fatal("tag 0 missing after insert")
	}
	ev, evicted := s.Insert(4)
	if !evicted || ev != 2 {
		t.Fatalf("evicted (%d, %v), want (2, true)", ev, evicted)
	}
	if !s.Contains(0) || s.Contains(2) || !s.Contains(4) {
		t.Fatal("post-eviction contents wrong")
	}

	// Re-inserting a present tag refreshes instead of evicting.
	if _, evicted := s.Insert(0); evicted {
		t.Fatal("refreshing insert evicted")
	}

	// Odd tags live in set 1, undisturbed.
	s.Insert(1)
	if !s.Contains(1) || !s.Contains(0) {
		t.Fatal("sets interfered")
	}

	if !s.Invalidate(4) || s.Contains(4) {
		t.Fatal("Invalidate failed")
	}
	if s.Invalidate(4) {
		t.Fatal("double Invalidate reported a hit")
	}
	if s.Lookup(4) {
		t.Fatal("invalidated tag still present")
	}
}

func TestNewSetAssocPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][2]int{{0, 2}, {2, 0}, {3, 2}, {-4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSetAssoc(%d, %d) did not panic", shape[0], shape[1])
				}
			}()
			NewSetAssoc(shape[0], shape[1])
		}()
	}
}
