// Package mem defines the access-path API every simulated
// memory-hierarchy device implements. A CPU load in the PThammer model
// traverses the hierarchy — dTLB → sTLB → page walk, then L1 → L2 → LLC
// → DRAM — and each hop is a Device that answers a Lookup with a Result
// carrying where the access was served and how many cycles it cost.
// Devices chain through the same interface, so the machine facade,
// future page walker, and eviction-set algorithms all program against
// one surface.
//
// Contract: a Device advances the shared timing.Clock by exactly the
// Latency it reports (devices that forward a miss report the serving
// device's latency and advance nothing themselves). That is what keeps
// counter deltas and timing histograms consistent by construction.
// In the multi-core mode a shared device is reached through per-core
// ports (cache.Hierarchy over cache.SharedLLC, dram.Port over dram.DRAM)
// and the contract holds per port: whatever shared state a lookup
// mutates, the full reported latency — including any arbitration
// surcharge for crossing behind another core — is charged to the
// accessing core's clock and counters, never to another core's.
package mem

import (
	"fmt"

	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Kind classifies what an access is, which matters to devices that
// treat demand loads and implicit (page-walker) fetches differently —
// the distinction at the heart of PThammer.
type Kind int

const (
	// KindLoad is an explicit demand load issued by the program.
	KindLoad Kind = iota
	// KindStore is an explicit demand store.
	KindStore
	// KindPTEFetch is an implicit access issued by the hardware page
	// walker to fetch a page-table entry. These are the accesses
	// PThammer turns into hammer activations.
	KindPTEFetch
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindPTEFetch:
		return "pte-fetch"
	default:
		return fmt.Sprintf("mem.Kind(%d)", int(k))
	}
}

// Level identifies which device in the hierarchy served an access.
type Level int

const (
	// LevelNone means the access has not been served by any device.
	LevelNone Level = iota
	// LevelTLB1 is the first-level data TLB.
	LevelTLB1
	// LevelTLB2 is the shared second-level TLB (sTLB).
	LevelTLB2
	// LevelPageWalk means the translation required a hardware page walk.
	LevelPageWalk
	// LevelL1 is the L1 data cache.
	LevelL1
	// LevelL2 is the unified per-core L2 cache.
	LevelL2
	// LevelLLC is the shared inclusive last-level cache.
	LevelLLC
	// LevelDRAM means the access went all the way to a DRAM bank.
	LevelDRAM
)

// String returns a short human-readable name for the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelTLB1:
		return "dTLB"
	case LevelTLB2:
		return "sTLB"
	case LevelPageWalk:
		return "page-walk"
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelLLC:
		return "LLC"
	case LevelDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("mem.Level(%d)", int(l))
	}
}

// Access is one request travelling down the hierarchy.
type Access struct {
	Addr phys.Addr
	Kind Kind
}

// Result is a device's answer: how long the access took, whether this
// chain served it from a hit, and which level the data came from.
type Result struct {
	Latency timing.Cycles
	Hit     bool
	Source  Level
}

// Device is one level (or chain of levels) of the simulated hierarchy.
// Lookup services the access, charges its cost to the shared clock and
// performance counters, and reports where it was served.
type Device interface {
	Lookup(Access) Result
}

// Translator is the translation side of the hierarchy: it resolves a
// virtual access to the physical frame it maps to, charging the cost
// of however it learned that (TLB hit, paging-structure cache hit, or
// a full page walk fetching PTE bytes through the data hierarchy).
// The same clock contract as Device applies: the shared clock advances
// by exactly the reported Latency.
type Translator interface {
	Translate(Access) (phys.Frame, Result)
}
