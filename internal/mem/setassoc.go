// Set-associative LRU array shared by the cache levels (tagged by line
// number) and the TLB levels (tagged by virtual page number). Keeping
// one implementation means replacement-policy fixes apply to both — an
// eviction-set algorithm tuned against the cache sees the same LRU the
// TLB uses.
package mem

import (
	"fmt"
	"math/bits"
)

// MaxWays is the largest associativity SetAssoc supports. The limit
// exists because replacement state is a packed permutation of 4-bit way
// indices in one uint64 per set; every structure the simulator models
// (16-way LLC, 8-way L1/L2, 4-way TLBs and paging-structure caches)
// fits with room to spare.
const MaxWays = 16

// setHdr is the per-set metadata, sized so the fingerprints, recency
// permutation and live count a probe needs all arrive on one host
// cache line with a single bounds check.
type setHdr struct {
	// fp holds the 8-bit fingerprint of each slot's tag, slot i in
	// byte i&7 of word i>>3. Dead and beyond-ways lanes hold deadFP.
	fp [2]uint64
	// order is the recency permutation: 16 nibbles, each a slot index,
	// most-recently-used at nibble 0. Invariant: always a full
	// permutation of 0..15, with every unused slot index i (i >= live)
	// parked at nibble position i, so inserting into slot `live` is a
	// move-to-front of a nibble at a known position.
	order uint64
	// live is the number of valid entries packed at the front of the
	// set.
	live uint64
}

// SetAssoc is a set-associative array of uint64 tags with true-LRU
// replacement. The set index is the tag's low bits, so callers index
// by line number or page number directly.
//
// Within a set, slot position carries no meaning — replacement order is
// decided purely by the recency permutation — so live entries are kept
// packed at the front of the set and every probe considers only the
// live prefix.
//
// The representation is built for the hammer hot path, where the target
// set is full and almost every probe misses:
//
//   - Presence is tested against 8-bit fingerprints with a SWAR
//     zero-byte scan: two 64-bit loads and a handful of ALU ops decide
//     "no way can match" without ever touching the tag plane, instead
//     of a data-dependent compare-and-branch loop over every way.
//     Fingerprint candidates (~1/256 per way) are verified against the
//     full tag.
//
//   - Recency is a packed permutation of 4-bit slot indices in one
//     uint64 per set, most-recent in the low nibble. A hit moves its
//     slot's nibble to the front with shift/mask arithmetic; a full-set
//     miss reads the LRU victim straight out of the top live nibble and
//     rotates it to the front. This is exactly the classic true-LRU
//     stack, so victims are bit-identical to the stamp-scan
//     implementation this replaced — only the O(ways) victim search is
//     gone.
type SetAssoc struct {
	ways    uint64
	setMask uint64
	// topShift extracts the LRU nibble of a full set: 4*ways - 4.
	topShift uint64
	// winMask covers the low 4*ways bits of the permutation — the
	// window that rotates when a full set evicts.
	winMask uint64
	// candMask keeps the SWAR candidate flags to lanes < ways. Lanes
	// beyond the associativity share the fingerprint words but have no
	// tag-plane slots, so an unmasked flag there would send verify into
	// the next set's tags — or past the end of the array on the last
	// set. The mask depends only on the shape, so it is one AND per
	// word on the probe path.
	candMask [2]uint64
	hdr      []setHdr
	// tags[set*ways ... set*ways+hdr[set].live) are the live tags.
	tags []uint64
	// vals[i] is the payload stored alongside tags[i]. Nil for tag-only
	// users; the TLB stores the physical frame a page maps to, the
	// paging-structure caches the next-level table frame.
	vals []uint64
}

const (
	fpMul = 0x9E3779B97F4A7C15 // Fibonacci hashing: fingerprint = top byte of tag*fpMul
	lo8   = 0x0101010101010101
	hi8   = 0x8080808080808080
	lo4   = 0x1111111111111111
	hi4   = 0x8888888888888888
	// orderInit parks slot index i at nibble position i.
	orderInit = 0xFEDCBA9876543210
	// deadFP is the fingerprint of a dead (or beyond-ways) lane. The
	// choice is load-bearing: the zeroBytes scan can only flag a lane
	// whose XOR byte is 0x00, or 0x01 with a borrow propagating in, so
	// a flagged lane's fingerprint is within 1 of the probed one. The
	// only probed tag that could falsely verify against a dead slot's
	// zeroed tag plane is tag 0 — reachable as line 0 or VPN 0 — and
	// tag 0 always probes with fingerprint 1 (fpBroadcast maps a
	// computed 0 to 1), XOR 0x81 against deadFP: high bit set, never
	// flagged, not even spuriously. Dead lanes within the
	// associativity therefore need no live masking on the probe fast
	// path; lanes beyond it are excluded by candMask.
	deadFP = 0x80
)

// NewSetAssoc builds an array of sets × ways slots with a payload plane
// (InsertV/LookupV users: the TLB and paging-structure caches). Panics
// on a non-positive shape, a non-power-of-two set count, or more than
// MaxWays ways (callers validate their configs first; a bad shape here
// is a simulator bug).
func NewSetAssoc(sets, ways int) *SetAssoc {
	s := NewSetAssocTags(sets, ways)
	s.vals = make([]uint64, uint64(sets)*uint64(ways))
	return s
}

// NewSetAssocTags builds a tag-only array (no payload plane): the data
// caches track line presence and never store a value, so skipping the
// plane removes one host cache line write per fill and a large part of
// the array footprint.
func NewSetAssocTags(sets, ways int) *SetAssoc {
	if sets <= 0 || ways <= 0 || ways > MaxWays || uint64(sets)&(uint64(sets)-1) != 0 {
		panic(fmt.Sprintf("mem: bad set-assoc shape %d sets × %d ways (ways must be 1..%d, sets a power of two)", sets, ways, MaxWays))
	}
	s := &SetAssoc{
		ways:     uint64(ways),
		setMask:  uint64(sets) - 1,
		topShift: uint64(4*ways - 4),
		winMask:  uint64(1)<<(4*uint(ways)) - 1, // all ones for 16 ways (1<<64 == 0)
		hdr:      make([]setHdr, sets),
		tags:     make([]uint64, uint64(sets)*uint64(ways)),
	}
	for w := 0; w < ways; w++ {
		s.candMask[w>>3] |= uint64(0x80) << ((w & 7) * 8)
	}
	for i := range s.hdr {
		s.hdr[i].order = orderInit
		s.hdr[i].fp = [2]uint64{deadFP * lo8, deadFP * lo8}
	}
	return s
}

// Reset restores the array to the state NewSetAssoc(Tags) leaves it
// in: every set's LRU order, fingerprint lanes and live mask back to
// the fresh values, tag (and payload) planes zeroed. Part of the
// Reset/Recycle contract (CONTRIBUTING.md): a recycled array must be
// indistinguishable from a freshly constructed one, so machine
// recycling cannot leak one cohort's cache contents into the next.
//
//pthammer:noalloc
func (s *SetAssoc) Reset() {
	for i := range s.hdr {
		s.hdr[i].order = orderInit
		s.hdr[i].fp = [2]uint64{deadFP * lo8, deadFP * lo8}
		s.hdr[i].live = 0
	}
	clear(s.tags)
	clear(s.vals)
}

// fpBroadcast returns the tag's 8-bit fingerprint replicated into every
// byte lane, ready for the SWAR match. A computed fingerprint of 0 maps
// to 1, pinning tag 0's probe byte to 1 — the deadFP invariant relies
// on it — and keeping dead lanes (deadFP) out of the common probes.
//
//pthammer:noalloc
func fpBroadcast(tag uint64) uint64 {
	fp := (tag * fpMul) >> 56
	if fp == 0 {
		fp = 1
	}
	return fp * lo8
}

// zeroBytes flags (bit 8i+7) every zero byte of x. Borrow propagation
// can set spurious flags above the lowest zero byte, so callers verify
// each candidate against the tag plane.
//
//pthammer:noalloc
func zeroBytes(x uint64) uint64 { return (x - lo8) & ^x & hi8 }

// posOf returns the nibble position of slot index w in the recency
// permutation. Exactly one nibble matches (order is a permutation), and
// the SWAR zero-nibble artifact only flags positions above the true
// match, so the lowest flag is always it.
//
//pthammer:noalloc
func posOf(order, w uint64) uint64 {
	x := order ^ (w * lo4)
	return uint64(bits.TrailingZeros64((x-lo4)&^x&hi4)) >> 2
}

// moveToFront lifts the nibble at position p (which holds slot index w)
// to position 0, sliding positions 0..p-1 up one nibble. Positions
// above p are untouched.
//
//pthammer:noalloc
func moveToFront(order, p, w uint64) uint64 {
	low := order & (uint64(1)<<(4*p) - 1)
	keep := order &^ (uint64(1)<<(4*p+4) - 1)
	return keep | low<<4 | w
}

// setFP stores fingerprint byte fp for slot.
//
//pthammer:noalloc
func (h *setHdr) setFP(slot, fp uint64) {
	w := &h.fp[slot>>3&1]
	sh := (slot & 7) * 8
	*w = *w&^(uint64(0xFF)<<sh) | fp<<sh
}

// touch refreshes slot's recency unless it is already the MRU
// (repeated hits on one entry — the hot case for the paging-structure
// caches — then cost one compare).
//
//pthammer:noalloc
func (h *setHdr) touch(slot uint64) {
	if ord := h.order; ord&0xF != slot {
		h.order = moveToFront(ord, posOf(ord, slot), slot)
	}
}

// verify walks the candidate lane masks and confirms each against the
// tag plane. It is the out-of-line half of the probe: callers run the
// SWAR match inline (the overwhelmingly common zero-candidate miss
// stays branch-predictable straight-line code with no call) and only
// pay this call when some lane's fingerprint matched.
//
// Dead lanes need no masking here even though borrow propagation can
// flag one above a true fingerprint match: a dead slot's tag plane is
// zeroed, so it could only "verify" against a probed tag of 0, and tag
// 0's probe byte (1) XOR deadFP has the high bit set — zeroBytes can
// never flag a dead lane for it (see deadFP). Keeping that invariant in
// the fingerprint plane rather than as a live-count check here keeps
// this function within the inlining budget; the hit path pays no call.
//
//pthammer:noalloc
func (s *SetAssoc) verify(base, cand0, cand1, tag uint64) (slot uint64, ok bool) {
	for cand0 != 0 {
		i := uint64(bits.TrailingZeros64(cand0)) >> 3
		if s.tags[base+i] == tag {
			return i, true
		}
		cand0 &= cand0 - 1
	}
	for cand1 != 0 {
		i := 8 + uint64(bits.TrailingZeros64(cand1))>>3
		if s.tags[base+i] == tag {
			return i, true
		}
		cand1 &= cand1 - 1
	}
	return 0, false
}

// Lookup reports whether the tag is present, refreshing its recency on
// a hit. Misses leave replacement state untouched, so a stream of
// misses cannot perturb replacement order.
//
//pthammer:noalloc
func (s *SetAssoc) Lookup(tag uint64) bool {
	idx := tag & s.setMask
	h := &s.hdr[idx]
	b := fpBroadcast(tag)
	cand0 := zeroBytes(h.fp[0]^b) & s.candMask[0]
	cand1 := zeroBytes(h.fp[1]^b) & s.candMask[1]
	if cand0|cand1 != 0 {
		if slot, ok := s.verify(idx*s.ways, cand0, cand1, tag); ok {
			h.touch(slot)
			return true
		}
	}
	return false
}

// LookupV is Lookup for value-carrying users: a hit refreshes the
// tag's recency and returns the stored payload.
//
//pthammer:noalloc
func (s *SetAssoc) LookupV(tag uint64) (val uint64, hit bool) {
	idx := tag & s.setMask
	h := &s.hdr[idx]
	base := idx * s.ways
	b := fpBroadcast(tag)
	cand0 := zeroBytes(h.fp[0]^b) & s.candMask[0]
	cand1 := zeroBytes(h.fp[1]^b) & s.candMask[1]
	if cand0|cand1 != 0 {
		if slot, ok := s.verify(base, cand0, cand1, tag); ok {
			h.touch(slot)
			return s.vals[base+slot], true
		}
	}
	return 0, false
}

// Insert places the tag, evicting the LRU way if the set is full. It
// returns the evicted tag (valid only when evicted is true); inserting
// an already-present tag just refreshes it.
//
//pthammer:noalloc
func (s *SetAssoc) Insert(tag uint64) (evictedTag uint64, evicted bool) {
	return s.InsertV(tag, 0)
}

// InsertV is Insert with a payload attached to the tag.
//
//pthammer:noalloc
func (s *SetAssoc) InsertV(tag, val uint64) (evictedTag uint64, evicted bool) {
	_, _, evictedTag, evicted = s.LookupInsertV(tag, val)
	return evictedTag, evicted
}

// LookupInsert probes the set exactly once: on a hit it refreshes the
// tag's recency; on a miss it inserts the tag, evicting the LRU way if
// the set is full. It fuses the Lookup-then-Insert pair every
// cache/TLB miss path used to pay as two scans of the same set.
//
//pthammer:noalloc
func (s *SetAssoc) LookupInsert(tag uint64) (hit bool, evictedTag uint64, evicted bool) {
	hit, _, evictedTag, evicted = s.LookupInsertV(tag, 0)
	return hit, evictedTag, evicted
}

// LookupInsertV is the value-carrying fused probe. On a hit it
// refreshes the tag's recency and returns the payload already stored
// (the provided val is ignored: a cached translation is never silently
// remapped — invalidate first). On a miss it inserts the tag with val,
// evicting the LRU way if the set is full.
//
//pthammer:noalloc
func (s *SetAssoc) LookupInsertV(tag, val uint64) (hit bool, cur uint64, evictedTag uint64, evicted bool) {
	idx := tag & s.setMask
	h := &s.hdr[idx]
	base := idx * s.ways
	b := fpBroadcast(tag)
	cand0 := zeroBytes(h.fp[0]^b) & s.candMask[0]
	cand1 := zeroBytes(h.fp[1]^b) & s.candMask[1]
	if cand0|cand1 != 0 {
		if slot, ok := s.verify(base, cand0, cand1, tag); ok {
			h.touch(slot)
			if s.vals != nil {
				cur = s.vals[base+slot]
			}
			return true, cur, 0, false
		}
	}
	fp := b & 0xFF
	n := h.live
	if n < s.ways {
		// Room left: grow the live prefix instead of evicting. Slot
		// index n's nibble is parked at position n by invariant.
		slot := base + n
		s.tags[slot] = tag
		h.setFP(n, fp)
		h.order = moveToFront(h.order, n, n)
		if s.vals != nil {
			s.vals[slot] = val
		}
		h.live = n + 1
		return false, 0, 0, false
	}
	// Full set: the LRU victim is the top live nibble; refreshing it is
	// a rotate of the live window.
	ord := h.order
	win := ord & s.winMask
	v := win >> s.topShift
	evictedTag = s.tags[base+v]
	s.tags[base+v] = tag
	h.setFP(v, fp)
	h.order = ord&^s.winMask | (win<<4|v)&s.winMask
	if s.vals != nil {
		s.vals[base+v] = val
	}
	return false, 0, evictedTag, true
}

// removeNibble deletes the nibble at position p, sliding higher
// positions down; the vacated top nibble is left zero for the caller
// to repair with insertNibble.
//
//pthammer:noalloc
func removeNibble(order, p uint64) uint64 {
	low := order & (uint64(1)<<(4*p) - 1)
	return order>>(4*p+4)<<(4*p) | low
}

// insertNibble places value w at position p, sliding positions >= p up
// one nibble (the top nibble falls off).
//
//pthammer:noalloc
func insertNibble(order, p, w uint64) uint64 {
	low := order & (uint64(1)<<(4*p) - 1)
	return order>>(4*p)<<(4*p+4) | w<<(4*p) | low
}

// Invalidate drops the tag if present, reporting whether it was. The
// last live entry moves into the vacated slot to keep the prefix
// packed (slot order is meaningless; LRU lives in the permutation),
// and its nibble is renamed accordingly so relative recency of the
// survivors is untouched — exactly the behaviour of the stamp-plane
// implementation this replaced.
//
//pthammer:noalloc
func (s *SetAssoc) Invalidate(tag uint64) bool {
	idx := tag & s.setMask
	h := &s.hdr[idx]
	base := idx * s.ways
	n := h.live
	b := fpBroadcast(tag)
	cand0 := zeroBytes(h.fp[0]^b) & s.candMask[0]
	cand1 := zeroBytes(h.fp[1]^b) & s.candMask[1]
	if cand0|cand1 == 0 {
		return false
	}
	slot, ok := s.verify(base, cand0, cand1, tag)
	if !ok {
		return false
	}
	last := n - 1
	ord := removeNibble(h.order, posOf(h.order, slot))
	if slot != last {
		// Move the last live entry into the vacated slot and rename its
		// nibble. posOf is safe on the 15-nibble intermediate: last >= 1
		// here, and the spurious top nibble removeNibble leaves is 0.
		pl := posOf(ord, last)
		ord = ord&^(0xF<<(4*pl)) | slot<<(4*pl)
		s.tags[base+slot] = s.tags[base+last]
		h.setFP(slot, h.fp[last>>3&1]>>((last&7)*8)&0xFF)
		if s.vals != nil {
			s.vals[base+slot] = s.vals[base+last]
		}
	}
	// Park the now-unused slot index at its canonical position.
	h.order = insertNibble(ord, last, last)
	s.tags[base+last] = 0
	h.setFP(last, deadFP)
	if s.vals != nil {
		s.vals[base+last] = 0
	}
	h.live = last
	return true
}

// Contains reports presence without disturbing LRU state, for tests
// and introspection.
//
//pthammer:noalloc
func (s *SetAssoc) Contains(tag uint64) bool {
	base := (tag & s.setMask) * s.ways
	tags := s.tags[base : base+s.hdr[tag&s.setMask].live]
	for i := range tags {
		if tags[i] == tag {
			return true
		}
	}
	return false
}
