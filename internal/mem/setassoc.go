// Set-associative LRU array shared by the cache levels (tagged by line
// number) and the TLB levels (tagged by virtual page number). Keeping
// one implementation means replacement-policy fixes apply to both — an
// eviction-set algorithm tuned against the cache sees the same LRU the
// TLB uses.
package mem

import "fmt"

// SetAssoc is a set-associative array of uint64 tags with true-LRU
// replacement. The set index is the tag's low bits, so callers index
// by line number or page number directly.
//
// Within a set, slot position carries no meaning — replacement order is
// decided purely by the LRU stamps — so live entries are kept packed at
// the front of the set and every probe scans only the live prefix. A
// probe of a sparsely-occupied set (the common state under flush/evict
// workloads) touches one or two entries instead of the full way count.
type SetAssoc struct {
	ways    uint64
	setMask uint64
	slots   []saEntry
	// vals[i] is the payload stored alongside slots[i]. Tag-only users
	// (the data caches) never touch it; the TLB stores the physical
	// frame a page maps to, the paging-structure caches the next-level
	// table frame. Kept out of saEntry so tag probes stay 16 bytes per
	// scanned way.
	vals []uint64
	// live[set] is the number of valid entries packed at the front of
	// the set.
	live []uint16
	tick uint64
}

// saEntry is one way: the tag and its LRU stamp. Keeping the entry at
// 16 bytes matters because every cache/TLB probe scans a prefix of a
// set of these.
type saEntry struct {
	tag  uint64
	used uint64
}

// NewSetAssoc builds an array of sets × ways slots. Panics on a
// non-positive shape, a non-power-of-two set count, or more ways than
// the live-count representation can hold (callers validate their
// configs first; a bad shape here is a simulator bug).
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || ways <= 0 || ways > 1<<16-1 || uint64(sets)&(uint64(sets)-1) != 0 {
		panic(fmt.Sprintf("mem: bad set-assoc shape %d sets × %d ways", sets, ways))
	}
	return &SetAssoc{
		ways:    uint64(ways),
		setMask: uint64(sets) - 1,
		slots:   make([]saEntry, uint64(sets)*uint64(ways)),
		vals:    make([]uint64, uint64(sets)*uint64(ways)),
		live:    make([]uint16, sets),
	}
}

// set returns the set index and the live prefix of that set's ways.
//
//pthammer:noalloc
func (s *SetAssoc) set(tag uint64) (idx uint64, ways []saEntry) {
	idx = tag & s.setMask
	base := idx * s.ways
	return idx, s.slots[base : base+uint64(s.live[idx])]
}

// Lookup reports whether the tag is present, refreshing its LRU age on
// a hit. The tick advances only when an entry is actually stamped, so
// a stream of misses cannot perturb replacement order.
//
//pthammer:noalloc
func (s *SetAssoc) Lookup(tag uint64) bool {
	_, ways := s.set(tag)
	for i := range ways {
		if ways[i].tag == tag {
			s.tick++
			ways[i].used = s.tick
			return true
		}
	}
	return false
}

// LookupV is Lookup for value-carrying users: a hit refreshes the
// tag's LRU age and returns the stored payload.
//
//pthammer:noalloc
func (s *SetAssoc) LookupV(tag uint64) (val uint64, hit bool) {
	idx, ways := s.set(tag)
	for i := range ways {
		if ways[i].tag == tag {
			s.tick++
			ways[i].used = s.tick
			return s.vals[idx*s.ways+uint64(i)], true
		}
	}
	return 0, false
}

// Insert places the tag, evicting the LRU way if the set is full. It
// returns the evicted tag (valid only when evicted is true); inserting
// an already-present tag just refreshes it.
//
//pthammer:noalloc
func (s *SetAssoc) Insert(tag uint64) (evictedTag uint64, evicted bool) {
	return s.InsertV(tag, 0)
}

// InsertV is Insert with a payload attached to the tag.
//
//pthammer:noalloc
func (s *SetAssoc) InsertV(tag, val uint64) (evictedTag uint64, evicted bool) {
	_, _, evictedTag, evicted = s.LookupInsertV(tag, val)
	return evictedTag, evicted
}

// LookupInsert probes the set exactly once: on a hit it refreshes the
// tag's LRU age; on a miss it inserts the tag, evicting the LRU way if
// the set is full. It fuses the Lookup-then-Insert pair every
// cache/TLB miss path used to pay as two scans of the same set.
//
//pthammer:noalloc
func (s *SetAssoc) LookupInsert(tag uint64) (hit bool, evictedTag uint64, evicted bool) {
	hit, _, evictedTag, evicted = s.LookupInsertV(tag, 0)
	return hit, evictedTag, evicted
}

// LookupInsertV is the value-carrying fused probe. On a hit it
// refreshes the tag's LRU age and returns the payload already stored
// (the provided val is ignored: a cached translation is never silently
// remapped — invalidate first). On a miss it inserts the tag with val,
// evicting the LRU way if the set is full.
//
//pthammer:noalloc
func (s *SetAssoc) LookupInsertV(tag, val uint64) (hit bool, cur uint64, evictedTag uint64, evicted bool) {
	idx, ways := s.set(tag)
	base := idx * s.ways
	victim := 0
	for i := range ways {
		if ways[i].tag == tag {
			s.tick++
			ways[i].used = s.tick
			return true, s.vals[base+uint64(i)], 0, false
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	s.tick++
	if uint64(len(ways)) < s.ways {
		// Room left: grow the live prefix instead of evicting.
		slot := base + uint64(len(ways))
		s.slots[slot] = saEntry{tag: tag, used: s.tick}
		s.vals[slot] = val
		s.live[idx]++
		return false, 0, 0, false
	}
	ev := ways[victim]
	ways[victim] = saEntry{tag: tag, used: s.tick}
	s.vals[base+uint64(victim)] = val
	return false, 0, ev.tag, true
}

// Invalidate drops the tag if present, reporting whether it was. The
// last live entry moves into the vacated slot to keep the prefix
// packed (slot order is meaningless; LRU lives in the stamps).
//
//pthammer:noalloc
func (s *SetAssoc) Invalidate(tag uint64) bool {
	idx, ways := s.set(tag)
	base := idx * s.ways
	for i := range ways {
		if ways[i].tag == tag {
			last := len(ways) - 1
			ways[i] = ways[last]
			ways[last] = saEntry{}
			s.vals[base+uint64(i)] = s.vals[base+uint64(last)]
			s.vals[base+uint64(last)] = 0
			s.live[idx]--
			return true
		}
	}
	return false
}

// Contains reports presence without disturbing LRU state, for tests
// and introspection.
//
//pthammer:noalloc
func (s *SetAssoc) Contains(tag uint64) bool {
	_, ways := s.set(tag)
	for i := range ways {
		if ways[i].tag == tag {
			return true
		}
	}
	return false
}
