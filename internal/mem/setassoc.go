// Set-associative LRU array shared by the cache levels (tagged by line
// number) and the TLB levels (tagged by virtual page number). Keeping
// one implementation means replacement-policy fixes apply to both — an
// eviction-set algorithm tuned against the cache sees the same LRU the
// TLB uses.
package mem

import "fmt"

// SetAssoc is a set-associative array of uint64 tags with true-LRU
// replacement. The set index is the tag's low bits, so callers index
// by line number or page number directly.
type SetAssoc struct {
	ways    int
	setMask uint64
	slots   []saEntry
	tick    uint64
}

type saEntry struct {
	tag   uint64
	valid bool
	used  uint64
}

// NewSetAssoc builds an array of sets × ways slots. Panics on a
// non-positive shape or a non-power-of-two set count (callers validate
// their configs first; a bad shape here is a simulator bug).
func NewSetAssoc(sets, ways int) *SetAssoc {
	if sets <= 0 || ways <= 0 || uint64(sets)&(uint64(sets)-1) != 0 {
		panic(fmt.Sprintf("mem: bad set-assoc shape %d sets × %d ways", sets, ways))
	}
	return &SetAssoc{
		ways:    ways,
		setMask: uint64(sets) - 1,
		slots:   make([]saEntry, sets*ways),
	}
}

// set returns the ways of the set the tag indexes.
func (s *SetAssoc) set(tag uint64) []saEntry {
	idx := tag & s.setMask
	return s.slots[idx*uint64(s.ways) : (idx+1)*uint64(s.ways)]
}

// Lookup reports whether the tag is present, refreshing its LRU age on
// a hit.
func (s *SetAssoc) Lookup(tag uint64) bool {
	s.tick++
	ways := s.set(tag)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = s.tick
			return true
		}
	}
	return false
}

// Insert places the tag, evicting the LRU way if the set is full. It
// returns the evicted tag (valid only when evicted is true); inserting
// an already-present tag just refreshes it.
func (s *SetAssoc) Insert(tag uint64) (evictedTag uint64, evicted bool) {
	s.tick++
	ways := s.set(tag)
	victim := 0
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = s.tick
			return 0, false
		}
		if !ways[i].valid {
			victim = i
		} else if ways[victim].valid && ways[i].used < ways[victim].used {
			victim = i
		}
	}
	ev := ways[victim]
	ways[victim] = saEntry{tag: tag, valid: true, used: s.tick}
	if ev.valid {
		return ev.tag, true
	}
	return 0, false
}

// Invalidate drops the tag if present, reporting whether it was.
func (s *SetAssoc) Invalidate(tag uint64) bool {
	ways := s.set(tag)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i] = saEntry{}
			return true
		}
	}
	return false
}

// Contains reports presence without disturbing LRU state, for tests
// and introspection.
func (s *SetAssoc) Contains(tag uint64) bool {
	for _, e := range s.set(tag) {
		if e.valid && e.tag == tag {
			return true
		}
	}
	return false
}
