// Package core is the deterministic interleaver underneath the
// simulator's multi-core mode: it drives N per-core access streams,
// each in its own goroutine, while granting execution to exactly one
// stream at a time — always the runnable stream whose logical clock is
// lowest, ties broken by lowest core index. The sweep engine already
// established the repo's concurrency contract (worker count changes
// wall-clock time and nothing else, via per-shard seeds); this package
// extends the same contract to cores that share mutable state: the
// schedule is a pure function of the streams' logical clocks, so the
// merged interleaving — and therefore every piece of shared simulator
// state the streams touch (LLC contents, DRAM activation counters,
// flip-engine reports) — is bit-identical for any GOMAXPROCS value.
//
// The handshake is strictly serial: the scheduler grants one quantum,
// then blocks until the granted stream reports back (parked at its
// next yield, or finished) before picking again. Exactly one goroutine
// executes simulator code at any instant, and every edge is an
// unbuffered channel operation, so the interleaver is race-clean by
// construction — the property the CI multicore leg pins under -race.
//
// Because grants always go to the lowest clock, the sequence of clock
// values observed at grant time is nondecreasing: shared devices see
// simulated time move forward monotonically even though each core
// carries its own clock. Devices that latch a start-of-window
// timestamp (the DRAM refresh window) still guard against a reading
// from a core that has not caught up yet; see dram.rotateWindow.
package core

import "pthammer/internal/timing"

// Stream is one core's access stream under the interleaver.
type Stream struct {
	// Now reports the core's logical clock — for a machine core, the
	// core's timing.Clock.Now. The scheduler calls it only while the
	// stream is parked, so implementations need no synchronisation.
	Now func() timing.Cycles

	// Run is the stream body. It must call yield() between quanta —
	// every point at which the scheduler may hand execution to another
	// core — and may simply return when the stream is done. Touching
	// shared simulator state without an intervening yield is safe (the
	// quantum is atomic) but delays other cores whose clocks are
	// behind, so keep quanta small: one hammer iteration, one batch of
	// loads, one scan.
	Run func(yield func())
}

// streamAbort is the sentinel a parked stream panics with to unwind
// itself during teardown after another stream's body panicked. The
// unwind runs the stream's own deferred cleanup on its own goroutine —
// exactly what a cooperating body expects — and is recovered at the
// goroutine top, never escaping to the user.
type streamAbort struct{}

// Run executes the streams to completion under the deterministic
// schedule and returns the grant log: the core index granted at each
// scheduling decision, in order. The log is itself part of the
// determinism contract (tests diff it across GOMAXPROCS values);
// callers that only want the side effects can discard it.
//
// Run panics on a stream with a nil Now or Run — a wiring bug, not a
// runtime condition.
//
// A panic inside a stream body does not crash the process from the
// stream's goroutine: Run aborts the schedule, resumes every other
// live stream so it unwinds through its deferred cleanup (yield panics
// a private sentinel after the grant), waits for all goroutines to
// finish, and then re-panics the original value on the caller's
// goroutine. The first panicking stream wins; panics raised by cleanup
// during the unwind are swallowed in favour of the original.
func Run(streams []Stream) []int {
	n := len(streams)
	if n == 0 {
		return nil
	}
	for _, s := range streams {
		if s.Now == nil || s.Run == nil {
			panic("core: stream needs both Now and Run")
		}
	}

	type report struct {
		core     int
		done     bool
		panicked bool
		val      any
	}
	grants := make([]chan struct{}, n)
	status := make(chan report)
	// abort is written by the scheduler only while every live stream is
	// parked, and read by a stream only after receiving a grant; the
	// grant channel's send/receive edge orders the two, so a plain bool
	// is race-free.
	abort := false
	for i := range streams {
		grants[i] = make(chan struct{})
		go func(i int, s Stream) {
			defer func() {
				switch r := recover(); {
				case r == nil:
					// s.Run returned normally; the done report was
					// already sent below.
				case r == any(streamAbort{}):
					status <- report{core: i, done: true}
				default:
					status <- report{core: i, done: true, panicked: true, val: r}
				}
			}()
			yield := func() {
				status <- report{core: i}
				<-grants[i]
				if abort {
					panic(streamAbort{})
				}
			}
			// Wait for the first grant so the stream body never runs
			// concurrently with another stream's quantum.
			<-grants[i]
			if abort {
				panic(streamAbort{})
			}
			s.Run(yield)
			status <- report{core: i, done: true}
		}(i, streams[i])
	}

	// Every stream is parked at its initial grant receive; the
	// scheduler loop below keeps the invariant that all live streams
	// are parked whenever it picks, because it blocks on the granted
	// stream's report before picking again.
	done := make([]bool, n)
	remaining := n
	var log []int
	var panicVal any
	for remaining > 0 {
		best := -1
		var bestT timing.Cycles
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			if abort {
				// Teardown: order no longer matters, clocks may be
				// mid-update in the panicked body — grant by index.
				best = i
				break
			}
			t := streams[i].Now()
			// Strict < implements the fixed tiebreak: equal clocks go
			// to the lowest core index.
			if best == -1 || t < bestT {
				best, bestT = i, t
			}
		}
		if !abort {
			log = append(log, best)
		}
		grants[best] <- struct{}{}
		r := <-status
		if r.done {
			done[r.core] = true
			remaining--
		}
		if r.panicked && panicVal == nil {
			panicVal = r.val
			abort = true
		}
	}
	if panicVal != nil {
		panic(panicVal)
	}
	return log
}
