package core_test

import (
	"reflect"
	"runtime"
	"testing"

	"pthammer/internal/core"
	"pthammer/internal/timing"
)

// scripted is a fake core: each quantum advances its clock by the next
// scripted increment, and the stream finishes when the script runs out.
type scripted struct {
	clock timing.Cycles
	steps []timing.Cycles
}

func (s *scripted) stream() core.Stream {
	return core.Stream{
		Now: func() timing.Cycles { return s.clock },
		Run: func(yield func()) {
			for i, d := range s.steps {
				s.clock += d
				if i < len(s.steps)-1 {
					yield()
				}
			}
		},
	}
}

func TestLowestTimestampNext(t *testing.T) {
	// Core 0 takes big steps, core 1 small ones: after the opening
	// grants the scheduler must keep handing core 1 the CPU until its
	// clock passes core 0's.
	a := &scripted{steps: []timing.Cycles{100, 100}}
	b := &scripted{steps: []timing.Cycles{10, 10, 10, 10, 10}}
	log := core.Run([]core.Stream{a.stream(), b.stream()})
	// Both start at 0 → tiebreak gives core 0 the first grant (clock
	// 100). Core 1 then runs at 0,10,20,...: five grants before its
	// script ends at 50, still below 100, so core 0's final quantum
	// comes last.
	want := []int{0, 1, 1, 1, 1, 1, 0}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("grant log = %v, want %v", log, want)
	}
	if a.clock != 200 || b.clock != 50 {
		t.Fatalf("final clocks = %d, %d; want 200, 50", a.clock, b.clock)
	}
}

func TestTiebreakPicksLowestIndex(t *testing.T) {
	// Identical scripts: clocks are equal at every scheduling point, so
	// the fixed tiebreak must strictly alternate starting at core 0.
	mk := func() *scripted { return &scripted{steps: []timing.Cycles{5, 5, 5}} }
	log := core.Run([]core.Stream{mk().stream(), mk().stream(), mk().stream()})
	want := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("grant log = %v, want %v", log, want)
	}
}

func TestSingleStreamAndImmediateReturn(t *testing.T) {
	ran := false
	log := core.Run([]core.Stream{{
		Now: func() timing.Cycles { return 0 },
		Run: func(yield func()) { ran = true },
	}})
	if !ran {
		t.Fatal("stream body never ran")
	}
	if !reflect.DeepEqual(log, []int{0}) {
		t.Fatalf("grant log = %v, want [0]", log)
	}
	if got := core.Run(nil); got != nil {
		t.Fatalf("Run(nil) = %v, want nil", got)
	}
}

func TestNilStreamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run accepted a stream with a nil Run")
		}
	}()
	core.Run([]core.Stream{{Now: func() timing.Cycles { return 0 }}})
}

// TestDeterministicAcrossGOMAXPROCS is the headline contract: the grant
// log (and the streams' final state) must be bit-identical no matter
// how much real parallelism the runtime has to play with.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() ([]int, []timing.Cycles) {
		// Irregular, mutually prime step patterns so the schedule is
		// nontrivial.
		cores := []*scripted{
			{steps: []timing.Cycles{7, 13, 7, 13, 7, 13, 7, 13}},
			{steps: []timing.Cycles{11, 11, 11, 11, 11, 11}},
			{steps: []timing.Cycles{3, 3, 3, 29, 3, 3, 3, 29, 3}},
			{steps: []timing.Cycles{17, 2, 17, 2, 17, 2}},
		}
		streams := make([]core.Stream, len(cores))
		for i, c := range cores {
			streams[i] = c.stream()
		}
		log := core.Run(streams)
		finals := make([]timing.Cycles, len(cores))
		for i, c := range cores {
			finals[i] = c.clock
		}
		return log, finals
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	refLog, refFinals := run()
	for _, p := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(p)
		log, finals := run()
		if !reflect.DeepEqual(log, refLog) {
			t.Fatalf("GOMAXPROCS=%d: grant log diverged:\n got %v\nwant %v", p, log, refLog)
		}
		if !reflect.DeepEqual(finals, refFinals) {
			t.Fatalf("GOMAXPROCS=%d: final clocks diverged: got %v want %v", p, finals, refFinals)
		}
	}
}

// TestZeroQuantumStreams: streams whose clocks never move still make
// progress and terminate. With permanently equal clocks the strict-<
// tiebreak keeps choosing the lowest live index, so core 0 runs to
// completion before core 1 gets its first grant.
func TestZeroQuantumStreams(t *testing.T) {
	mk := func() core.Stream {
		return core.Stream{
			Now: func() timing.Cycles { return 0 },
			Run: func(yield func()) {
				yield()
				yield()
			},
		}
	}
	log := core.Run([]core.Stream{mk(), mk()})
	want := []int{0, 0, 0, 1, 1, 1}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("grant log = %v, want %v", log, want)
	}
}

// TestSingleCoreGrantLog: a lone stream with several quanta gets every
// grant; the log length is quanta+1 (one grant per yield plus the
// initial one).
func TestSingleCoreGrantLog(t *testing.T) {
	s := &scripted{steps: []timing.Cycles{5, 5, 5, 5}}
	log := core.Run([]core.Stream{s.stream()})
	if !reflect.DeepEqual(log, []int{0, 0, 0, 0}) {
		t.Fatalf("grant log = %v", log)
	}
	if s.clock != 20 {
		t.Fatalf("final clock = %d, want 20", s.clock)
	}
}

// TestPanicPropagatesAfterTeardown is the interleaver's crash
// contract: a panic in one stream body must re-surface on the caller's
// goroutine with the original value — not crash the process from a
// stream goroutine — and every other live stream must first unwind
// through its deferred cleanup.
func TestPanicPropagatesAfterTeardown(t *testing.T) {
	n := 3
	cleaned := make([]bool, n)
	var streams []core.Stream
	for i := 0; i < n; i++ {
		i := i
		clock := timing.Cycles(0)
		streams = append(streams, core.Stream{
			Now: func() timing.Cycles { return clock },
			Run: func(yield func()) {
				defer func() { cleaned[i] = true }()
				for q := 0; ; q++ {
					clock += 10
					if i == 1 && q == 2 {
						panic("boom in core 1")
					}
					yield()
				}
			},
		})
	}
	defer func() {
		r := recover()
		if r != "boom in core 1" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
		for i, c := range cleaned {
			if !c {
				t.Errorf("core %d deferred cleanup never ran", i)
			}
		}
	}()
	core.Run(streams)
	t.Fatal("Run returned instead of panicking")
}

// TestPanicBeforeFirstYield: a body that panics in its very first
// quantum — including from a stream that never yields at all — still
// tears down cleanly.
func TestPanicBeforeFirstYield(t *testing.T) {
	other := &scripted{steps: []timing.Cycles{1, 1, 1, 1, 1, 1, 1, 1}}
	streams := []core.Stream{
		other.stream(),
		{
			Now: func() timing.Cycles { return 0 },
			Run: func(yield func()) { panic("instant") },
		},
	}
	defer func() {
		if r := recover(); r != "instant" {
			t.Fatalf("recovered %v, want \"instant\"", r)
		}
	}()
	core.Run(streams)
	t.Fatal("Run returned instead of panicking")
}

// TestGrantClocksNondecreasing pins the property shared devices rely
// on: the clock of the granted core, read at grant time, never moves
// backwards across the schedule.
func TestGrantClocksNondecreasing(t *testing.T) {
	cores := []*scripted{
		{steps: []timing.Cycles{40, 1, 1, 1, 40}},
		{steps: []timing.Cycles{9, 9, 9, 9, 9, 9, 9, 9, 9}},
	}
	var granted []timing.Cycles
	streams := make([]core.Stream, len(cores))
	for i, c := range cores {
		c := c
		inner := c.stream()
		streams[i] = core.Stream{
			Now: inner.Now,
			Run: func(yield func()) {
				inner.Run(func() {
					yield()
					// Back from a grant: record the clock we resumed at.
					granted = append(granted, c.clock)
				})
			},
		}
	}
	core.Run(streams)
	for i := 1; i < len(granted); i++ {
		if granted[i] < granted[i-1] {
			t.Fatalf("grant-time clocks not nondecreasing: %v", granted)
		}
	}
}
