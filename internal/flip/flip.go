// Package flip is the disturbance-error engine: the component that
// turns accumulated hammer pressure into actual bit flips in physical
// memory. It closes the loop the rest of the simulator sets up — the
// implicit-hammer path drives page-walk activations past the
// per-window threshold (internal/bench), the DRAM device reports which
// rows are hammer-eligible at the end of each refresh window
// (dram.Stats.Victims), and this package decides which cells in those
// rows flip and mutates them through phys.FlipBit, the simulator's
// only non-CPU-store mutation.
//
// The model is probabilistic but fully deterministic per seed: given
// the same seed and the same sequence of end-of-window victim reports,
// it produces bit-identical flips. Vulnerability is parameterised per
// DRAM module class (profiles in the A/B/C style of the "Flipping Bits
// in Memory Without Accessing Them" module characterisation): how many
// candidate cells are disturbed per victim row per window, how fast
// the flip probability saturates as adjacent-row pressure exceeds the
// hammer threshold, and which direction (1→0 discharge of a true cell
// versus 0→1) the module's cells favour. Candidate cells are drawn
// uniformly over the victim row's byte range — the cell-address jitter
// that makes flip locations unpredictable, exactly why PThammer sprays
// page tables instead of aiming at one PTE.
package flip

import (
	"fmt"
	"math"
	"math/rand"

	"pthammer/internal/dram"
	"pthammer/internal/phys"
)

// Profile fixes one DRAM module class's disturbance behaviour.
type Profile struct {
	// Name identifies the module class in reports ("A", "B", "C").
	Name string

	// AttemptsPerWindow is how many candidate cells the model samples
	// in each victim row per refresh window — the density of cells
	// physically disturbed enough to be flip candidates.
	AttemptsPerWindow int

	// ExcessScale shapes the per-candidate flip probability as a
	// function of how far the victim's adjacent-row pressure exceeded
	// the hammer threshold: p = 1 - exp(-(excess+1)/ExcessScale). A
	// small scale saturates quickly (a vulnerable module flips as soon
	// as the threshold is crossed); a large one needs heavy
	// over-hammering before flips become likely.
	ExcessScale float64

	// OneToZeroBias is the probability a disturbance attempt targets a
	// 1→0 discharge rather than a 0→1 charge. Real modules flip
	// predominantly in one direction (true cells leak towards 0); a
	// candidate whose cell is not in the targeted source state does not
	// flip and is recorded as a miss.
	OneToZeroBias float64
}

// Validate reports an error for a degenerate profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("flip: profile needs a name")
	case p.AttemptsPerWindow <= 0:
		return fmt.Errorf("flip: profile %s: attempts per window must be positive (got %d)", p.Name, p.AttemptsPerWindow)
	case !(p.ExcessScale > 0):
		return fmt.Errorf("flip: profile %s: excess scale must be positive (got %v)", p.Name, p.ExcessScale)
	case !(p.OneToZeroBias >= 0 && p.OneToZeroBias <= 1):
		return fmt.Errorf("flip: profile %s: 1→0 bias %v outside [0,1]", p.Name, p.OneToZeroBias)
	}
	return nil
}

// ClassA is the most vulnerable module class: dense disturbance, flip
// probability saturating right past the threshold, strong 1→0 bias.
func ClassA() Profile {
	return Profile{Name: "A", AttemptsPerWindow: 8, ExcessScale: 64, OneToZeroBias: 0.75}
}

// ClassB is a mid-grade module: fewer disturbed cells per window and a
// slower probability ramp, with no direction preference.
func ClassB() Profile {
	return Profile{Name: "B", AttemptsPerWindow: 4, ExcessScale: 256, OneToZeroBias: 0.5}
}

// ClassC is the most robust class that still flips at all: sparse
// disturbance, a long ramp, and a 0→1-leaning cell architecture.
func ClassC() Profile {
	return Profile{Name: "C", AttemptsPerWindow: 2, ExcessScale: 1024, OneToZeroBias: 0.25}
}

// Profiles returns the standard module classes, most vulnerable first.
func Profiles() []Profile {
	return []Profile{ClassA(), ClassB(), ClassC()}
}

// Injector is the fault-injection seam the flip engine offers
// (implemented by fault.Model; declared here so flip does not import
// fault). The machine facade wires a configured fault model into the
// flip model at construction; with no injector every hook is skipped
// and the engine behaves exactly as before.
type Injector interface {
	// OnWindow ticks once per end-of-window victim report, after the
	// window counter advances — the injector's only clock.
	OnWindow(window uint64)
	// SuppressAttempt reports whether one disturbance attempt against
	// this victim is intercepted before it can flip anything
	// (TRR-sampler style, or an invalidated aggressor pair). A
	// suppressed attempt is not counted: it never physically happened.
	SuppressAttempt(v dram.Victim) bool
	// RedirectFlip may relocate a candidate cell (mislanded flip); ok
	// is false when the attempt stays put.
	RedirectFlip(addr phys.Addr, bit uint) (phys.Addr, uint, bool)
	// ObserveFlip sees every recorded disturbance error, located at the
	// row the flip actually landed in — the signal pair invalidation
	// arms on (the simulated OS detecting a corrupted table).
	ObserveFlip(v dram.Victim)
}

// Flip is one recorded disturbance error.
type Flip struct {
	// Addr and Bit locate the flipped cell in physical memory.
	Addr phys.Addr
	Bit  uint
	// OneToZero is the direction: true when a charged cell discharged.
	OneToZero bool
	// Channel/Rank/Bank/Row locate the victim row the cell lives in.
	Channel, Rank, Bank int
	Row                 uint64
	// Pressure is the adjacent-row activation pressure of the victim's
	// window — how hard the row had been hammered when refresh hit.
	Pressure uint64
	// Window is the 1-based index of the victim report that produced
	// the flip, counting every report the model processed.
	Window uint64
	// Core is the core the window report was attributed to (the core
	// whose access rotated the refresh window — see dram.Stats.Core).
	// Always 0 on a single-core machine.
	Core int
}

// Model applies a Profile to one machine's memory. Create it with
// NewModel, hand it to machine.Config.FlipModel (which binds it to the
// machine's physical memory and DRAM geometry and subscribes it to
// end-of-refresh-window victim reports), and read the damage back with
// Flips. A model is bound to exactly one machine; Seed/Profile stay
// fixed so a (profile, seed, workload) triple always produces the same
// flips.
type Model struct {
	profile Profile
	seed    int64
	rng     *rand.Rand

	mem  *phys.Memory
	geom dram.Config
	inj  Injector

	flips    []Flip
	windows  uint64
	attempts uint64
	misses   uint64
}

// NewModel builds an unbound model.
func NewModel(p Profile, seed int64) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		profile: p,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// MustNewModel is NewModel but panics on error.
func MustNewModel(p Profile, seed int64) *Model {
	m, err := NewModel(p, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Profile returns the module class the model simulates.
func (m *Model) Profile() Profile { return m.profile }

// Seed returns the seed the model was built with.
func (m *Model) Seed() int64 { return m.seed }

// Bind attaches the model to one machine's physical memory and DRAM
// geometry. The machine facade calls it during construction; binding
// twice is an error because the model's random stream must belong to
// exactly one simulated module.
func (m *Model) Bind(mem *phys.Memory, geom dram.Config) error {
	if mem == nil {
		return fmt.Errorf("flip: bind needs a physical memory")
	}
	if m.mem != nil {
		return fmt.Errorf("flip: model already bound to a machine")
	}
	if err := geom.Validate(); err != nil {
		return err
	}
	m.mem = mem
	m.geom = geom
	return nil
}

// SetInjector subscribes a fault injector to the model's hooks. Like
// Bind it is one-shot: the injector's random stream pairs with this
// model's for the lifetime of one simulated run.
func (m *Model) SetInjector(inj Injector) error {
	if inj == nil {
		return fmt.Errorf("flip: set-injector needs an injector")
	}
	if m.inj != nil {
		return fmt.Errorf("flip: model already has an injector")
	}
	m.inj = inj
	return nil
}

// OnWindow consumes one end-of-refresh-window report — the dram window
// hook the machine subscribes for a configured model. For every victim
// row it samples AttemptsPerWindow candidate cells (uniform byte + bit
// jitter over the row), flips each with the pressure-derived
// probability if the cell currently holds the direction's source
// value, and records the result. Panics if the model is unbound: a
// report arriving before Bind is a wiring bug.
func (m *Model) OnWindow(s dram.Stats) {
	if m.mem == nil {
		panic("flip: OnWindow on an unbound model")
	}
	m.windows++
	if m.inj != nil {
		m.inj.OnWindow(m.windows)
	}
	for _, v := range s.Victims {
		// Victims always meet the threshold; +1 keeps a row hammered to
		// exactly the threshold at a small non-zero flip probability
		// (the threshold is where first flips appear, not where they
		// are still impossible). A non-positive ramp scale means the
		// probability has no ramp at all: every attempt past the
		// threshold flips (guards the division — Validate rejects such
		// profiles, but the model must stay total on any it is handed).
		p := 1.0
		if m.profile.ExcessScale > 0 {
			excess := v.Pressure - m.geom.HammerThreshold + 1
			p = 1 - math.Exp(-float64(excess)/m.profile.ExcessScale)
		}
		start, rowBytes := m.geom.RowRange(v.Channel, v.Rank, v.Bank, v.Row)
		for i := 0; i < m.profile.AttemptsPerWindow; i++ {
			// A suppressed attempt never physically happened (the
			// mitigation refreshed the victim before disturbance), so it
			// is not an attempt and not a miss.
			if m.inj != nil && m.inj.SuppressAttempt(v) {
				continue
			}
			m.attempts++
			if m.rng.Float64() >= p {
				m.misses++
				continue
			}
			addr := start + phys.Addr(m.rng.Uint64()%rowBytes)
			bit := uint(m.rng.Intn(8))
			oneToZero := m.rng.Float64() < m.profile.OneToZeroBias
			loc := v
			if m.inj != nil {
				if raddr, rbit, ok := m.inj.RedirectFlip(addr, bit); ok {
					// Mislanded flip: the disturbance damaged a cell
					// outside the victim row; record where it really hit.
					addr, bit = raddr, rbit
					l := m.geom.Map(addr)
					loc.Channel, loc.Rank, loc.Bank, loc.Row = l.Channel, l.Rank, l.Bank, l.Row
				}
			}
			var source byte
			if oneToZero {
				source = 1
			}
			if m.mem.Bit(addr, bit) != source {
				// Cell not charged in the vulnerable direction.
				m.misses++
				continue
			}
			if _, ok := m.mem.FlipBit(addr, bit); !ok {
				// Never-written frame: phys defines the flip as a no-op
				// miss, so sparse victim rows don't materialize.
				m.misses++
				continue
			}
			m.flips = append(m.flips, Flip{
				Addr: addr, Bit: bit, OneToZero: oneToZero,
				Channel: loc.Channel, Rank: loc.Rank, Bank: loc.Bank, Row: loc.Row,
				Pressure: v.Pressure, Window: m.windows, Core: s.Core,
			})
			if m.inj != nil {
				m.inj.ObserveFlip(loc)
			}
		}
	}
}

// Reset recycles the model for the next cohort on the same machine
// (the Reset/Recycle contract): the flip record, the window and
// attempt/miss accounting and the random stream all rewind to the
// just-built state, while the memory binding and any injector stay
// attached. A recycled model therefore produces bit-identical flips to
// a fresh NewModel(profile, seed) fed the same victim reports. Reset
// truncates the flip record in place, so slices previously returned by
// Flips are invalidated — copy them out before recycling.
func (m *Model) Reset() {
	m.rng.Seed(m.seed)
	m.flips = m.flips[:0]
	m.windows, m.attempts, m.misses = 0, 0, 0
}

// ResetTo is Reset with a new identity: the recycled model behaves as
// if freshly built with NewModel(p, seed). The cohort scheduler uses
// this to re-stamp one bound model per tenant (per-tenant seeds,
// per-population module class) without re-binding anything.
func (m *Model) ResetTo(p Profile, seed int64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m.profile, m.seed = p, seed
	m.Reset()
	return nil
}

// Flips returns every disturbance error the model has produced, in
// occurrence order. The slice is the model's own record: callers must
// not mutate it. Len(Flips()) monotonically grows between resets; the
// escalation demo polls it to notice new damage.
func (m *Model) Flips() []Flip { return m.flips }

// Windows returns how many end-of-window victim reports the model has
// processed.
func (m *Model) Windows() uint64 { return m.windows }

// Attempts returns how many candidate cells have been sampled, and
// Misses how many of them did not flip (probability roll failed, cell
// not in the source state, or the cell's frame was a hole).
func (m *Model) Attempts() uint64 { return m.attempts }

// Misses returns the non-flipping attempts; Attempts - Misses ==
// len(Flips).
func (m *Model) Misses() uint64 { return m.misses }
