package flip

import (
	"reflect"
	"testing"

	"pthammer/internal/phys"
)

// driveReports feeds a fixed victim-report sequence and returns the
// model's full observable record.
func driveReports(mem *phys.Memory, m *Model) (flips []Flip, windows, attempts, misses uint64) {
	geom := testGeom()
	fillRow(mem, geom, 5, 0xAA)
	for i := 0; i < 6; i++ {
		m.OnWindow(victimReport(5, 200+uint64(i)*50))
	}
	return append([]Flip(nil), m.Flips()...), m.Windows(), m.Attempts(), m.Misses()
}

// TestResetReplaysBitIdentically pins the recycle half of the flip
// model's determinism contract: after Reset, the model must produce
// bit-identical flips, windows and attempt/miss accounting to a fresh
// NewModel(profile, seed) fed the same reports — with the memory
// binding (and its scrubbed state) intact.
func TestResetReplaysBitIdentically(t *testing.T) {
	for _, p := range []Profile{ClassA(), ClassB(), ClassC()} {
		fresh, freshMem := boundModel(t, p, 11)
		wantFlips, wantW, wantA, wantM := driveReports(freshMem, fresh)
		if len(wantFlips) == 0 {
			t.Fatalf("%s: no flips from the reference run; the property would be vacuous", p.Name)
		}

		recycled, recycledMem := boundModel(t, p, 11)
		driveReports(recycledMem, recycled) // dirty cohort
		// Recycle both the model and its bound memory, as a machine
		// recycle does: flipped cells must not leak into the next run.
		recycledMem.Reset()
		recycled.Reset()
		gotFlips, gotW, gotA, gotM := driveReports(recycledMem, recycled)

		if !reflect.DeepEqual(wantFlips, gotFlips) || wantW != gotW || wantA != gotA || wantM != gotM {
			t.Errorf("%s: recycled model diverged from fresh:\nfresh:    %d flips, w=%d a=%d m=%d\nrecycled: %d flips, w=%d a=%d m=%d",
				p.Name, len(wantFlips), wantW, wantA, wantM, len(gotFlips), gotW, gotA, gotM)
		}
	}
}

// TestResetToRestamps pins the cohort scheduler's per-tenant re-stamp:
// ResetTo(profile, seed) on a bound model must behave exactly like a
// fresh model built with that profile and seed.
func TestResetToRestamps(t *testing.T) {
	want, wantMem := boundModel(t, ClassC(), 99)
	wantFlips, wantW, wantA, wantM := driveReports(wantMem, want)

	m, mem := boundModel(t, ClassA(), 1)
	driveReports(mem, m) // dirty under the old identity
	mem.Reset()
	if err := m.ResetTo(ClassC(), 99); err != nil {
		t.Fatal(err)
	}
	if m.Profile().Name != "C" || m.Seed() != 99 {
		t.Fatalf("ResetTo did not re-stamp identity: %s seed %d", m.Profile().Name, m.Seed())
	}
	gotFlips, gotW, gotA, gotM := driveReports(mem, m)
	if !reflect.DeepEqual(wantFlips, gotFlips) || wantW != gotW || wantA != gotA || wantM != gotM {
		t.Errorf("ResetTo diverged from fresh NewModel(C, 99): fresh %d flips w=%d a=%d m=%d, recycled %d flips w=%d a=%d m=%d",
			len(wantFlips), wantW, wantA, wantM, len(gotFlips), gotW, gotA, gotM)
	}

	// A degenerate profile must be rejected and leave the model usable.
	if err := m.ResetTo(Profile{}, 1); err == nil {
		t.Fatal("ResetTo accepted a degenerate profile")
	}
	if m.Profile().Name != "C" {
		t.Fatalf("failed ResetTo clobbered the model's profile: %q", m.Profile().Name)
	}
}
