package flip

import (
	"math/rand"
	"reflect"
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/phys"
)

// testGeom is a tiny 4-bank geometry with 16 rows of 8 KiB and a low
// hammer threshold.
func testGeom() dram.Config {
	return dram.Config{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    2,
		Rows:            16,
		RowBytes:        8192,
		HammerThreshold: 10,
	}
}

// hotProfile flips eagerly so short tests see activity: every attempt
// rolls with near-certain probability once the threshold is exceeded.
func hotProfile() Profile {
	return Profile{Name: "hot", AttemptsPerWindow: 16, ExcessScale: 1, OneToZeroBias: 0.5}
}

// boundModel builds a model over a fresh memory covering the geometry.
func boundModel(t *testing.T, p Profile, seed int64) (*Model, *phys.Memory) {
	t.Helper()
	geom := testGeom()
	mem := phys.MustNew(geom.Capacity())
	m, err := NewModel(p, seed)
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	if err := m.Bind(mem, geom); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return m, mem
}

// victimReport builds a one-victim Stats at the given pressure.
func victimReport(row uint64, pressure uint64) dram.Stats {
	return dram.Stats{Victims: []dram.Victim{{
		Channel: 1, Rank: 0, Bank: 1, Row: row, Pressure: pressure,
	}}}
}

// fillRow writes the pattern byte over the victim row so every cell is
// materialized with a known value.
func fillRow(mem *phys.Memory, geom dram.Config, row uint64, pattern byte) {
	start, bytes := geom.RowRange(1, 0, 1, row)
	for off := uint64(0); off < bytes; off++ {
		mem.Write8(start+phys.Addr(off), pattern)
	}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("standard profile %s rejected: %v", p.Name, err)
		}
	}
	bad := []Profile{
		{Name: "", AttemptsPerWindow: 1, ExcessScale: 1, OneToZeroBias: 0.5},
		{Name: "x", AttemptsPerWindow: 0, ExcessScale: 1, OneToZeroBias: 0.5},
		{Name: "x", AttemptsPerWindow: 1, ExcessScale: 0, OneToZeroBias: 0.5},
		{Name: "x", AttemptsPerWindow: 1, ExcessScale: -2, OneToZeroBias: 0.5},
		{Name: "x", AttemptsPerWindow: 1, ExcessScale: 1, OneToZeroBias: 1.5},
		{Name: "x", AttemptsPerWindow: 1, ExcessScale: 1, OneToZeroBias: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted: %+v", i, p)
		}
		if _, err := NewModel(p, 1); err == nil {
			t.Errorf("NewModel accepted bad profile %d", i)
		}
	}
}

func TestBindRejectsReuseAndNil(t *testing.T) {
	geom := testGeom()
	m := MustNewModel(ClassA(), 1)
	if err := m.Bind(nil, geom); err == nil {
		t.Fatal("Bind(nil) accepted")
	}
	if err := m.Bind(phys.MustNew(geom.Capacity()), geom); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := m.Bind(phys.MustNew(geom.Capacity()), geom); err == nil {
		t.Fatal("second Bind accepted")
	}
	var unbound Model
	defer func() {
		if recover() == nil {
			t.Fatal("OnWindow on unbound model did not panic")
		}
	}()
	unbound.OnWindow(dram.Stats{})
}

// TestDeterministicPerSeed: two models with the same (profile, seed)
// fed the same reports over identically prepared memories produce
// bit-identical flip records; a different seed diverges.
func TestDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []Flip {
		m, mem := boundModel(t, hotProfile(), seed)
		fillRow(mem, testGeom(), 5, 0xA5)
		for w := 0; w < 8; w++ {
			m.OnWindow(victimReport(5, 200))
		}
		return m.Flips()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("hot profile produced no flips")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical flip records")
	}
}

// TestFlipsLandInsideVictimRow: every flip's address decodes back to
// the reported victim location, and the memory really changed there.
func TestFlipsLandInsideVictimRow(t *testing.T) {
	geom := testGeom()
	m, mem := boundModel(t, hotProfile(), 7)
	fillRow(mem, geom, 3, 0xFF)
	for w := 0; w < 4; w++ {
		m.OnWindow(victimReport(3, 500))
	}
	flips := m.Flips()
	if len(flips) == 0 {
		t.Fatal("no flips produced")
	}
	for _, f := range flips {
		loc := geom.Map(f.Addr)
		if loc.Channel != 1 || loc.Rank != 0 || loc.Bank != 1 || loc.Row != 3 {
			t.Fatalf("flip at %#x decodes to %+v, outside victim row", uint64(f.Addr), loc)
		}
		if f.Row != 3 || f.Channel != 1 || f.Bank != 1 {
			t.Fatalf("flip record carries wrong location: %+v", f)
		}
	}
	// All cells started at 1, so every flip was a 1→0 discharge and the
	// corresponding bit now reads 0.
	for _, f := range flips {
		if !f.OneToZero {
			t.Fatalf("0→1 flip recorded in an all-ones row: %+v", f)
		}
	}
	// Accounting: attempts split exactly into flips and misses.
	if m.Attempts() != m.Misses()+uint64(len(flips)) {
		t.Fatalf("attempts %d != misses %d + flips %d", m.Attempts(), m.Misses(), len(flips))
	}
	if m.Windows() != 4 {
		t.Fatalf("windows = %d, want 4", m.Windows())
	}
}

// TestDirectionBias: an all-ones row only ever discharges, an all-zero
// (but materialized) row only ever charges, and the recorded direction
// matches the observable before/after state.
func TestDirectionBias(t *testing.T) {
	geom := testGeom()
	m, mem := boundModel(t, hotProfile(), 11)
	fillRow(mem, geom, 5, 0xFF) // all ones
	fillRow(mem, geom, 9, 0x00) // all zeros, materialized
	for w := 0; w < 6; w++ {
		m.OnWindow(dram.Stats{Victims: []dram.Victim{
			{Channel: 1, Rank: 0, Bank: 1, Row: 5, Pressure: 300},
			{Channel: 1, Rank: 0, Bank: 1, Row: 9, Pressure: 300},
		}})
	}
	var ones, zeros int
	for _, f := range m.Flips() {
		switch f.Row {
		case 5:
			ones++
			if !f.OneToZero {
				t.Fatalf("0→1 flip in all-ones row: %+v", f)
			}
			if got := mem.Bit(f.Addr, f.Bit); got != 0 {
				t.Fatalf("discharged cell reads %d", got)
			}
		case 9:
			zeros++
			if f.OneToZero {
				t.Fatalf("1→0 flip in all-zeros row: %+v", f)
			}
			if got := mem.Bit(f.Addr, f.Bit); got != 1 {
				t.Fatalf("charged cell reads %d", got)
			}
		}
	}
	if ones == 0 || zeros == 0 {
		t.Fatalf("flips: %d discharges, %d charges — want both directions", ones, zeros)
	}
}

// TestHoleRowsNeverMaterialize: hammering a victim row whose frames
// were never written produces no flips and no materialization — the
// phys hole semantics flowing through the model.
func TestHoleRowsNeverMaterialize(t *testing.T) {
	m, mem := boundModel(t, hotProfile(), 3)
	for w := 0; w < 8; w++ {
		m.OnWindow(victimReport(6, 400))
	}
	if got := len(m.Flips()); got != 0 {
		t.Fatalf("%d flips in a hole row, want 0", got)
	}
	if got := mem.Materialized(); got != 0 {
		t.Fatalf("hole hammering materialized %d frames", got)
	}
	if m.Attempts() == 0 || m.Misses() != m.Attempts() {
		t.Fatalf("attempts %d / misses %d: every hole attempt should miss", m.Attempts(), m.Misses())
	}
}

// TestPressureGatesProbability: a barely-threshold window on a
// slow-ramp profile flips far less often than a heavily over-hammered
// one — the per-class pressure curve doing its job.
func TestPressureGatesProbability(t *testing.T) {
	count := func(pressure uint64) int {
		p := Profile{Name: "slow", AttemptsPerWindow: 8, ExcessScale: 500, OneToZeroBias: 0.5}
		m, mem := boundModel(t, p, 19)
		fillRow(mem, testGeom(), 5, 0xA5)
		for w := 0; w < 50; w++ {
			m.OnWindow(victimReport(5, pressure))
		}
		return len(m.Flips())
	}
	atThreshold := count(10)    // excess 1 on a 500 scale: p ≈ 0.002
	overHammered := count(5000) // excess ≈ 10× scale: p ≈ 1
	if atThreshold >= overHammered {
		t.Fatalf("threshold pressure flipped %d ≥ over-hammered %d", atThreshold, overHammered)
	}
	if overHammered < 100 {
		t.Fatalf("over-hammered row flipped only %d times over 50 windows", overHammered)
	}
}

// TestClassOrdering: under the same heavy workload, the module classes
// flip in vulnerability order A ≥ B ≥ C, with A strictly ahead of C.
func TestClassOrdering(t *testing.T) {
	count := func(p Profile) int {
		m, mem := boundModel(t, p, 23)
		fillRow(mem, testGeom(), 5, 0xA5)
		for w := 0; w < 40; w++ {
			m.OnWindow(victimReport(5, 300))
		}
		return len(m.Flips())
	}
	a, b, c := count(ClassA()), count(ClassB()), count(ClassC())
	if a < b || b < c || a <= c {
		t.Fatalf("class flip counts A=%d B=%d C=%d, want A ≥ B ≥ C and A > C", a, b, c)
	}
}

// TestEmptyWindowsAdvanceOnly: a victim report with no victims (a
// refresh window in which nothing crossed the hammer threshold) still
// ticks the window counter — the escalation drivers key their scans
// off it — but samples no cells at all.
func TestEmptyWindowsAdvanceOnly(t *testing.T) {
	m, _ := boundModel(t, hotProfile(), 7)
	for w := 0; w < 100; w++ {
		m.OnWindow(dram.Stats{})
	}
	if got := m.Windows(); got != 100 {
		t.Fatalf("windows = %d, want 100", got)
	}
	if m.Attempts() != 0 || m.Misses() != 0 || len(m.Flips()) != 0 {
		t.Fatalf("empty windows did work: attempts=%d misses=%d flips=%d",
			m.Attempts(), m.Misses(), len(m.Flips()))
	}
}

// TestRampScaleZeroMeansCertainFlips: Validate rejects a non-positive
// ExcessScale, but the model must stay total on any profile it is
// handed — the guard collapses the probability ramp to p = 1, so on a
// fully 1-charged row with full 1→0 bias every attempt flips (up to
// deterministic cell collisions, which re-roll as source misses).
func TestRampScaleZeroMeansCertainFlips(t *testing.T) {
	p := Profile{Name: "degenerate", AttemptsPerWindow: 16, ExcessScale: 0, OneToZeroBias: 1}
	geom := testGeom()
	mem := phys.MustNew(geom.Capacity())
	m := &Model{profile: p, seed: 11, rng: rand.New(rand.NewSource(11))}
	if err := m.Bind(mem, geom); err != nil {
		t.Fatal(err)
	}
	fillRow(mem, geom, 9, 0xFF)
	// Pressure exactly at threshold: any positive scale would make
	// flips rare here; the guard makes them certain.
	m.OnWindow(victimReport(9, geom.HammerThreshold))
	flips := len(m.Flips())
	if uint64(flips)+m.Misses() != m.Attempts() {
		t.Fatalf("accounting broken: %d flips + %d misses != %d attempts",
			flips, m.Misses(), m.Attempts())
	}
	if flips != p.AttemptsPerWindow {
		// The only legal misses are attempts that re-drew an
		// already-flipped cell; those cells must now hold 0.
		for _, f := range m.Flips() {
			if mem.Bit(f.Addr, f.Bit) != 0 {
				t.Fatalf("recorded flip at %#x bit %d did not discharge", uint64(f.Addr), f.Bit)
			}
		}
		if m.Misses() == 0 || flips == 0 {
			t.Fatalf("scale-0 window: %d flips, %d misses over %d attempts",
				flips, m.Misses(), m.Attempts())
		}
	}
}

// stubInjector is a do-nothing fault seam for wiring tests.
type stubInjector struct{}

func (stubInjector) OnWindow(uint64)                  {}
func (stubInjector) SuppressAttempt(dram.Victim) bool { return false }
func (stubInjector) RedirectFlip(a phys.Addr, b uint) (phys.Addr, uint, bool) {
	return a, b, false
}
func (stubInjector) ObserveFlip(dram.Victim) {}

// TestModelAccessorsAndInjectorRules: the model reports its profile and
// seed, and SetInjector is one-shot and nil-checked (the injector's
// random stream must pair with exactly one model).
func TestModelAccessorsAndInjectorRules(t *testing.T) {
	m := MustNewModel(hotProfile(), 7)
	if m.Profile().Name != hotProfile().Name {
		t.Fatalf("Profile() = %+v, want the construction profile", m.Profile())
	}
	if m.Seed() != 7 {
		t.Fatalf("Seed() = %d, want 7", m.Seed())
	}
	if err := m.SetInjector(nil); err == nil {
		t.Fatal("SetInjector accepted nil")
	}
	if err := m.SetInjector(stubInjector{}); err != nil {
		t.Fatalf("SetInjector: %v", err)
	}
	if err := m.SetInjector(stubInjector{}); err == nil {
		t.Fatal("SetInjector accepted a second injector")
	}
}
