// Package phys models the machine's physical memory as a sparse array of
// 4 KiB frames. Frames are allocated lazily on first touch, so an 8 GiB
// machine costs host memory only for the frames the simulation actually
// writes. All simulated state that must survive a rowhammer bit flip —
// most importantly page tables — lives in these bytes: the DRAM flip
// engine mutates them directly and the MMU later reads the corrupted
// values back, exactly as on real hardware.
package phys

import "fmt"

// FrameSize is the size of a physical frame in bytes (x86 4 KiB pages).
const FrameSize = 4096

// FrameShift is log2(FrameSize).
const FrameShift = 12

// Addr is a physical byte address.
type Addr uint64

// Frame is a physical frame number (Addr >> FrameShift).
type Frame uint64

// Addr returns the base physical address of the frame.
//
//pthammer:noalloc
func (f Frame) Addr() Addr { return Addr(f) << FrameShift }

// FrameOf returns the frame containing the physical address.
//
//pthammer:noalloc
func FrameOf(a Addr) Frame { return Frame(a >> FrameShift) }

// Offset returns the offset of the address within its frame.
//
//pthammer:noalloc
func Offset(a Addr) uint64 { return uint64(a) & (FrameSize - 1) }

// Memory is a sparse physical memory of a fixed size. The zero value is
// not usable; create one with New.
//
// The frame table is a flat slice of per-frame pointers rather than a
// map: a frame lookup sits under every simulated page-table read, so it
// must be one indexed load, not a hash probe. The table costs 8 bytes
// per frame (2 MiB for a 1 GiB machine) while the frame contents stay
// lazily allocated.
type Memory struct {
	size   uint64
	frames []*[FrameSize]byte
	// materialized counts lazily allocated frames.
	materialized int
	// writes counts byte-granularity stores, used by tests to assert
	// that simulated devices really touch memory.
	writes uint64
}

// New creates a physical memory of size bytes. Size must be a non-zero
// multiple of FrameSize.
func New(size uint64) (*Memory, error) {
	if size == 0 || size%FrameSize != 0 {
		return nil, fmt.Errorf("phys: size %d is not a positive multiple of %d", size, FrameSize)
	}
	return &Memory{size: size, frames: make([]*[FrameSize]byte, size/FrameSize)}, nil
}

// MustNew is New but panics on error; intended for tests and presets with
// statically known sizes.
func MustNew(size uint64) *Memory {
	m, err := New(size)
	if err != nil {
		panic(err)
	}
	return m
}

// Size returns the capacity of the memory in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Frames returns the number of physical frames.
//
//pthammer:noalloc
func (m *Memory) Frames() uint64 { return m.size / FrameSize }

// Contains reports whether the address is inside the memory.
//
//pthammer:noalloc
func (m *Memory) Contains(a Addr) bool { return uint64(a) < m.size }

// frame returns the backing array for f, allocating it (zeroed) on first
// touch. Panics if f is out of range: callers are simulated hardware, and
// an out-of-range physical access is a simulator bug, not a runtime
// condition to handle.
//
//pthammer:noalloc
func (m *Memory) frame(f Frame) *[FrameSize]byte {
	fr := m.peek(f)
	if fr == nil {
		fr = new([FrameSize]byte) //pthammer:alloc-ok lazy first-touch materialization, once per frame
		m.frames[f] = fr
		m.materialized++
	}
	return fr
}

// peek returns the backing array for f, or nil if the frame has never
// been written. Read paths use it so sweeping loads over a large
// address space do not materialize host memory. Panics like frame on
// out-of-range frames.
//
//pthammer:noalloc
func (m *Memory) peek(f Frame) *[FrameSize]byte {
	if uint64(f) >= m.Frames() {
		panic(fmt.Sprintf("phys: frame %#x out of range (%d frames)", uint64(f), m.Frames()))
	}
	return m.frames[f]
}

// Materialized returns how many frames have been lazily allocated so far.
func (m *Memory) Materialized() int { return m.materialized }

// Read8 returns the byte at physical address a. Reading a never-written
// frame returns zero without materializing it.
func (m *Memory) Read8(a Addr) byte {
	fr := m.peek(FrameOf(a))
	if fr == nil {
		return 0
	}
	return fr[Offset(a)]
}

// Write8 stores b at physical address a.
func (m *Memory) Write8(a Addr, b byte) {
	m.frame(FrameOf(a))[Offset(a)] = b
	m.writes++
}

// Read64 loads a little-endian 64-bit value. The address must be 8-byte
// aligned (page-table entries always are).
//
//pthammer:noalloc
func (m *Memory) Read64(a Addr) uint64 {
	if a&7 != 0 {
		panic(fmt.Sprintf("phys: unaligned 64-bit read at %#x", uint64(a)))
	}
	fr := m.peek(FrameOf(a))
	if fr == nil {
		return 0
	}
	off := Offset(a)
	// Written as one little-endian expression so the compiler fuses it
	// into a single 8-byte load; this sits under every page-walk step.
	b := fr[off : off+8 : off+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Write64 stores a little-endian 64-bit value. The address must be 8-byte
// aligned.
//
//pthammer:noalloc
func (m *Memory) Write64(a Addr, v uint64) {
	if a&7 != 0 {
		panic(fmt.Sprintf("phys: unaligned 64-bit write at %#x", uint64(a)))
	}
	fr := m.frame(FrameOf(a))
	off := Offset(a)
	b := fr[off : off+8 : off+8]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
	m.writes += 8
}

// ReadFrame copies the contents of frame f into dst and returns the number
// of bytes copied (always FrameSize when dst is large enough). A
// never-written frame reads as zeros without materializing.
func (m *Memory) ReadFrame(f Frame, dst []byte) int {
	fr := m.peek(f)
	if fr == nil {
		var zero [FrameSize]byte
		return copy(dst, zero[:])
	}
	return copy(dst, fr[:])
}

// WriteFrame copies src into frame f starting at offset 0.
func (m *Memory) WriteFrame(f Frame, src []byte) int {
	n := copy(m.frame(f)[:], src)
	m.writes += uint64(n)
	return n
}

// ZeroFrame clears frame f. The kernel uses this when handing out pages.
func (m *Memory) ZeroFrame(f Frame) {
	fr := m.frame(f)
	for i := range fr {
		fr[i] = 0
	}
	m.writes += FrameSize
}

// ScrubFrame zeroes frame f in place if it has been materialized,
// counting the writes; a hole is left untouched. Recycling paths
// (pagetable.Tables.Reset) use this instead of ZeroFrame so that
// scrubbing a pool never materializes frames the simulation has not
// defined — a hole already reads as zero, and materializing it would
// silently change FlipBit's hole semantics for the next cohort.
func (m *Memory) ScrubFrame(f Frame) {
	fr := m.peek(f)
	if fr == nil {
		return
	}
	for i := range fr {
		fr[i] = 0
	}
	m.writes += FrameSize
}

// Reset returns the memory to its just-built state: every materialized
// frame is released back to hole status and the write/materialization
// accounting rewinds to zero. Releasing (rather than zeroing in place)
// is load-bearing for the Reset/Recycle contract: a freshly built
// machine's memory is all holes, and FlipBit into a hole is a no-op
// miss, so a recycled machine must present the same holes or its flip
// model's attempt/miss accounting would diverge from a fresh one's.
// Cost is one pointer store per frame (the hole fast path stays an
// indexed load); the released contents are reclaimed by the host GC.
func (m *Memory) Reset() {
	if m.materialized != 0 {
		clear(m.frames)
	}
	m.materialized = 0
	m.writes = 0
}

// FlipBit inverts a single bit at physical address a. It returns the
// new value of the bit and whether the flip was applied. This is the
// DRAM disturbance-error entry point: it is the only mutation in the
// simulator that does not originate from a CPU store.
//
// Hole semantics: a never-written frame has no simulated content, so a
// flip aimed into one is a no-op reporting ok=false — the frame is not
// materialized and no write is counted. This mirrors Bit, which reads
// the same hole as 0 without materializing, and keeps a flip model
// walking a sparse victim row from inflating Materialized and
// WriteCount with frames the simulation never defined. Flips only ever
// land in frames the simulation has written (page tables, filled
// victim pages), exactly the cells whose content a real disturbance
// error corrupts.
func (m *Memory) FlipBit(a Addr, bit uint) (byte, bool) {
	if bit > 7 {
		panic(fmt.Sprintf("phys: bit index %d out of range", bit))
	}
	fr := m.peek(FrameOf(a))
	if fr == nil {
		return 0, false
	}
	off := Offset(a)
	fr[off] ^= 1 << bit
	m.writes++
	return (fr[off] >> bit) & 1, true
}

// Bit returns the current value (0 or 1) of the given bit. Reading a
// never-written frame reports 0 without materializing it — the same
// hole semantics FlipBit applies on the mutation side.
func (m *Memory) Bit(a Addr, bit uint) byte {
	if bit > 7 {
		panic(fmt.Sprintf("phys: bit index %d out of range", bit))
	}
	fr := m.peek(FrameOf(a))
	if fr == nil {
		return 0
	}
	return (fr[Offset(a)] >> bit) & 1
}

// WriteCount returns the number of byte stores performed so far.
func (m *Memory) WriteCount() uint64 { return m.writes }
