package phys

import "testing"

// TestScrubFrameZeroesInPlaceAndSkipsHoles pins ScrubFrame's two
// halves of the Reset/Recycle contract: a materialized frame is zeroed
// in place with its writes counted (a recycled page-table pool really
// is scrubbed, not just forgotten), while a hole is left untouched —
// scrubbing must never materialize frames the simulation has not
// defined, or a recycled machine's FlipBit hole semantics would
// diverge from a fresh one's.
func TestScrubFrameZeroesInPlaceAndSkipsHoles(t *testing.T) {
	m := MustNew(4 * FrameSize)
	m.Write8(Frame(1).Addr()+5, 0xAB)
	if m.Materialized() != 1 {
		t.Fatalf("Materialized = %d, want 1", m.Materialized())
	}
	writesBefore := m.WriteCount()

	m.ScrubFrame(1)
	if got := m.Read8(Frame(1).Addr() + 5); got != 0 {
		t.Errorf("scrubbed frame reads %#x, want 0", got)
	}
	if m.Materialized() != 1 {
		t.Errorf("scrub changed materialization: %d frames", m.Materialized())
	}
	if m.WriteCount() != writesBefore+FrameSize {
		t.Errorf("scrub writes = %d, want %d", m.WriteCount()-writesBefore, uint64(FrameSize))
	}

	m.ScrubFrame(2) // hole: must stay a hole, no writes counted
	if m.Materialized() != 1 || m.WriteCount() != writesBefore+FrameSize {
		t.Errorf("scrubbing a hole materialized it or counted writes: %d frames, %d writes",
			m.Materialized(), m.WriteCount())
	}
}

// TestMemoryResetRestoresHoles pins Memory.Reset: every materialized
// frame is released back to hole status (not merely zeroed) and the
// accounting rewinds, so a recycled machine presents the same
// all-holes memory as a fresh one — in particular FlipBit into a
// previously written, now-reset frame must again be the hole no-op.
func TestMemoryResetRestoresHoles(t *testing.T) {
	m := MustNew(4 * FrameSize)
	m.Write8(Frame(0).Addr(), 1)
	m.Write8(Frame(3).Addr()+100, 2)
	if m.Materialized() != 2 || m.WriteCount() == 0 {
		t.Fatalf("setup: %d frames, %d writes", m.Materialized(), m.WriteCount())
	}

	m.Reset()
	if m.Materialized() != 0 || m.WriteCount() != 0 {
		t.Errorf("post-Reset accounting: %d frames, %d writes, want 0, 0", m.Materialized(), m.WriteCount())
	}
	if got := m.Read8(Frame(0).Addr()); got != 0 {
		t.Errorf("post-Reset read = %#x, want 0", got)
	}
	if _, ok := m.FlipBit(Frame(3).Addr()+100, 0); ok {
		t.Error("FlipBit into a reset frame applied; want hole no-op")
	}
	if m.Materialized() != 0 {
		t.Errorf("hole probes materialized %d frames", m.Materialized())
	}
}
