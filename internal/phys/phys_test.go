package phys

import "testing"

func TestNewRejectsBadSizes(t *testing.T) {
	for _, size := range []uint64{0, 1, FrameSize - 1, FrameSize + 1} {
		if _, err := New(size); err == nil {
			t.Errorf("New(%d) = nil error, want error", size)
		}
	}
	if _, err := New(4 * FrameSize); err != nil {
		t.Fatalf("New(4 frames) failed: %v", err)
	}
}

func TestLazyMaterialization(t *testing.T) {
	m := MustNew(16 * FrameSize)
	if got := m.Materialized(); got != 0 {
		t.Fatalf("fresh memory materialized %d frames, want 0", got)
	}
	m.Write8(0, 1)
	m.Write8(FrameSize, 2) // second frame
	// Reads of untouched frames return zeros without materializing.
	if got := m.Read8(FrameSize * 2); got != 0 {
		t.Fatalf("unwritten byte = %d, want 0", got)
	}
	if got := m.Read64(FrameSize * 3); got != 0 {
		t.Fatalf("unwritten word = %d, want 0", got)
	}
	if got := m.Bit(FrameSize*2, 5); got != 0 {
		t.Fatalf("unwritten bit = %d, want 0", got)
	}
	dst := []byte{0xff, 0xff}
	if n := m.ReadFrame(3, dst); n != 2 || dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("unwritten ReadFrame = %d %v, want zeros", n, dst)
	}
	if got := m.Materialized(); got != 2 {
		t.Fatalf("materialized %d frames, want 2", got)
	}
	if m.Frames() != 16 || m.Size() != 16*FrameSize {
		t.Fatalf("Frames/Size = %d/%d, want 16/%d", m.Frames(), m.Size(), 16*FrameSize)
	}
}

func TestFlipBitRoundTrip(t *testing.T) {
	m := MustNew(FrameSize)
	a := Addr(100)
	m.Write8(a, 0b0000_1000)
	if got := m.Bit(a, 3); got != 1 {
		t.Fatalf("Bit(3) = %d, want 1", got)
	}
	if got, ok := m.FlipBit(a, 3); got != 0 || !ok {
		t.Fatalf("FlipBit returned (%d, %v), want (0, true)", got, ok)
	}
	if got := m.Read8(a); got != 0 {
		t.Fatalf("byte after flip = %#x, want 0", got)
	}
	if got, ok := m.FlipBit(a, 3); got != 1 || !ok {
		t.Fatalf("second FlipBit returned (%d, %v), want (1, true)", got, ok)
	}
	if got := m.Read8(a); got != 0b0000_1000 {
		t.Fatalf("byte after double flip = %#x, want original", got)
	}
}

// TestFlipBitHoleIsNoOp pins the hole semantics: a flip aimed at a
// never-written frame reports a miss and leaves the memory untouched —
// no materialization, no write counted — matching Bit's read-side view
// of the same hole.
func TestFlipBitHoleIsNoOp(t *testing.T) {
	m := MustNew(4 * FrameSize)
	a := Addr(2*FrameSize + 17)
	if got, ok := m.FlipBit(a, 6); got != 0 || ok {
		t.Fatalf("hole FlipBit returned (%d, %v), want (0, false)", got, ok)
	}
	if got := m.Materialized(); got != 0 {
		t.Fatalf("hole FlipBit materialized %d frames, want 0", got)
	}
	if got := m.WriteCount(); got != 0 {
		t.Fatalf("hole FlipBit counted %d writes, want 0", got)
	}
	if got := m.Bit(a, 6); got != 0 {
		t.Fatalf("Bit after hole flip = %d, want 0", got)
	}
	// Once the frame is materialized by a real store, the same flip
	// applies normally.
	m.Write8(a, 0)
	if got, ok := m.FlipBit(a, 6); got != 1 || !ok {
		t.Fatalf("materialized FlipBit returned (%d, %v), want (1, true)", got, ok)
	}
	if got := m.Bit(a, 6); got != 1 {
		t.Fatalf("Bit after materialized flip = %d, want 1", got)
	}
}

func TestRead64Write64RoundTrip(t *testing.T) {
	m := MustNew(FrameSize)
	const v = 0x0123_4567_89ab_cdef
	m.Write64(8, v)
	if got := m.Read64(8); got != v {
		t.Fatalf("Read64 = %#x, want %#x", got, uint64(v))
	}
	// Little-endian byte order.
	if got := m.Read8(8); got != 0xef {
		t.Fatalf("low byte = %#x, want 0xef", got)
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestPanics(t *testing.T) {
	m := MustNew(2 * FrameSize)
	mustPanic(t, "unaligned Read64", func() { m.Read64(1) })
	mustPanic(t, "unaligned Write64", func() { m.Write64(4, 0) })
	mustPanic(t, "out-of-range read", func() { m.Read8(2 * FrameSize) })
	mustPanic(t, "out-of-range frame", func() { m.ZeroFrame(2) })
	mustPanic(t, "bad bit index", func() { m.FlipBit(0, 8) })
	mustPanic(t, "bad bit index Bit", func() { m.Bit(0, 9) })
}

func TestFrameHelpersAndFrameIO(t *testing.T) {
	if FrameOf(Addr(FrameSize+5)) != 1 || Offset(Addr(FrameSize+5)) != 5 {
		t.Fatal("FrameOf/Offset decompose wrong")
	}
	if Frame(3).Addr() != Addr(3*FrameSize) {
		t.Fatal("Frame.Addr wrong")
	}

	m := MustNew(4 * FrameSize)
	src := make([]byte, FrameSize)
	for i := range src {
		src[i] = byte(i)
	}
	if n := m.WriteFrame(1, src); n != FrameSize {
		t.Fatalf("WriteFrame copied %d bytes", n)
	}
	dst := make([]byte, FrameSize)
	if n := m.ReadFrame(1, dst); n != FrameSize {
		t.Fatalf("ReadFrame copied %d bytes", n)
	}
	for i := range dst {
		if dst[i] != src[i] {
			t.Fatalf("frame byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
	m.ZeroFrame(1)
	if m.Read8(FrameSize) != 0 {
		t.Fatal("ZeroFrame left data behind")
	}
}

func TestWriteCount(t *testing.T) {
	m := MustNew(FrameSize)
	if m.WriteCount() != 0 {
		t.Fatal("fresh memory has nonzero write count")
	}
	m.Write8(0, 1)                    // +1
	m.Write64(8, 1)                   // +8
	m.FlipBit(0, 0)                   // +1
	m.ZeroFrame(0)                    // +FrameSize
	m.WriteFrame(0, make([]byte, 16)) // +16
	want := uint64(1 + 8 + 1 + FrameSize + 16)
	if got := m.WriteCount(); got != want {
		t.Fatalf("WriteCount = %d, want %d", got, want)
	}
}
