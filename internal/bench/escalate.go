// The privilege-escalation demo: PThammer's payoff (paper §V, the
// same exploitation shape as Seaborn's PTE spray). The attack runs the
// flush-free implicit-hammer loop against an aggressor pair chosen so
// the sandwiched victim row holds leaf page tables whose entries are a
// single bit flip away from pointing at *other page tables*. The
// attacker sprays mappings through those tables, hammers until the
// machine's flip model corrupts one of the sprayed PTEs, notices the
// damage purely from user space (a translation diverging from the
// known identity layout), and then owns translation: the corrupted
// PTE maps an attacker page onto a page-table frame, so a plain user
// store through that page rewrites the attacker's own PTEs — from
// which any physical frame, kernel memory included, is one store away.
//
// Everything the attacker does after machine setup is a demand load, a
// timed probe, or a plain store: the privileged-operation counters
// stay frozen end to end, which the acceptance test asserts.
package bench

import (
	"fmt"
	"math/bits"
	"sort"

	"pthammer/internal/dram"
	"pthammer/internal/evset"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// escalationSeedRegions is how many 2 MiB regions the escalation
// planner touches while hunting for sprayable aggressor pairs. It must
// reach past the first pair whose victim row maps a sprayable region,
// and — for the budgeted driver's replan tier — far enough that the
// ranking holds fallback pairs: at 500 regions the SandyBridge demo
// layout yields three viable pairs on distinct victim rows, so an
// invalidated pair still leaves two to fall back to.
const escalationSeedRegions = 500

// escalationMarker is the value the attacker's final store plants in
// kernel memory to prove arbitrary physical write.
const escalationMarker = 0x5054_4861_6d6d_6572 // "PTHammer"

// EscalationConfig is the scaled-down demo machine: the SandyBridge
// preset with the hammer threshold lowered and the refresh window
// shortened so one window holds roughly 48 hammer iterations (~7.2 k
// cycles each). That puts the double-sided victim row at ~96
// activations of pressure per window — comfortably past the threshold
// of 64 — while the single-sided neighbours of the aggressor rows stay
// below it, so flips land only in the victim row. The model is wired
// as the machine's flip engine.
func EscalationConfig(model *flip.Model) machine.Config {
	cfg := machine.SandyBridge()
	cfg.DRAM.HammerThreshold = 64
	cfg.DRAM.RefreshWindow = 350_000
	cfg.FlipModel = model
	return cfg
}

// EscalationPlan is the attacker's layout for one escalation run: the
// aggressor pair, the pages sprayed through the victim row's page
// tables, the pages kept out of every eviction stream, and the thrash
// stream that scrubs the TLBs before a detection scan.
type EscalationPlan struct {
	Pair ImplicitPair
	// VictimRegions are the 2 MiB region bases whose leaf page tables
	// sit inside the victim row — the tables a flip will corrupt.
	VictimRegions []phys.Addr
	// Spray is every page mapped through the victim-row tables. The
	// attacker touches them all so the tables fill with present PTEs,
	// and rescans their translations to detect flips.
	Spray []phys.Addr
	// Sprayable counts the (page, bit) positions where a single-bit
	// flip of a sprayed PTE's frame number lands on a known page-table
	// frame — the jackpot surface the hammer is fishing for.
	Sprayable int
	// Exclude is handed to eviction-set construction: every page whose
	// leaf PT sits in or adjacent to the hammered rows, so no stream
	// load ever goes through a PTE a flip might corrupt.
	Exclude []phys.Addr
	// Thrash is one region's worth of pages covering every TLB set at
	// full associativity: loading them all evicts every stale sprayed
	// translation, so the following Translate calls re-walk the
	// (possibly corrupted) tables.
	Thrash []phys.Addr

	// ptOf maps each known leaf-PT frame to the base VA of the 2 MiB
	// region it maps; refreshed by RunEscalation after construction so
	// it also covers tables demand-allocated while building the
	// eviction sets.
	ptOf map[phys.Frame]phys.Addr
}

// regionPages appends every page base of the 2 MiB region to out.
func regionPages(base phys.Addr, out []phys.Addr) []phys.Addr {
	for off := uint64(0); off < pagetable.Span(2); off += phys.FrameSize {
		out = append(out, base+phys.Addr(off))
	}
	return out
}

// leafPTs maps every currently-known leaf-PT frame to its region base,
// walking region bases below the kernel pool.
func leafPTs(m *machine.Machine) map[phys.Frame]phys.Addr {
	base, _ := m.PageTables().Region()
	limit := base.Addr()
	out := make(map[phys.Frame]phys.Addr)
	span := pagetable.Span(2)
	for va := phys.Addr(0); va < limit; va += phys.Addr(span) {
		if pte, ok := m.PTEAddr(va, 1); ok {
			out[phys.FrameOf(pte)] = va
		}
	}
	return out
}

// sameBank reports whether two locations address the same DRAM bank.
func sameBank(a, b dram.Location) bool {
	return a.Channel == b.Channel && a.Rank == b.Rank && a.Bank == b.Bank
}

// pairCand is one viable aggressor pair the planner ranked: same-bank,
// two rows apart, victim row holding leaf tables with a non-empty
// jackpot surface.
type pairCand struct {
	lo, hi       regionCand
	loLoc, hiLoc dram.Location
	victimRow    uint64
	victims      []phys.Addr
	sprayable    int
}

// regionCand is one touched 2 MiB region and its leaf-PTE address.
type regionCand struct {
	va  phys.Addr
	pte phys.Addr
}

// EscalationPlanner enumerates and ranks every viable aggressor pair on
// one machine, so the escalation driver can fall back to the next-best
// pair when the best one stops producing exploitable flips (a fault
// invalidated it, or its jackpot surface was simply unlucky). The
// candidate scan and ranking run once in NewEscalationPlanner; each
// Next call lays out (sprays, excludes, picks a thrash stream for) the
// next pair in rank order.
type EscalationPlanner struct {
	m     *machine.Machine
	geom  dram.Config
	cands []regionCand
	pairs []pairCand
	next  int
	ptOf  map[phys.Frame]phys.Addr
}

// NewEscalationPlanner touches up to escalationSeedRegions regions
// (demand-allocating their page tables), then collects every same-bank
// two-rows-apart PTE pair whose victim row holds leaf page tables with
// at least one single-bit jackpot position, ranked by jackpot-surface
// size (scan order breaks ties), deduplicated by victim row — two
// pairs hammering the same row would fail the same way. Only demand
// loads are issued.
func NewEscalationPlanner(m *machine.Machine) (*EscalationPlanner, error) {
	span := pagetable.Span(2)
	geom := m.DRAM().Config()
	poolBase, _ := m.PageTables().Region()
	limit := poolBase.Addr()

	cands := make([]regionCand, 0, escalationSeedRegions)
	for k := 0; k < escalationSeedRegions && phys.Addr(uint64(k)*span) < limit; k++ {
		va := phys.Addr(uint64(k) * span)
		m.Load(va)
		if pte, ok := m.PTEAddr(va, 1); ok {
			cands = append(cands, regionCand{va: va, pte: pte})
		}
	}
	ptOf := leafPTs(m)
	frameBits := bits.Len64(m.Memory().Frames() - 1)

	// sprayableIn counts single-bit jackpot positions over one region's
	// identity frames: bit j of page frame f flipping onto a known
	// page-table frame.
	sprayableIn := func(base phys.Addr) int {
		n := 0
		first := phys.FrameOf(base)
		for p := uint64(0); p < span/phys.FrameSize; p++ {
			f := first + phys.Frame(p)
			for j := 0; j < frameBits; j++ {
				if _, ok := ptOf[f^phys.Frame(1)<<j]; ok {
					n++
				}
			}
		}
		return n
	}

	p := &EscalationPlanner{m: m, geom: geom, cands: cands, ptOf: ptOf}
	type rowKey struct {
		channel, rank, bank int
		row                 uint64
	}
	seen := make(map[rowKey]bool)
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			a, b := geom.Map(cands[i].pte), geom.Map(cands[j].pte)
			if !sameBank(a, b) {
				continue
			}
			lo, hi := cands[i], cands[j]
			loLoc, hiLoc := a, b
			if loLoc.Row > hiLoc.Row {
				lo, hi = hi, lo
				loLoc, hiLoc = hiLoc, loLoc
			}
			if hiLoc.Row-loLoc.Row != 2 {
				continue
			}
			victimRow := loLoc.Row + 1
			key := rowKey{loLoc.Channel, loLoc.Rank, loLoc.Bank, victimRow}
			if seen[key] {
				continue
			}
			start, rowBytes := geom.RowRange(loLoc.Channel, loLoc.Rank, loLoc.Bank, victimRow)

			// Which regions' leaf tables live in the victim row, and is
			// any of them sprayable?
			var victims []phys.Addr
			sprayable := 0
			for f := phys.FrameOf(start); f <= phys.FrameOf(start+phys.Addr(rowBytes-1)); f++ {
				if base, ok := ptOf[f]; ok {
					victims = append(victims, base)
					sprayable += sprayableIn(base)
				}
			}
			if sprayable == 0 {
				continue
			}
			seen[key] = true
			p.pairs = append(p.pairs, pairCand{
				lo: lo, hi: hi, loLoc: loLoc, hiLoc: hiLoc,
				victimRow: victimRow, victims: victims, sprayable: sprayable,
			})
		}
	}
	if len(p.pairs) == 0 {
		return nil, fmt.Errorf("bench: no sprayable aggressor pair within %d regions", escalationSeedRegions)
	}
	// Rank by jackpot surface, largest first; the enumeration order is
	// deterministic, so a stable sort pins the full order per machine.
	sort.SliceStable(p.pairs, func(i, j int) bool {
		return p.pairs[i].sprayable > p.pairs[j].sprayable
	})
	return p, nil
}

// Remaining reports how many ranked pairs Next has not yet laid out.
func (p *EscalationPlanner) Remaining() int { return len(p.pairs) - p.next }

// Next lays out the attack on the next-best ranked pair: sprays the
// victim regions, computes the eviction-stream exclusion set, and
// premaps a TLB-thrash region. It returns an error once the ranking is
// exhausted — the driver's signal that no replan tier is left.
func (p *EscalationPlanner) Next() (*EscalationPlan, error) {
	if p.next >= len(p.pairs) {
		return nil, fmt.Errorf("bench: candidate aggressor pairs exhausted after %d", len(p.pairs))
	}
	pc := p.pairs[p.next]
	p.next++

	plan := &EscalationPlan{
		Pair: ImplicitPair{
			VA1: pc.lo.va, VA2: pc.hi.va,
			PTE1: pc.lo.pte, PTE2: pc.hi.pte,
			Loc1: pc.loLoc, Loc2: pc.hiLoc,
			VictimRow: pc.victimRow,
		},
		VictimRegions: pc.victims,
		Sprayable:     pc.sprayable,
		ptOf:          p.ptOf,
		// Spray: map every page of the victim regions so their tables
		// fill with present PTEs — the flip targets.
		Spray: make([]phys.Addr, 0, len(pc.victims)*int(pagetable.Span(2)/phys.FrameSize)),
	}
	for _, base := range pc.victims {
		plan.Spray = regionPages(base, plan.Spray)
	}
	for _, va := range plan.Spray {
		p.m.Load(va)
	}
	// Exclude from eviction streams every page whose leaf PT sits in
	// [aggressor low row - 1, aggressor high row + 1] of the hammered
	// bank: those tables hold all the entries a flip could conceivably
	// corrupt (the victim row by design, its neighbours under drift),
	// and a corrupted stream translation could resolve anywhere.
	for _, c := range p.cands {
		loc := p.geom.Map(c.pte)
		if sameBank(loc, pc.loLoc) && loc.Row+1 >= pc.loLoc.Row && loc.Row <= pc.hiLoc.Row+1 {
			plan.Exclude = regionPages(c.va, plan.Exclude)
		}
	}
	if err := plan.pickThrash(p.m, p.geom, pc.loLoc, pc.hiLoc); err != nil {
		return nil, err
	}
	return plan, nil
}

// PlanEscalation lays out the attack on a fresh machine using the
// top-ranked aggressor pair — the single-shot entry the demo and the
// flip-rate tables use. The budgeted driver keeps the planner instead,
// so it can fall back to later-ranked pairs.
func PlanEscalation(m *machine.Machine) (*EscalationPlan, error) {
	p, err := NewEscalationPlanner(m)
	if err != nil {
		return nil, err
	}
	return p.Next()
}

// pickThrash premaps the TLB-scrub region: one full 2 MiB region (512
// consecutive pages touch every dTLB and sTLB set at associativity, so
// loading them all evicts every stale translation) whose own leaf PT
// must sit outside the hammered rows. Regions are probed downward from
// the top of user space.
func (plan *EscalationPlan) pickThrash(m *machine.Machine, geom dram.Config, loLoc, hiLoc dram.Location) error {
	span := pagetable.Span(2)
	poolBase, _ := m.PageTables().Region()
	limit := poolBase.Addr()
	victims := make(map[phys.Addr]bool, len(plan.VictimRegions))
	for _, v := range plan.VictimRegions {
		victims[v] = true
	}
	for r := uint64(limit) / span; r > 0; r-- {
		base := phys.Addr((r - 1) * span)
		if base+phys.Addr(span) > limit || victims[base] {
			continue
		}
		m.Premap(base, span)
		pte, ok := m.PTEAddr(base, 1)
		if !ok {
			continue
		}
		loc := geom.Map(pte)
		if sameBank(loc, loLoc) && loc.Row+1 >= loLoc.Row && loc.Row <= hiLoc.Row+1 {
			continue // this region's own PTEs are themselves corruptible
		}
		plan.Thrash = regionPages(base, nil)
		return nil
	}
	return fmt.Errorf("bench: no safe TLB-thrash region below the kernel pool")
}

// scan scrubs the TLBs with the thrash stream, then re-translates
// every sprayed page, looking for a translation that diverged from the
// identity layout onto a known page-table frame. (page, table)
// combinations already found unexploitable are skipped. Plain loads
// and translations only.
func (plan *EscalationPlan) scan(m *machine.Machine, rejected map[rejection]bool) (va phys.Addr, table phys.Frame, ok bool) {
	for _, a := range plan.Thrash {
		m.Load(a)
	}
	for _, s := range plan.Spray {
		frame, _ := m.Translate(s)
		if frame == phys.FrameOf(s) {
			continue
		}
		if _, isPT := plan.ptOf[frame]; !isPT || rejected[rejection{s, frame}] {
			continue
		}
		return s, frame, true
	}
	return 0, 0, false
}

// EscalationResult records one completed escalation.
type EscalationResult struct {
	// Iterations and Windows count the hammer phase; Cycles is its
	// simulated duration.
	Iterations uint64
	Windows    uint64
	Cycles     timing.Cycles
	// FirstFlipIter / FirstFlipCycles locate the first disturbance
	// error of the run (iteration is 1-based; 0 means none landed).
	FirstFlipIter   uint64
	FirstFlipCycles timing.Cycles
	// TotalFlips is every flip the model produced, jackpot or not.
	TotalFlips int
	// CorruptVA is the sprayed page whose leaf PTE the winning flip
	// corrupted; it now maps TableFrame, the leaf page table of the
	// region at TableRegion.
	CorruptVA   phys.Addr
	TableFrame  phys.Frame
	TableRegion phys.Addr
	// RewrittenVA is the attacker page whose PTE was rewritten through
	// CorruptVA; it now maps SecretFrame — an untouched kernel
	// page-table-pool frame — and the attacker's marker store landed
	// there (the marker is read back for verification).
	RewrittenVA phys.Addr
	SecretFrame phys.Frame
}

// exploit turns one detected jackpot into the escalation: the
// corrupted page CorruptVA maps the leaf page table of TableRegion, so
// a plain user store through it installs a fresh PTE mapping an
// untouched attacker page onto an untouched kernel-pool frame, and a
// second plain store through that page writes kernel memory.
func (plan *EscalationPlan) exploit(m *machine.Machine, corruptVA phys.Addr, table phys.Frame, res *EscalationResult) error {
	region := plan.ptOf[table]
	// Find a free slot: an entry still zero means its page was never
	// mapped, so no stale translation exists anywhere. (The attacker
	// reads the table through its newly-won window; the simulator has
	// no data-value load path, so the same bytes are read via phys.)
	slot := -1
	for idx := 0; idx < pagetable.EntriesPerTable; idx++ {
		if m.Memory().Read64(table.Addr()+phys.Addr(idx*pagetable.EntryBytes)) == 0 {
			slot = idx
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("bench: table %#x fully mapped, no free slot", uint64(table))
	}
	base, frames := m.PageTables().Region()
	if m.PageTables().Allocated() >= int(frames) {
		return fmt.Errorf("bench: table pool exhausted, no untouched kernel frame")
	}
	secret := base + phys.Frame(frames-1)

	// Rewrite the attacker's own PTE: a plain user store through the
	// corrupted mapping lands in the page table itself.
	m.Store64(corruptVA+phys.Addr(slot*pagetable.EntryBytes), uint64(pagetable.NewEntry(secret)))
	vaW := region + phys.Addr(uint64(slot)*phys.FrameSize)
	if got, _ := m.Translate(vaW); got != secret {
		return fmt.Errorf("bench: rewritten PTE resolves %#x, want %#x", uint64(got), uint64(secret))
	}
	// The attacker now maps kernel memory: prove it with a marker
	// store through the remapped page.
	m.Store64(vaW, escalationMarker)
	if got := m.Memory().Read64(secret.Addr()); got != escalationMarker {
		return fmt.Errorf("bench: marker missing from kernel frame: read %#x", got)
	}
	res.CorruptVA = corruptVA
	res.TableFrame = table
	res.TableRegion = region
	res.RewrittenVA = vaW
	res.SecretFrame = secret
	return nil
}

// rejection identifies one unusable divergence: the page plus the
// table it was remapped onto. Keying on the pair (not the page alone)
// keeps a page in play for later, different flips.
type rejection struct {
	va    phys.Addr
	table phys.Frame
}

// RunEscalation hammers until a model-driven flip lands in one of the
// victim row's page tables in an exploitable way, then performs the
// escalation. Detection is purely attacker-side: once per refresh
// window — the attacker schedules rescans from rdtsc and the known
// tREFW, not from any oracle — the sprayed translations are rescanned
// (thrash loads + Translate) for divergence, so the reported cycles
// include every scan a real attacker pays for. Corrupted-but-useless
// (page, table) combinations are remembered and skipped. The hammer
// loop, detection, and exploit use no privileged operation.
func RunEscalation(m *machine.Machine, h *ImplicitHammer, plan *EscalationPlan, maxIters uint64) (EscalationResult, error) {
	model := m.FlipModel()
	if model == nil {
		return EscalationResult{}, fmt.Errorf("bench: escalation needs a machine with a flip model")
	}
	// Refresh the table map: eviction-set construction demand-allocated
	// more page tables since the plan was laid out, and a flip landing
	// on any of them is just as exploitable.
	plan.ptOf = leafPTs(m)

	// Construction already rotated windows (and could in principle have
	// flipped); everything reported below is the hammer phase's own
	// delta past these marks.
	windows0 := model.Windows()
	flips0 := len(model.Flips())

	var res EscalationResult
	start := m.Clock().Now()
	window := timing.Cycles(m.Config().DRAM.RefreshWindow)
	nextScan := start + window
	rejected := make(map[rejection]bool)
	// Incremental detection: a window in which the model recorded no new
	// flip cannot have changed any translation, so the attacker skips
	// the rescan entirely. A real attacker gets the same signal for free
	// — the previous scan's translations are re-checked only after the
	// timing of a hammer iteration hiccups — and the demo keeps its
	// budget honest by only paying thrash + Translate traffic for
	// windows that might have produced damage.
	scannedFlips := flips0
	rescan := false // a rejected exploit may have left another divergence
	for it := uint64(0); it < maxIters; it++ {
		h.HammerOnce(m)
		res.Iterations = it + 1
		if res.FirstFlipIter == 0 && len(model.Flips()) > flips0 {
			res.FirstFlipIter = it + 1
			res.FirstFlipCycles = m.Clock().Now() - start
		}
		if window == 0 || m.Clock().Now() < nextScan {
			continue
		}
		for nextScan <= m.Clock().Now() {
			nextScan += window
		}
		if len(model.Flips()) == scannedFlips && !rescan {
			continue
		}
		scannedFlips = len(model.Flips())
		rescan = false
		va, table, ok := plan.scan(m, rejected)
		if !ok {
			continue
		}
		if err := plan.exploit(m, va, table, &res); err != nil {
			rejected[rejection{va, table}] = true
			rescan = true
			continue
		}
		res.Windows = model.Windows() - windows0
		res.Cycles = m.Clock().Now() - start
		res.TotalFlips = len(model.Flips()) - flips0
		return res, nil
	}
	return res, fmt.Errorf("bench: no exploitable flip within %d iterations (%d flips landed)",
		maxIters, len(model.Flips())-flips0)
}

// BuildEscalation assembles the whole attack on a fresh machine: flip
// model, demo machine, plan (spray + exclusions + thrash), and the
// eviction-driven hammer for the planned pair. The refresh window is
// reset by hammer construction, so the run starts from zero pressure.
func BuildEscalation(profile flip.Profile, seed int64) (*machine.Machine, *EscalationPlan, *ImplicitHammer, error) {
	model, err := flip.NewModel(profile, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := machine.New(EscalationConfig(model))
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := PlanEscalation(m)
	if err != nil {
		return nil, nil, nil, err
	}
	h, err := NewImplicitHammerForPair(m, plan.Pair, plan.Exclude, evset.Options{})
	if err != nil {
		return nil, nil, nil, err
	}
	return m, plan, h, nil
}

// RunEscalationDemo is the one-call end-to-end demo: build everything
// for the profile and seed, then escalate within the iteration budget.
func RunEscalationDemo(profile flip.Profile, seed int64, maxIters uint64) (EscalationResult, error) {
	m, plan, h, err := BuildEscalation(profile, seed)
	if err != nil {
		return EscalationResult{}, err
	}
	return RunEscalation(m, h, plan, maxIters)
}

// FlipRun summarises a fixed-budget hammer run for the per-module-class
// flip-rate tables (cmd/pthammer-flip).
type FlipRun struct {
	Profile    string
	Iterations uint64
	Windows    uint64
	Flips      int
	// FirstFlipIter is 1-based; 0 means the budget produced no flip.
	FirstFlipIter   uint64
	FirstFlipCycles timing.Cycles
	Cycles          timing.Cycles
}

// FlipsPerMillionIters is the headline rate: flips per 10⁶ hammer
// iterations.
func (r FlipRun) FlipsPerMillionIters() float64 {
	if r.Iterations == 0 {
		return 0
	}
	return float64(r.Flips) * 1e6 / float64(r.Iterations)
}

// RunFlipRate builds the full escalation layout (so the victim row
// holds realistic sprayed-PTE content) and hammers for exactly iters
// iterations, recording when the first flip lands and how many follow.
// Deterministic per (profile, seed, iters).
func RunFlipRate(profile flip.Profile, seed int64, iters uint64) (FlipRun, error) {
	m, _, h, err := BuildEscalation(profile, seed)
	if err != nil {
		return FlipRun{}, err
	}
	model := m.FlipModel()
	// Report the measured run's own deltas: construction already
	// rotated windows before the budget started.
	windows0 := model.Windows()
	flips0 := len(model.Flips())
	start := m.Clock().Now()
	out := FlipRun{Profile: profile.Name, Iterations: iters}
	for it := uint64(0); it < iters; it++ {
		h.HammerOnce(m)
		if out.FirstFlipIter == 0 && len(model.Flips()) > flips0 {
			out.FirstFlipIter = it + 1
			out.FirstFlipCycles = m.Clock().Now() - start
		}
	}
	out.Windows = model.Windows() - windows0
	out.Flips = len(model.Flips()) - flips0
	out.Cycles = m.Clock().Now() - start
	return out, nil
}
