package bench

import (
	"fmt"
	"runtime"
	"testing"

	"pthammer/internal/phys"
)

// TestColocatedAmplify: one attacker core stays below the flip
// threshold, two co-located cores hammering the same pair cross it.
func TestColocatedAmplify(t *testing.T) {
	res, err := RunColocatedAmplify(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoloPressure >= amplifyThreshold {
		t.Fatalf("solo pressure %d at or above threshold %d", res.SoloPressure, uint64(amplifyThreshold))
	}
	if res.DuoPressure <= amplifyThreshold {
		t.Fatalf("duo pressure %d at or below threshold %d", res.DuoPressure, uint64(amplifyThreshold))
	}
	if res.SoloFlips != 0 {
		t.Fatalf("solo attacker flipped %d bits below threshold", res.SoloFlips)
	}
	if res.DuoFlips == 0 {
		t.Fatalf("co-located attackers crossed the threshold (pressure %d) but flipped nothing", res.DuoPressure)
	}
	// Two cores on one pair do strictly more iterations than one, but
	// contention (LLC + bank arbitration, back-invalidations) keeps
	// them under twice the solo count.
	if res.DuoIters <= res.SoloIters || res.DuoIters >= 2*res.SoloIters {
		t.Fatalf("duo iterations %d outside (%d, %d): contention not charged?",
			res.DuoIters, res.SoloIters, 2*res.SoloIters)
	}
}

// TestNoisyNeighbour: the bystander tenant's DRAM churn inflates the
// attacker's iterations enough to push pressure below the threshold
// the quiet arm crosses.
func TestNoisyNeighbour(t *testing.T) {
	res, err := RunNoisyNeighbour(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.QuietPressure <= noisyThreshold || res.NoisyPressure >= noisyThreshold {
		t.Fatalf("threshold %d does not separate quiet %d from noisy %d",
			uint64(noisyThreshold), res.QuietPressure, res.NoisyPressure)
	}
	if res.QuietFlips == 0 {
		t.Fatalf("quiet arm crossed the threshold (pressure %d) but flipped nothing", res.QuietPressure)
	}
	if res.NoisyFlips != 0 {
		t.Fatalf("noisy arm flipped %d bits below threshold", res.NoisyFlips)
	}
	if res.NoisyIters >= res.QuietIters {
		t.Fatalf("bystander cost the attacker nothing: %d iterations noisy vs %d quiet",
			res.NoisyIters, res.QuietIters)
	}
	if res.BystanderLoads == 0 {
		t.Fatal("bystander did not run")
	}
}

// TestCrossTenantEscalation: the full isolation breach on striped
// table pools — attacker-owned rows sandwich the victim tenant's
// tables, a flip remaps a sprayed victim page onto an attacker frame,
// and the attacker's marker is readable through the victim's own
// translation.
func TestCrossTenantEscalation(t *testing.T) {
	res, err := RunCrossTenantEscalation(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Breached {
		t.Fatalf("no breach: %+v", res)
	}
	// The geometry the attack depends on: the victim's table row sits
	// exactly between the attacker's two hammered rows.
	if res.AttackerRows[0]+1 != res.VictimRow || res.AttackerRows[1] != res.VictimRow+1 {
		t.Fatalf("victim row %d not sandwiched by attacker rows %v", res.VictimRow, res.AttackerRows)
	}
	// The hijacked translation crossed the tenant boundary: a sprayed
	// victim page now resolves into the attacker's low region.
	if res.DivergedVA < xtVictimSprayBase {
		t.Fatalf("diverged VA %#x not a sprayed victim page", uint64(res.DivergedVA))
	}
	limit := phys.Addr(uint64(xtAttackerRegions) * (2 << 20))
	if res.HijackedFrame.Addr() >= limit {
		t.Fatalf("hijacked frame %#x outside the attacker's region", uint64(res.HijackedFrame.Addr()))
	}
	if res.HijackedFrame == phys.FrameOf(res.DivergedVA) {
		t.Fatal("diverged VA still resolves to its identity frame")
	}
	if res.Flips == 0 || res.Windows == 0 || res.Iterations == 0 {
		t.Fatalf("implausible run accounting: %+v", res)
	}
}

// TestMultiScenariosDeterministic: a full scenario run — machine
// construction, interleaved hammering, flip bookkeeping — produces a
// bit-identical result for any GOMAXPROCS value.
func TestMultiScenariosDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var want string
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		res, err := RunColocatedAmplify(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%+v", res)
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("GOMAXPROCS=%d result diverged:\n got %s\nwant %s", procs, got, want)
		}
	}
}
