package bench

import (
	"reflect"
	"testing"

	"pthammer/internal/fault"
	"pthammer/internal/flip"
)

func TestBudgetValidate(t *testing.T) {
	cases := []struct {
		name string
		b    Budget
		ok   bool
	}{
		{"default", DefaultBudget(), true},
		{"zero attempt", Budget{MaxWindows: 100}, false},
		{"budget below one attempt", Budget{MaxWindows: 10, AttemptWindows: 64}, false},
		{"overflowing backoff", Budget{MaxWindows: 100, AttemptWindows: 64, MaxBackoff: 40}, false},
		{"tight but legal", Budget{MaxWindows: 64, AttemptWindows: 64}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.b.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate(%+v) = %v, want nil", tc.b, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate(%+v) succeeded, want error", tc.b)
			}
		})
	}
}

func TestResilientMisuseErrors(t *testing.T) {
	if _, err := RunEscalationResilient(flip.ClassA(), 1, nil, Budget{}); err == nil {
		t.Fatal("degenerate budget accepted")
	}
	if _, err := RunEscalationResilient(flip.Profile{}, 1, nil, DefaultBudget()); err == nil {
		t.Fatal("degenerate profile accepted")
	}
	bad := &fault.Config{Class: "cosmic-ray"}
	if _, err := RunEscalationResilient(flip.ClassA(), 1, bad, DefaultBudget()); err == nil {
		t.Fatal("unknown fault class accepted")
	}
}

// TestResilientFaultFreeSucceeds pins the golden path through the
// driver: same machine as the single-shot demo, so the run must
// escalate, carry a complete Result, and never touch a privileged op.
func TestResilientFaultFreeSucceeds(t *testing.T) {
	v, err := RunEscalationResilient(flip.ClassA(), escalationSeed, nil, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Success {
		t.Fatalf("fault-free run failed: %+v", v)
	}
	if v.Phase != PhaseExploit || v.Reason != "" {
		t.Fatalf("success verdict phase/reason = %s/%s", v.Phase, v.Reason)
	}
	if v.Result == nil || v.Result.SecretFrame == 0 || v.Result.CorruptVA == 0 {
		t.Fatalf("success verdict missing escalation result: %+v", v.Result)
	}
	if v.Windows > DefaultBudget().MaxWindows {
		t.Fatalf("windows %d exceed budget %d", v.Windows, DefaultBudget().MaxWindows)
	}
	if v.Result.Windows != v.Windows || v.Result.Iterations != v.Iterations {
		t.Fatalf("result accounting diverges from verdict: %+v vs %+v", v.Result, v)
	}
	if v.Flips == 0 || v.Iterations == 0 {
		t.Fatalf("success without work: %+v", v)
	}
	if v.PrivFlushes != 0 || v.PrivInvlpgs != 0 {
		t.Fatalf("privileged ops moved: %d flushes, %d invlpgs", v.PrivFlushes, v.PrivInvlpgs)
	}
	if v.Faults != (fault.Stats{}) {
		t.Fatalf("fault-free run reports faults: %+v", v.Faults)
	}
}

// TestResilientPairInvalidateReplans is the marquee recovery: the OS
// migrates the attacked table mid-run, the armed row stops flipping,
// and the driver recovers by replanning onto the next-ranked pair —
// still without one privileged operation.
func TestResilientPairInvalidateReplans(t *testing.T) {
	fc := &fault.Config{Class: fault.PairInvalidate}
	v, err := RunEscalationResilient(flip.ClassA(), 2, fc, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Success {
		t.Fatalf("pair-invalidate run did not recover: %+v", v)
	}
	if v.Faults.PairsInvalidated != 1 || v.Faults.AttemptsSuppressed == 0 {
		t.Fatalf("fault did not fire: %+v", v.Faults)
	}
	if v.Replans == 0 {
		t.Fatalf("recovered without replanning: %+v", v)
	}
	if v.PrivFlushes != 0 || v.PrivInvlpgs != 0 {
		t.Fatalf("privileged ops moved: %d flushes, %d invlpgs", v.PrivFlushes, v.PrivInvlpgs)
	}
}

// TestResilientUnrecoverableAborts pins the structured-abort contract:
// a perfect TRR mitigation can never flip, so the driver must walk its
// tiers and return a tiers-exhausted verdict within budget — no hang,
// no panic, no error.
func TestResilientUnrecoverableAborts(t *testing.T) {
	fc := &fault.Config{Class: fault.TRRSuppress, SuppressRate: 1}
	v, err := RunEscalationResilient(flip.ClassA(), escalationSeed, fc, DefaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if v.Success {
		t.Fatal("escalation succeeded under a perfect TRR sampler")
	}
	if v.Reason != ReasonTiersExhausted {
		t.Fatalf("abort reason = %q, want %q", v.Reason, ReasonTiersExhausted)
	}
	if v.Windows > DefaultBudget().MaxWindows {
		t.Fatalf("abort spent %d windows, budget %d", v.Windows, DefaultBudget().MaxWindows)
	}
	if v.Faults.AttemptsSuppressed == 0 {
		t.Fatal("no suppressed attempt recorded — the fault never fired")
	}
	if v.Result != nil {
		t.Fatalf("failed verdict carries a result: %+v", v.Result)
	}
	if v.Flips != 0 {
		t.Fatalf("flips recorded under total suppression: %d", v.Flips)
	}
}

// TestResilientBudgetCeiling: with flips landing but never exploitable
// (total misland), the driver must stop at the window ceiling exactly.
func TestResilientBudgetCeiling(t *testing.T) {
	fc := &fault.Config{Class: fault.FlipMisland, MislandRate: 1}
	budget := Budget{MaxWindows: 200, AttemptWindows: 64, MaxBackoff: 2, MaxRebuilds: 1, MaxReplans: 1}
	v, err := RunEscalationResilient(flip.ClassA(), escalationSeed, fc, budget)
	if err != nil {
		t.Fatal(err)
	}
	if v.Success {
		t.Fatal("escalation succeeded under total misland")
	}
	if v.Windows > budget.MaxWindows {
		t.Fatalf("spent %d windows, ceiling %d", v.Windows, budget.MaxWindows)
	}
	if v.Reason != ReasonBudgetExhausted && v.Reason != ReasonTiersExhausted {
		t.Fatalf("unexpected abort reason %q", v.Reason)
	}
	if v.Faults.FlipsRedirected == 0 {
		t.Fatal("no redirected flip recorded — the fault never fired")
	}
}

// TestResilientDeterministicPerSeed: the verdict — every counter
// included — is a pure function of (profile, seed, fault config,
// budget).
func TestResilientDeterministicPerSeed(t *testing.T) {
	fc := &fault.Config{Class: fault.TRRSuppress}
	run := func() Verdict {
		v, err := RunEscalationResilient(flip.ClassA(), 4, fc, DefaultBudget())
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
