// Multi-tenant scenarios: the three attacks the single-core machine
// cannot express, each driven through machine.MultiMachine's
// deterministic interleaver so every run is bit-identical for any
// GOMAXPROCS value.
//
//   - co-located amplification: two attacker cores in one tenant
//     hammer the same aggressor pair, roughly doubling the victim
//     row's per-window activation pressure — enough to cross a
//     threshold neither core can reach alone.
//   - noisy neighbour: a bystander tenant streaming over the shared
//     LLC evicts the attacker's eviction-set lines, inflating every
//     hammer iteration until per-window pressure falls below the
//     threshold — co-tenancy as an accidental defence.
//   - cross-tenant escalation: tenant page-table pools are striped
//     across adjacent DRAM rows, so an attacker double-sided-hammering
//     its *own* leaf-PTE rows pressures the victim tenant's tables
//     sandwiched between them; a flip in a sprayed victim PTE remaps a
//     victim page onto an attacker-owned frame, and the marker the
//     attacker plants there is readable through the victim's own
//     translation — the isolation breach PAPER.md §II's threat model
//     is about.
package bench

import (
	"fmt"

	"pthammer/internal/dram"
	"pthammer/internal/evset"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Thresholds separating the mt scenarios' outcomes, calibrated on the
// EscalationConfig-scale machine (350 k-cycle refresh window) the way
// EscalationConfig's own threshold was: between the measured per-window
// victim pressures of the two arms of each scenario, so the weaker arm
// can never flip and the stronger arm always can.
const (
	// A solo attacker sustains ~90 activations per window on the demo
	// machine; two co-located attackers on the same pair reach ~180.
	amplifyThreshold = 130
	// Behind a streaming neighbour the attacker's iterations inflate —
	// every bystander DRAM access closes the attacker's open rows and
	// steals the bank's last-accessor slot, so row hits become row
	// conflicts plus arbitration — and peak pressure drops from ~100 to
	// ~82 per window.
	noisyThreshold = 90
	// The cross-tenant attacker pays victim-scan interference too, so
	// its sustainable pressure sits between the noisy and quiet cases.
	crossTenantThreshold = 64
)

// mtWindow is the refresh window all mt scenarios run at — the
// EscalationConfig scale, so one window holds tens of hammer
// iterations instead of tens of thousands.
const mtWindow = 350_000

// mtConfig is the shared multi-tenant machine base: the SandyBridge
// preset at escalation scale with the given hammer threshold and flip
// engine.
func mtConfig(threshold uint64, model *flip.Model) machine.Config {
	cfg := machine.SandyBridge()
	cfg.DRAM.HammerThreshold = threshold
	cfg.DRAM.RefreshWindow = mtWindow
	cfg.FlipModel = model
	return cfg
}

// alignClocks advances every core's clock to the maximum across cores
// — construction work is never evenly distributed — so the measured
// phase starts with all tenants at the same simulated instant, then
// opens a fresh refresh window at it.
func alignClocks(mm *machine.MultiMachine) {
	var max timing.Cycles
	for i := 0; i < mm.NumCores(); i++ {
		if now := mm.Core(i).Clock().Now(); now > max {
			max = now
		}
	}
	for i := 0; i < mm.NumCores(); i++ {
		c := mm.Core(i).Clock()
		c.Advance(max - c.Now())
	}
	mm.Core(0).ResetRefreshWindow()
}

// pairPressure reads the current window's combined activation count of
// the pair's two aggressor rows — the victim row's disturbance
// pressure, sampled live.
func pairPressure(m *machine.Machine, pair ImplicitPair) uint64 {
	return m.DRAM().Activations(pair.Loc1) + m.DRAM().Activations(pair.Loc2)
}

// ColocatedAmplifyResult compares one attacker against two co-located
// attackers hammering the same aggressor pair.
type ColocatedAmplifyResult struct {
	// SoloPressure/DuoPressure are the highest victim-row pressures any
	// refresh window reached in each arm.
	SoloPressure uint64
	DuoPressure  uint64
	// SoloFlips/DuoFlips count disturbance errors: the threshold sits
	// between the arms' pressures, so solo must stay at zero.
	SoloFlips int
	DuoFlips  int
	// SoloIters/DuoIters count completed hammer iterations (both cores
	// combined in the duo arm).
	SoloIters uint64
	DuoIters  uint64
}

// amplifyArm builds a cores-wide machine, points every core's implicit
// hammer at the same aggressor pair, and hammers for windows refresh
// windows. It returns the peak per-window pressure, flip count and
// total iterations.
func amplifyArm(seed int64, cores, windows int) (pressure uint64, flips int, iters uint64, err error) {
	model, err := flip.NewModel(flip.ClassA(), seed)
	if err != nil {
		return 0, 0, 0, err
	}
	mm, err := machine.NewMulti(machine.MultiConfig{
		Config: mtConfig(amplifyThreshold, model),
		Cores:  cores,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	pair, ok := FindImplicitAggressors(mm.Core(0), 256)
	if !ok {
		return 0, 0, 0, fmt.Errorf("bench: no implicit aggressor pair on the amplify machine")
	}
	hammers := make([]*ImplicitHammer, cores)
	for i := range hammers {
		if hammers[i], err = NewImplicitHammerForPair(mm.Core(i), pair, nil, evset.Options{}); err != nil {
			return 0, 0, 0, err
		}
	}
	alignClocks(mm)

	var itersN uint64
	var peak uint64
	budget := timing.Cycles(windows) * mtWindow
	mm.Run(func(i int, m *machine.Machine, yield func()) {
		start := m.Clock().Now()
		for m.Clock().Now()-start < budget {
			hammers[i].HammerOnce(m)
			itersN++
			if p := pairPressure(m, pair); p > peak {
				peak = p
			}
			yield()
		}
	})
	return peak, len(model.Flips()), itersN, nil
}

// RunColocatedAmplify runs both arms of the co-location experiment —
// one attacker core, then two attacker cores sharing the pair — on
// fresh machines with the same seed. Deterministic per seed.
func RunColocatedAmplify(seed int64, windows int) (ColocatedAmplifyResult, error) {
	var res ColocatedAmplifyResult
	var err error
	if res.SoloPressure, res.SoloFlips, res.SoloIters, err = amplifyArm(seed, 1, windows); err != nil {
		return res, err
	}
	if res.DuoPressure, res.DuoFlips, res.DuoIters, err = amplifyArm(seed, 2, windows); err != nil {
		return res, err
	}
	return res, nil
}

// NoisyNeighbourResult compares an attacker next to an idle core
// against the same attacker next to a memory-streaming bystander
// tenant.
type NoisyNeighbourResult struct {
	// QuietPressure/NoisyPressure are the peak per-window victim-row
	// pressures of each arm; the bystander's LLC churn drives the noisy
	// arm's down.
	QuietPressure uint64
	NoisyPressure uint64
	// Flip counts per arm: the threshold sits between the pressures,
	// so only the quiet arm flips.
	QuietFlips int
	NoisyFlips int
	// QuietIters/NoisyIters count the attacker's completed iterations;
	// BystanderLoads the noisy arm's background loads.
	QuietIters     uint64
	NoisyIters     uint64
	BystanderLoads uint64
}

// bystanderBase is where the noisy neighbour streams: its own address
// space, far from the attacker's working set. The bystander walks
// Ways+1 addresses one LLC way-span apart — an LLC-set-aliasing ring —
// so under LRU every load misses the whole cache hierarchy and goes to
// DRAM. That is what actually hurts a DRAM-bound attacker: each
// bystander access closes the open row of its bank and flips the
// bank's last-accessor, so the attacker's next access there pays a row
// conflict plus bank arbitration instead of a row hit.
const bystanderBase = phys.Addr(256 << 20)

// noisyArm runs the attacker for the given number of refresh windows
// next to a bystander that is either streaming (noisy) or idle.
func noisyArm(seed int64, noisy bool, windows int) (pressure uint64, flips int, iters, loads uint64, err error) {
	model, err := flip.NewModel(flip.ClassA(), seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	mm, err := machine.NewMulti(machine.MultiConfig{
		Config:  mtConfig(noisyThreshold, model),
		Cores:   2,
		Tenants: []int{0, 1},
	})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	attacker := mm.Core(0)
	pair, ok := FindImplicitAggressors(attacker, 256)
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("bench: no implicit aggressor pair on the noisy machine")
	}
	h, err := NewImplicitHammerForPair(attacker, pair, nil, evset.Options{})
	if err != nil {
		return 0, 0, 0, 0, err
	}
	// The bystander's ring: Ways+1 lines one way-span apart alias the
	// same LLC set, so cycling them defeats LRU — every pass misses.
	// The pages are premapped so its steady state is pure load traffic,
	// not page-table construction.
	llc := mm.Config().LLC
	waySpan := llc.Sets() * llc.LineBytes
	ring := llc.Ways + 1
	mm.Core(1).Premap(bystanderBase, uint64(ring)*waySpan)
	alignClocks(mm)

	var itersN, loadsN uint64
	var peak uint64
	budget := timing.Cycles(windows) * mtWindow
	done := false
	mm.Run(func(i int, m *machine.Machine, yield func()) {
		if i == 0 {
			start := m.Clock().Now()
			for m.Clock().Now()-start < budget {
				h.HammerOnce(m)
				itersN++
				if p := pairPressure(m, pair); p > peak {
					peak = p
				}
				yield()
			}
			done = true
			return
		}
		if !noisy {
			return
		}
		// The bystander streams until the attacker's budget expires;
		// the done flag is safely visible because the interleaver runs
		// one quantum at a time.
		var k int
		for !done {
			for j := 0; j < 16; j++ {
				m.Load(bystanderBase + phys.Addr(uint64(k)*waySpan))
				loadsN++
				if k++; k == ring {
					k = 0
				}
			}
			yield()
		}
	})
	return peak, len(model.Flips()), itersN, loadsN, nil
}

// RunNoisyNeighbour runs both arms of the noisy-neighbour experiment
// on fresh machines with the same seed. Deterministic per seed.
func RunNoisyNeighbour(seed int64, windows int) (NoisyNeighbourResult, error) {
	var res NoisyNeighbourResult
	var err error
	if res.QuietPressure, res.QuietFlips, res.QuietIters, _, err = noisyArm(seed, false, windows); err != nil {
		return res, err
	}
	if res.NoisyPressure, res.NoisyFlips, res.NoisyIters, res.BystanderLoads, err = noisyArm(seed, true, windows); err != nil {
		return res, err
	}
	return res, nil
}

// Cross-tenant layout: the attacker's own regions, the victim's
// sprayed regions, and the victim's private streaming buffer. All
// three sit below the striped table pools; the victim's spray base has
// physical-address bit 29 set, so the dominant ClassA flip (1→0) of
// that bit in a sprayed PTE lands the translation inside the
// attacker's region.
const (
	xtAttackerRegions = 72
	xtVictimRegions   = 72
	xtVictimSprayBase = phys.Addr(512 << 20)
	xtVictimBufBase   = phys.Addr(448 << 20)
	xtVictimBufBytes  = uint64(16 << 20)
	xtVictimStride    = uint64(phys.FrameSize + 64)
)

// CrossTenantResult records one cross-tenant escalation run.
type CrossTenantResult struct {
	// AttackerRows are the hammered rows (the attacker's own leaf-PTE
	// rows); VictimRow — between them — holds the victim tenant's
	// tables.
	AttackerRows [2]uint64
	VictimRow    uint64
	// Windows and Iterations count the hammer phase; Flips every
	// disturbance error the model produced during it.
	Windows    uint64
	Iterations uint64
	Flips      int
	// DivergedVA is the victim page whose PTE the winning flip
	// corrupted; it now resolves to HijackedFrame inside the attacker's
	// region instead of its identity frame.
	DivergedVA    phys.Addr
	HijackedFrame phys.Frame
	// Breached reports the payoff: the marker the attacker stored
	// through its own identity mapping of HijackedFrame was read back
	// through the victim's corrupted translation.
	Breached bool
}

// xtFindPair picks the attacker's aggressor pair: two of its own
// leaf-PTE lines in the same bank exactly two rows apart. With striped
// tenant pools the row between them belongs to the victim tenant by
// construction; the pair is accepted once that row actually holds at
// least one allocated victim table frame.
func xtFindPair(mm *machine.MultiMachine, attacker *machine.Machine, regions []phys.Addr) (ImplicitPair, bool) {
	geom := mm.DRAM().Config()
	victimFrames := mm.Tables(1).Frames()
	victimHolds := func(loc dram.Location, row uint64) bool {
		for _, f := range victimFrames {
			l := geom.Map(f.Addr())
			if sameBank(l, loc) && l.Row == row {
				return true
			}
		}
		return false
	}
	type cand struct {
		va  phys.Addr
		pte phys.Addr
		loc dram.Location
	}
	var cands []cand
	for _, va := range regions {
		if pte, ok := attacker.PTEAddr(va, 1); ok {
			cands = append(cands, cand{va: va, pte: pte, loc: geom.Map(pte)})
		}
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			lo, hi := cands[i], cands[j]
			if lo.loc.Row > hi.loc.Row {
				lo, hi = hi, lo
			}
			if !sameBank(lo.loc, hi.loc) || hi.loc.Row-lo.loc.Row != 2 {
				continue
			}
			victimRow := lo.loc.Row + 1
			if !victimHolds(lo.loc, victimRow) {
				continue
			}
			return ImplicitPair{
				VA1: lo.va, VA2: hi.va,
				PTE1: lo.pte, PTE2: hi.pte,
				Loc1: lo.loc, Loc2: hi.loc,
				VictimRow: victimRow,
			}, true
		}
	}
	return ImplicitPair{}, false
}

// RunCrossTenantEscalation is the full cross-tenant chain on a
// two-core, two-tenant machine. The victim (core 1) premaps and
// reference-resolves its sprayed regions — never loading them, so its
// TLBs hold no sprayed translation — and streams over a private buffer
// while rescanning the spray once per refresh window. The attacker
// (core 0) double-sided-hammers its own leaf-PTE rows around the
// victim's table row until a flip remaps a sprayed victim page onto an
// attacker-owned frame; the attacker then plants a marker through its
// identity mapping of that frame, and the victim reading the marker
// through its corrupted translation proves the isolation breach.
// Deterministic per seed.
func RunCrossTenantEscalation(seed int64, maxWindows int) (CrossTenantResult, error) {
	var res CrossTenantResult
	model, err := flip.NewModel(flip.ClassA(), seed)
	if err != nil {
		return res, err
	}
	mm, err := machine.NewMulti(machine.MultiConfig{
		Config:  mtConfig(crossTenantThreshold, model),
		Cores:   2,
		Tenants: []int{0, 1},
	})
	if err != nil {
		return res, err
	}
	attacker, victim := mm.Core(0), mm.Core(1)
	span := pagetable.Span(2)

	// Attacker surface: touch its regions so their leaf tables populate
	// the attacker pool's striped rows.
	regions := make([]phys.Addr, 0, xtAttackerRegions)
	for k := 0; k < xtAttackerRegions; k++ {
		va := phys.Addr(uint64(k) * span)
		attacker.Load(va)
		regions = append(regions, va)
	}
	// Victim surface: premap the spray (tables fill with present PTEs,
	// nothing enters the victim's TLBs) and the private buffer.
	spray := make([]phys.Addr, 0, xtVictimRegions*int(span/phys.FrameSize))
	for k := 0; k < xtVictimRegions; k++ {
		base := xtVictimSprayBase + phys.Addr(uint64(k)*span)
		victim.Premap(base, span)
		spray = regionPages(base, spray)
	}
	victim.Premap(xtVictimBufBase, xtVictimBufBytes)

	pair, ok := xtFindPair(mm, attacker, regions)
	if !ok {
		return res, fmt.Errorf("bench: no cross-tenant sandwich pair among %d attacker regions", xtAttackerRegions)
	}
	res.AttackerRows = [2]uint64{pair.Loc1.Row, pair.Loc2.Row}
	res.VictimRow = pair.VictimRow
	// Keep eviction streams away from pages whose leaf PTs share the
	// hammered bank's row neighbourhood, as the single-core escalation
	// does.
	geom := mm.DRAM().Config()
	var exclude []phys.Addr
	for _, va := range regions {
		if pte, ok := attacker.PTEAddr(va, 1); ok {
			loc := geom.Map(pte)
			if sameBank(loc, pair.Loc1) && loc.Row+1 >= pair.Loc1.Row && loc.Row <= pair.Loc2.Row+1 {
				exclude = regionPages(va, exclude)
			}
		}
	}
	h, err := NewImplicitHammerForPair(attacker, pair, exclude, evset.Options{})
	if err != nil {
		return res, err
	}
	alignClocks(mm)

	windows0 := model.Windows()
	flips0 := len(model.Flips())
	budget := timing.Cycles(maxWindows) * mtWindow
	attackerLimit := phys.Addr(uint64(xtAttackerRegions) * span)

	done, found := false, false
	var divergedVA phys.Addr
	var hijacked phys.Frame
	mm.Run(func(i int, m *machine.Machine, yield func()) {
		if i == 0 {
			start := m.Clock().Now()
			for !found && m.Clock().Now()-start < budget {
				h.HammerOnce(m)
				res.Iterations++
				yield()
			}
			done = true
			return
		}
		// Victim: stream the private buffer, rescanning the spray once
		// per refresh window (reference resolves are uncharged — the
		// victim is its own process scanning its own mappings; the
		// timed confirmation below is what a real victim's fault
		// handler would observe).
		var off uint64
		nextScan := m.Clock().Now() + mtWindow
		for !done {
			for k := 0; k < 16; k++ {
				m.Load(xtVictimBufBase + phys.Addr(off))
				off += xtVictimStride
				if off+8 >= xtVictimBufBytes {
					off = 0
				}
			}
			if m.Clock().Now() >= nextScan {
				for m.Clock().Now() >= nextScan {
					nextScan += mtWindow
				}
				for _, s := range spray {
					f, ok := mm.Tables(1).Resolve(s)
					if !ok || f == phys.FrameOf(s) || f.Addr() >= attackerLimit {
						continue
					}
					// Timed confirmation: the spray never entered the
					// TLBs, so this walk reads the corrupted tables.
					if got, _ := m.Translate(s); got != f {
						continue
					}
					divergedVA, hijacked, found = s, f, true
					return
				}
			}
			yield()
		}
	})
	res.Windows = model.Windows() - windows0
	res.Flips = len(model.Flips()) - flips0
	if !found {
		return res, fmt.Errorf("bench: no exploitable cross-tenant flip within %d windows (%d flips landed)",
			maxWindows, res.Flips)
	}
	res.DivergedVA = divergedVA
	res.HijackedFrame = hijacked

	// The breach: the attacker owns HijackedFrame's identity mapping,
	// so a plain store plants the marker; the victim reads it back
	// through its own (corrupted) translation of DivergedVA.
	attacker.Store64(hijacked.Addr(), escalationMarker)
	vf, _ := victim.Translate(divergedVA)
	res.Breached = vf == hijacked && mm.Memory().Read64(vf.Addr()) == escalationMarker
	return res, nil
}
