// Package bench defines the repository's standard performance
// scenarios as testing.B bodies. They are the single source of truth
// shared by the in-tree benchmarks (internal/machine) and the
// cmd/pthammer-bench reporter, so CI's smoke runs and the committed
// BENCH_NNNN.json baselines can never measure different loops.
package bench

import (
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/evset"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/mem"
	"pthammer/internal/payload"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/sweep"
	"pthammer/internal/timing"
)

// Scenario is one standard measurement: a name, the number of
// simulated loads a single benchmark op performs (for loads/sec
// reporting; 0 = not load-shaped), and the benchmark body.
type Scenario struct {
	Name       string
	LoadsPerOp int
	// SteadyState marks scenarios whose measured loop must not
	// allocate: the CI regression gate (pthammer-bench -check) fails
	// them on any allocs/op and on >25% ns/op regressions against the
	// latest committed baseline.
	SteadyState bool
	Run         func(b *testing.B)
}

func newMachine() *machine.Machine {
	return machine.MustNew(machine.SandyBridge())
}

// Scenarios returns the standard list:
//
//	warm-load            all-hit fast path (dTLB + L1 every iteration)
//	flush-hammer-loop    clflush two same-bank aggressors, load them back
//	implicit-hammer-loop flush-free PThammer: eviction-set walks + loads,
//	                     the walker's PTE fetches do the hammering; runs
//	                     the compiled payload executor
//	implicit-hammer-closure the same iteration through the closure path
//	                     (HammerOnce), kept measured as the reference the
//	                     difftest harness compares the executor against
//	implicit-hammer-priv privileged baseline: invlpg + clflush + load,
//	                     as a compiled payload program
//	pte-flip-escalation  full attack: hammer until a PTE flips, detect,
//	                     rewrite own PTEs through the corrupted mapping
//	resilient-escalation budgeted driver recovering from a mid-run
//	                     aggressor-pair invalidation via replanning
//	mt-colocated-amplify two co-located attacker cores double the victim
//	                     row's pressure past a threshold one core cannot reach
//	mt-noisy-neighbour   a streaming bystander tenant dilutes the attacker's
//	                     pressure below the threshold (co-tenancy as defence)
//	mt-cross-tenant-escalation striped table pools: hammering the attacker's
//	                     own PTE rows flips a victim tenant's PTE, mapping a
//	                     victim page onto an attacker frame
//	cold-load-sweep      stride past cache and TLB reach, full-miss loads
//	tlb-thrash           page stride past sTLB reach, walk-heavy loads
//	loadn-batch-64       batched LoadN over a reused result buffer
//	dram-recycle-reset   cohort-turnover recycle of a large module with a
//	                     small touched set; pins the O(banks + touched)
//	                     epoch-lazy reset
//	sweep-engine         parallel Figure 5/6 padding sweep, end to end
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "warm-load",
			LoadsPerOp:  1,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				m.Load(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Load(0)
				}
			},
		},
		{
			// The paper's explicit hammer primitive: clflush two
			// same-bank different-row aggressors (rows 1 and 3, the
			// double-sided pair around victim row 2), then load them
			// back so every load goes to DRAM and activates a row.
			// This is the loop Algorithm 1 and the hammer phase
			// multiply by millions.
			Name:        "flush-hammer-loop",
			LoadsPerOp:  2,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				geom := m.DRAM().Config()
				a1 := geom.AddrOf(dram.Location{Row: 1})
				a2 := geom.AddrOf(dram.Location{Row: 3})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Flush(a1)
					m.Flush(a2)
					m.Load(a1)
					m.Load(a2)
				}
			},
		},
		{
			// PThammer's actual attack loop: walk the measured TLB and
			// leaf-PTE LLC eviction sets, then load — the page walk's
			// implicit KindPTEFetch accesses are the only thing reaching
			// the aggressor rows, and no privileged operation is issued.
			// LoadsPerOp counts the two hammer probes, not the eviction
			// streams, so loads/sec reads as hammer activations per
			// second and stays comparable with the privileged baseline.
			Name:        "implicit-hammer-loop",
			LoadsPerOp:  2,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				h, err := NewImplicitHammer(m, 256, evset.Options{})
				if err != nil {
					b.Fatal(err)
				}
				prog, err := CompileHammer(m, h)
				if err != nil {
					b.Fatal(err)
				}
				ex := payload.MustExecutor(prog)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ex.Run(m)
				}
			},
		},
		{
			// The closure reference for the compiled loop above: the same
			// iteration dispatched through the eviction-set objects.
			// Measured so a divergence between the two engines shows up in
			// the baselines, not just in difftest.
			Name:        "implicit-hammer-closure",
			LoadsPerOp:  2,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				h, err := NewImplicitHammer(m, 256, evset.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					h.HammerOnce(m)
				}
			},
		},
		{
			// The privileged upper bound the eviction-driven loop chases:
			// same pair, but invlpg and clflush instead of the streams.
			Name:        "implicit-hammer-priv",
			LoadsPerOp:  2,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				pair, ok := FindImplicitAggressors(m, 256)
				if !ok {
					b.Fatal("no implicit aggressor pair in geometry")
				}
				prog, err := CompilePrivileged(m, pair)
				if err != nil {
					b.Fatal(err)
				}
				ex := payload.MustExecutor(prog)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					ex.Run(m)
				}
			},
		},
		{
			// The paper's end-to-end payoff, measured as one op: build
			// the spray layout and eviction sets on a fresh machine,
			// hammer across refresh windows (rescanning the sprayed
			// translations once per window) until the class-A flip
			// model corrupts a sprayed PTE exploitably, detect the
			// corruption from user space, and rewrite a PTE through it.
			// Not steady-state (each op constructs a whole attack) and
			// not load-shaped; the figure of merit is wall-clock per
			// escalation.
			Name: "pte-flip-escalation",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := RunEscalationDemo(flip.ClassA(), 1, 500_000); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// The robustness tentpole measured as one op: the budgeted
			// escalation driver recovering from a mid-run aggressor-pair
			// invalidation by replanning onto the next-ranked pair. Seed
			// 2 is the fixture whose fault actually fires (the armed row
			// goes dead and tier 2 engages). Not steady-state: each op
			// builds a whole machine and attack.
			Name: "resilient-escalation",
			Run: func(b *testing.B) {
				fc := &fault.Config{Class: fault.PairInvalidate}
				for i := 0; i < b.N; i++ {
					v, err := RunEscalationResilient(flip.ClassA(), 2, fc, DefaultBudget())
					if err != nil {
						b.Fatal(err)
					}
					if !v.Success || v.Replans == 0 {
						b.Fatalf("driver did not recover via replan: %+v", v)
					}
				}
			},
		},
		{
			// Two co-located attacker cores hammering the same aggressor
			// pair under the deterministic interleaver: the solo arm must
			// stay below the flip threshold and the duo arm must cross
			// it. Not steady-state: each op builds two multi-core
			// machines and runs both arms.
			Name: "mt-colocated-amplify",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunColocatedAmplify(4, 4)
					if err != nil {
						b.Fatal(err)
					}
					if res.SoloFlips != 0 || res.DuoFlips == 0 {
						b.Fatalf("co-location did not gate the flips: %+v", res)
					}
				}
			},
		},
		{
			// The same attacker next to a memory-streaming bystander
			// tenant: the bystander's DRAM churn must dilute the
			// attacker's pressure below the threshold that the quiet arm
			// crosses.
			Name: "mt-noisy-neighbour",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunNoisyNeighbour(4, 4)
					if err != nil {
						b.Fatal(err)
					}
					if res.QuietFlips == 0 || res.NoisyFlips != 0 {
						b.Fatalf("bystander did not dilute the flips: %+v", res)
					}
				}
			},
		},
		{
			// The full cross-tenant chain on striped table pools: the
			// attacker hammers its own leaf-PTE rows, a flip lands in the
			// victim tenant's sandwiched table row, and a victim page
			// remaps onto an attacker-owned frame. Seed 1 breaches in ~23
			// refresh windows.
			Name: "mt-cross-tenant-escalation",
			Run: func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := RunCrossTenantEscalation(1, 60)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Breached {
						b.Fatalf("no cross-tenant breach: %+v", res)
					}
				}
			},
		},
		{
			// Stride one line past a page so every iteration misses the
			// caches and the TLB; the address space is premapped so the
			// measured loop walks tables without demand-allocating them.
			Name:        "cold-load-sweep",
			LoadsPerOp:  1,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				size := m.Memory().Size()
				m.Premap(0, size)
				var a phys.Addr
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Load(a)
					a += 4096 + 64
					if uint64(a) >= size {
						a = 0
					}
				}
			},
		},
		{
			// Whole-page stride across twice the sTLB reach, so
			// translations keep walking while data stays cached.
			Name:        "tlb-thrash",
			LoadsPerOp:  1,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				pages := uint64(m.Config().TLB.L2Entries * 2)
				m.Premap(0, pages*phys.FrameSize)
				var p uint64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Load(phys.Addr(p * phys.FrameSize))
					p++
					if p >= pages {
						p = 0
					}
				}
			},
		},
		{
			Name:        "loadn-batch-64",
			LoadsPerOp:  64,
			SteadyState: true,
			Run: func(b *testing.B) {
				m := newMachine()
				addrs := make([]phys.Addr, 64)
				for i := range addrs {
					addrs[i] = phys.Addr(i * 4096)
				}
				buf := make([]mem.Result, 0, len(addrs))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf = m.LoadN(addrs, buf[:0])
				}
			},
		},
		{
			// The Reset/Recycle cost pin: one cohort slice's worth of
			// DRAM traffic (64 touched rows) followed by a recycle on a
			// 2^16-row module. Port.Reset is contractually
			// O(banks + touched rows); an implementation that scrubbed
			// the per-row ACT arrays instead of epoch-bumping would be
			// orders of magnitude slower here and trip the gate, which
			// is how cohort turnover is kept from silently reintroducing
			// an O(rows) scrub.
			Name:        "dram-recycle-reset",
			LoadsPerOp:  64,
			SteadyState: true,
			Run: func(b *testing.B) {
				cfg := dram.Config{
					Channels: 1, RanksPerChannel: 1, BanksPerRank: 8,
					Rows: 1 << 16, RowBytes: 8192,
					HammerThreshold: 100,
				}
				clock := timing.MustNewClock(3_400_000_000)
				d, err := dram.New(cfg, clock, &perf.Counters{}, timing.DefaultLatencies())
				if err != nil {
					b.Fatal(err)
				}
				addrs := make([]mem.Access, 64)
				for r := range addrs {
					addrs[r] = mem.Access{Addr: cfg.AddrOf(dram.Location{Row: uint64(r) * 11})}
				}
				// Warm the per-bank touched-slice capacity so the
				// measured loop is allocation-free.
				for _, a := range addrs {
					d.Lookup(a)
				}
				d.Reset()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, a := range addrs {
						d.Lookup(a)
					}
					d.Reset()
				}
			},
		},
		{
			Name: "sweep-engine",
			// 11 paddings × 40 reps × 8 addrs.
			LoadsPerOp: 11 * 40 * 8,
			Run: func(b *testing.B) {
				cfg := machine.SandyBridge()
				cfg.NoiseProb = 0.1
				cfg.NoiseMin = 100
				cfg.NoiseMax = 500
				spec := sweep.Spec{
					Machine:      cfg,
					Addrs:        []phys.Addr{0, 0x1000, 0x2000, 0x41000, 0x82000, 0x200000, 0x5000, 0x6000},
					PadMin:       0,
					PadMax:       100,
					PadStep:      10,
					Reps:         40,
					FlushBetween: true,
					BaseSeed:     42,
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sweep.Run(spec); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
	}
}
