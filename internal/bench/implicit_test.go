package bench

import (
	"testing"

	"pthammer/internal/evset"
	"pthammer/internal/machine"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// hammerConfig lowers the threshold and disables refresh so a short
// loop can cross it.
func hammerConfig() machine.Config {
	cfg := machine.SandyBridge()
	cfg.DRAM.HammerThreshold = 64
	cfg.DRAM.RefreshWindow = 0
	return cfg
}

// TestPrivilegedHammerReachesThreshold is the privileged baseline: a
// invlpg-clflush-load loop whose only DRAM traffic to the aggressor
// rows is the page walker's KindPTEFetch accesses drives the
// page-table victim row past the hammer threshold, while the shared
// clock, the per-access Results, and the perf counters stay in exact
// agreement.
func TestPrivilegedHammerReachesThreshold(t *testing.T) {
	m := machine.MustNew(hammerConfig())
	geom := m.DRAM().Config()

	pair, ok := FindImplicitAggressors(m, 256)
	if !ok {
		t.Fatal("no implicit aggressor pair found")
	}
	if pair.Loc1.Bank != pair.Loc2.Bank || pair.Loc2.Row-pair.Loc1.Row != 2 {
		t.Fatalf("pair not double-sided same-bank: %+v / %+v", pair.Loc1, pair.Loc2)
	}
	// The attacker's explicit accesses (the data loads) must not touch
	// the aggressor rows themselves — that is the whole point.
	for _, loc := range []struct {
		name string
		row  uint64
		bank int
	}{
		{"va1 data", geom.Map(pair.VA1).Row, geom.Map(pair.VA1).Bank},
		{"va2 data", geom.Map(pair.VA2).Row, geom.Map(pair.VA2).Bank},
	} {
		if loc.bank == pair.Loc1.Bank && (loc.row == pair.Loc1.Row || loc.row == pair.Loc2.Row) {
			t.Fatalf("%s lands in an aggressor row", loc.name)
		}
	}

	const rounds = 40
	start := m.Clock().Now()
	snap := m.Counters().Snapshot()
	var sum timing.Cycles
	for i := 0; i < rounds; i++ {
		m.InvalidatePage(pair.VA1)
		sum += m.Flush(pair.PTE1)
		sum += m.Load(pair.VA1).Latency
		m.InvalidatePage(pair.VA2)
		sum += m.Flush(pair.PTE2)
		sum += m.Load(pair.VA2).Latency
	}

	// Clock/Result agreement end-to-end with the real walker: every
	// cycle the loop charged is accounted for by a returned latency.
	if got := m.Clock().Now() - start; got != sum {
		t.Fatalf("clock delta %d != latency sum %d", got, sum)
	}
	// Every load walked, and every walk's leaf PTE came from DRAM —
	// the implicit accesses that do the hammering.
	if got := snap.Delta(m.Counters(), perf.DTLBLoadMissesWalk); got != 2*rounds {
		t.Fatalf("walks = %d, want %d", got, 2*rounds)
	}
	if got := snap.Delta(m.Counters(), perf.L1PTEMemoryFetch); got != 2*rounds {
		t.Fatalf("L1 PTE memory fetches = %d, want %d", got, 2*rounds)
	}

	// The sandwiched page-table row is hammer-eligible, and every
	// reported victim lives in the PTE bank — none of them is adjacent
	// to anything the attacker loaded explicitly.
	stats := m.HammerStats()
	found := false
	for _, v := range stats.Victims {
		if v.Channel == pair.Loc1.Channel && v.Rank == pair.Loc1.Rank &&
			v.Bank == pair.Loc1.Bank && v.Row == pair.VictimRow {
			found = true
			if v.Pressure < 2*rounds {
				t.Fatalf("victim pressure = %d, want ≥ %d", v.Pressure, 2*rounds)
			}
		}
	}
	if !found {
		t.Fatalf("PTE victim row %d not in victims: %+v", pair.VictimRow, stats.Victims)
	}
}

// TestEvictionHammerReachesThreshold is the PR's acceptance test: the
// flush-free loop — TLB and LLC eviction-set walks plus target loads,
// nothing else — drives the PTE victim row past the hammer threshold
// with zero privileged operations (counter-asserted across both
// construction and hammering), while clock, Results and PMCs agree.
func TestEvictionHammerReachesThreshold(t *testing.T) {
	m := machine.MustNew(hammerConfig())
	flushes0, invlpgs0 := m.PrivilegedOps()

	h, err := NewImplicitHammer(m, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pair := h.Pair
	if pair.Loc1.Bank != pair.Loc2.Bank || pair.Loc2.Row-pair.Loc1.Row != 2 {
		t.Fatalf("pair not double-sided same-bank: %+v / %+v", pair.Loc1, pair.Loc2)
	}
	const rounds = 40
	start := m.Clock().Now()
	snap := m.Counters().Snapshot()
	var sum timing.Cycles
	for i := 0; i < rounds; i++ {
		it := h.HammerOnce(m)
		sum += it.Cycles
		if !it.Walked {
			t.Fatalf("round %d: a target load did not walk — TLB eviction set failed", i)
		}
		if !it.LeafFromDRAM {
			t.Fatalf("round %d: a leaf PTE was served from cache — LLC eviction set failed", i)
		}
	}

	// Clock/Result agreement: every cycle the eviction-driven loop
	// charged is accounted for by a returned latency.
	if got := m.Clock().Now() - start; got != sum {
		t.Fatalf("clock delta %d != latency sum %d", got, sum)
	}
	// PMC agreement: at least the 2·rounds target walks fetched a leaf
	// PTE from DRAM (eviction-stream loads may add walks of their own,
	// but each round's two probes were individually PMC-confirmed).
	if got := snap.Delta(m.Counters(), perf.L1PTEMemoryFetch); got < 2*rounds {
		t.Fatalf("L1 PTE memory fetches = %d, want ≥ %d", got, 2*rounds)
	}
	if got := snap.Delta(m.Counters(), perf.DTLBLoadMissesWalk); got < 2*rounds {
		t.Fatalf("walks = %d, want ≥ %d", got, 2*rounds)
	}

	// The sandwiched page-table row is hammer-eligible with at least
	// one activation per probe.
	stats := m.HammerStats()
	found := false
	for _, v := range stats.Victims {
		if v.Channel == pair.Loc1.Channel && v.Rank == pair.Loc1.Rank &&
			v.Bank == pair.Loc1.Bank && v.Row == pair.VictimRow {
			found = true
			if v.Pressure < 2*rounds {
				t.Fatalf("victim pressure = %d, want ≥ %d", v.Pressure, 2*rounds)
			}
		}
	}
	if !found {
		t.Fatalf("PTE victim row %d not in victims: %+v", pair.VictimRow, stats.Victims)
	}

	// The whole attack — eviction-set construction and the hammer loop —
	// used no privileged operation.
	if f, inv := m.PrivilegedOps(); f != flushes0 || inv != invlpgs0 {
		t.Fatalf("privileged ops used: flushes %d→%d, invlpg %d→%d", flushes0, f, invlpgs0, inv)
	}
}

// TestEvictionStreamsAvoidAggressorPages: the exclusion plumbing keeps
// both aggressor pages out of all four streams, so the loop's only
// explicit accesses to them are the timed probes.
func TestEvictionStreamsAvoidAggressorPages(t *testing.T) {
	m := machine.MustNew(hammerConfig())
	h, err := NewImplicitHammer(m, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, stream := range map[string][]phys.Addr{
		"tlb1": h.TLB1.Pages, "tlb2": h.TLB2.Pages,
		"llc1": h.LLC1.Addrs, "llc2": h.LLC2.Addrs,
	} {
		for _, a := range stream {
			f := phys.FrameOf(a)
			if f == phys.FrameOf(h.Pair.VA1) || f == phys.FrameOf(h.Pair.VA2) {
				t.Fatalf("%s stream contains aggressor page %#x", name, uint64(a))
			}
		}
	}
}

// TestImplicitHammerSteadyStateZeroAllocs pins the hot-path contract
// for the eviction-driven loop: once built and warm, a full iteration —
// four stream walks and two probes — allocates nothing.
func TestImplicitHammerSteadyStateZeroAllocs(t *testing.T) {
	m := machine.MustNew(machine.SandyBridge())
	h, err := NewImplicitHammer(m, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		h.HammerOnce(m)
	}
	if allocs := testing.AllocsPerRun(1000, func() { h.HammerOnce(m) }); allocs != 0 {
		t.Fatalf("steady-state implicit hammer allocates %.1f per iteration, want 0", allocs)
	}
}

// TestPrivilegedHammerSteadyStateZeroAllocs keeps the same contract on
// the privileged baseline loop.
func TestPrivilegedHammerSteadyStateZeroAllocs(t *testing.T) {
	m := machine.MustNew(machine.SandyBridge())
	pair, ok := FindImplicitAggressors(m, 256)
	if !ok {
		t.Fatal("no implicit aggressor pair found")
	}
	for i := 0; i < 64; i++ {
		pair.HammerOncePrivileged(m)
	}
	if allocs := testing.AllocsPerRun(1000, func() { pair.HammerOncePrivileged(m) }); allocs != 0 {
		t.Fatalf("steady-state privileged hammer allocates %.1f per iteration, want 0", allocs)
	}
}
