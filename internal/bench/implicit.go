// The implicit-hammer primitive: PThammer's core loop drives DRAM row
// activations without ever loading the aggressor rows explicitly. Each
// iteration evicts one page's translation (TLB + paging-structure
// caches) and the cache line holding its leaf PTE, then loads the
// page — the hardware walk's KindPTEFetch to the PT frame is what
// reaches DRAM. Alternating two pages whose PTEs sit in the same bank
// two rows apart turns those fetches into row conflicts that hammer
// the sandwiched victim row, which holds page-table bytes.
package bench

import (
	"pthammer/internal/dram"
	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
)

// ImplicitPair is a double-sided aggressor pair for implicit
// hammering: two virtual addresses whose leaf PTEs live in the same
// DRAM bank, two rows apart, so the walker's PTE fetches sandwich the
// row between them.
type ImplicitPair struct {
	VA1, VA2   phys.Addr // the pages the attacker loads
	PTE1, PTE2 phys.Addr // physical addresses of their leaf PTEs
	Loc1, Loc2 dram.Location
	// VictimRow is the page-table row between the two PTE rows.
	VictimRow uint64
}

// FindImplicitAggressors demand-allocates page tables by touching up
// to maxRegions distinct 2 MiB regions, then scans the resulting PT
// frames for a pair of leaf PTEs in the same bank exactly two rows
// apart. ok is false when the geometry yields no such pair within the
// touched regions.
func FindImplicitAggressors(m *machine.Machine, maxRegions int) (ImplicitPair, bool) {
	span := pagetable.Span(2) // one PT covers a 2 MiB region
	size := m.Memory().Size()
	geom := m.DRAM().Config()

	type cand struct {
		va  phys.Addr
		pte phys.Addr
		loc dram.Location
	}
	var cands []cand
	for k := 0; k < maxRegions && uint64(k)*span < size; k++ {
		va := phys.Addr(uint64(k) * span)
		m.Load(va) // demand-allocate the region's page-table path
		pte, ok := m.PTEAddr(va, 1)
		if !ok {
			continue
		}
		cands = append(cands, cand{va: va, pte: pte, loc: geom.Map(pte)})
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			if a.loc.Channel != b.loc.Channel || a.loc.Rank != b.loc.Rank || a.loc.Bank != b.loc.Bank {
				continue
			}
			lo, hi := a, b
			if lo.loc.Row > hi.loc.Row {
				lo, hi = hi, lo
			}
			if hi.loc.Row-lo.loc.Row != 2 {
				continue
			}
			return ImplicitPair{
				VA1: lo.va, VA2: hi.va,
				PTE1: lo.pte, PTE2: hi.pte,
				Loc1: lo.loc, Loc2: hi.loc,
				VictimRow: lo.loc.Row + 1,
			}, true
		}
	}
	return ImplicitPair{}, false
}

// HammerOnce runs one iteration of the implicit-hammer loop on the
// pair: per side, evict the translation (simulated invlpg standing in
// for the paper's TLB eviction set), flush the PTE's cache line
// (standing in for the LLC eviction set), and load the page. The
// only DRAM rows this touches after warm-up are the PTE rows.
func (p ImplicitPair) HammerOnce(m *machine.Machine) {
	m.InvalidatePage(p.VA1)
	m.Flush(p.PTE1)
	m.Load(p.VA1)
	m.InvalidatePage(p.VA2)
	m.Flush(p.PTE2)
	m.Load(p.VA2)
}
