// The implicit-hammer primitive: PThammer's core loop drives DRAM row
// activations without ever loading the aggressor rows explicitly. Each
// iteration evicts one page's translation (TLB + paging-structure
// caches) and the cache line holding its leaf PTE, then loads the
// page — the hardware walk's KindPTEFetch to the PT frame is what
// reaches DRAM. Alternating two pages whose PTEs sit in the same bank
// two rows apart turns those fetches into row conflicts that hammer
// the sandwiched victim row, which holds page-table bytes.
//
// Two variants share the aggressor-pair discovery: the privileged
// baseline (invlpg + clflush, what a kernel could do directly) and the
// paper's actual attack, ImplicitHammer, which drives the same walk
// traffic purely through measured eviction sets (internal/evset) — no
// privileged operation anywhere in the loop.
package bench

import (
	"fmt"

	"pthammer/internal/dram"
	"pthammer/internal/evset"
	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// ImplicitPair is a double-sided aggressor pair for implicit
// hammering: two virtual addresses whose leaf PTEs live in the same
// DRAM bank, two rows apart, so the walker's PTE fetches sandwich the
// row between them.
type ImplicitPair struct {
	VA1, VA2   phys.Addr // the pages the attacker loads
	PTE1, PTE2 phys.Addr // physical addresses of their leaf PTEs
	Loc1, Loc2 dram.Location
	// VictimRow is the page-table row between the two PTE rows.
	VictimRow uint64
}

// FindImplicitAggressors demand-allocates page tables by touching up
// to maxRegions distinct 2 MiB regions, then scans the resulting PT
// frames for a pair of leaf PTEs in the same bank exactly two rows
// apart. ok is false when the geometry yields no such pair within the
// touched regions. The demand-allocation loads are construction
// traffic, not attack traffic, so the refresh window is reset before
// returning: the caller's first measured window starts from zero
// pressure.
func FindImplicitAggressors(m *machine.Machine, maxRegions int) (ImplicitPair, bool) {
	defer m.ResetRefreshWindow()
	span := pagetable.Span(2) // one PT covers a 2 MiB region
	size := m.Memory().Size()
	geom := m.DRAM().Config()

	type cand struct {
		va  phys.Addr
		pte phys.Addr
		loc dram.Location
	}
	var cands []cand
	for k := 0; k < maxRegions && uint64(k)*span < size; k++ {
		va := phys.Addr(uint64(k) * span)
		m.Load(va) // demand-allocate the region's page-table path
		pte, ok := m.PTEAddr(va, 1)
		if !ok {
			continue
		}
		cands = append(cands, cand{va: va, pte: pte, loc: geom.Map(pte)})
	}
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			if a.loc.Channel != b.loc.Channel || a.loc.Rank != b.loc.Rank || a.loc.Bank != b.loc.Bank {
				continue
			}
			lo, hi := a, b
			if lo.loc.Row > hi.loc.Row {
				lo, hi = hi, lo
			}
			if hi.loc.Row-lo.loc.Row != 2 {
				continue
			}
			return ImplicitPair{
				VA1: lo.va, VA2: hi.va,
				PTE1: lo.pte, PTE2: hi.pte,
				Loc1: lo.loc, Loc2: hi.loc,
				VictimRow: lo.loc.Row + 1,
			}, true
		}
	}
	return ImplicitPair{}, false
}

// HammerOncePrivileged runs one iteration of the implicit-hammer loop
// with kernel privileges: per side, invlpg the translation, clflush
// the PTE's cache line, and load the page. It is the upper-bound
// baseline the eviction-driven loop is compared against — the paper's
// attacker cannot execute either instruction, which is exactly what
// ImplicitHammer removes.
func (p ImplicitPair) HammerOncePrivileged(m *machine.Machine) {
	m.InvalidatePage(p.VA1)
	m.Flush(p.PTE1)
	m.Load(p.VA1)
	m.InvalidatePage(p.VA2)
	m.Flush(p.PTE2)
	m.Load(p.VA2)
}

// ImplicitHammer is the flush-free implicit-hammer primitive: the
// aggressor pair plus the measured eviction sets standing in for
// invlpg (TLB sets) and clflush (leaf-PTE LLC sets). Everything it
// does at hammer time is a plain demand load.
type ImplicitHammer struct {
	Pair       ImplicitPair
	TLB1, TLB2 *evset.TLBSet
	LLC1, LLC2 *evset.LLCSet
}

// HammerIter summarises one eviction-driven hammer iteration for the
// acceptance checks: the cycles it charged and whether both target
// loads behaved like implicit hammer accesses (full walk, leaf PTE
// from DRAM). The struct return keeps the hot loop allocation-free.
type HammerIter struct {
	Cycles timing.Cycles
	// Walked is true when both target loads missed all TLB levels.
	Walked bool
	// LeafFromDRAM is true when both walks fetched their leaf PTE from
	// DRAM — the accesses that activate the aggressor rows.
	LeafFromDRAM bool
}

// NewImplicitHammer finds an aggressor pair and builds the four
// eviction sets, excluding each aggressor page from the other side's
// candidate streams so no prime ever touches a target. Construction
// issues only loads and timed probes.
func NewImplicitHammer(m *machine.Machine, maxRegions int, opt evset.Options) (*ImplicitHammer, error) {
	pair, ok := FindImplicitAggressors(m, maxRegions)
	if !ok {
		return nil, fmt.Errorf("bench: no implicit aggressor pair within %d regions", maxRegions)
	}
	return NewImplicitHammerForPair(m, pair, nil, opt)
}

// NewImplicitHammerForPair builds the four eviction sets for an
// already-chosen aggressor pair. Both aggressor pages plus every
// address in extraExclude are kept out of all candidate streams — the
// escalation demo passes the pages mapped by hammer-adjacent page
// tables, whose translations a flip may corrupt, so the steady-state
// loop never loads through a corruptible PTE. Construction traffic
// (demand-allocation and build probes for the four sets) pollutes the
// activation window, so the refresh window is reset before returning:
// a freshly built hammer starts from zero pressure, which
// TestImplicitHammerStartsFromZeroPressure pins.
func NewImplicitHammerForPair(m *machine.Machine, pair ImplicitPair, extraExclude []phys.Addr, opt evset.Options) (*ImplicitHammer, error) {
	excl := append([]phys.Addr{pair.VA1, pair.VA2}, extraExclude...)
	tlb1, err := evset.BuildTLB(m, pair.VA1, excl, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: TLB set for VA1: %w", err)
	}
	tlb2, err := evset.BuildTLB(m, pair.VA2, excl, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: TLB set for VA2: %w", err)
	}
	llc1, err := evset.BuildLLCPTE(m, pair.VA1, tlb1, excl, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: LLC set for PTE1: %w", err)
	}
	llc2, err := evset.BuildLLCPTE(m, pair.VA2, tlb2, excl, opt)
	if err != nil {
		return nil, fmt.Errorf("bench: LLC set for PTE2: %w", err)
	}
	m.ResetRefreshWindow()
	return &ImplicitHammer{Pair: pair, TLB1: tlb1, TLB2: tlb2, LLC1: llc1, LLC2: llc2}, nil
}

// Verify re-measures all four eviction sets against their calibrated
// verdicts: do the minimized streams still evict their targets? A
// false answer is the escalation driver's diagnostic that the sets
// decayed (noise dropped members, thresholds drifted) and a rebuild is
// worth a replan tier. Verification issues the same loads and timed
// probes as construction — no privileged operation.
func (h *ImplicitHammer) Verify(m *machine.Machine) bool {
	return h.TLB1.Evicts(m, h.TLB1.Pages) &&
		h.TLB2.Evicts(m, h.TLB2.Pages) &&
		h.LLC1.Evicts(m, h.LLC1.Addrs) &&
		h.LLC2.Evicts(m, h.LLC2.Addrs)
}

// HammerOnce runs one flush-free iteration: per side, walk the TLB
// eviction set (unprivileged invlpg), walk the PTE-line LLC eviction
// set (unprivileged clflush), then probe the page — the walk's
// KindPTEFetch to the PT frame is the only access that reaches the
// aggressor rows. Allocation-free in steady state.
//
//pthammer:noalloc
func (h *ImplicitHammer) HammerOnce(m *machine.Machine) HammerIter {
	var it HammerIter
	it.Cycles += h.TLB1.Evict(m)
	it.Cycles += h.LLC1.Evict(m)
	p1 := m.Probe(h.Pair.VA1)
	it.Cycles += p1.Latency
	it.Cycles += h.TLB2.Evict(m)
	it.Cycles += h.LLC2.Evict(m)
	p2 := m.Probe(h.Pair.VA2)
	it.Cycles += p2.Latency
	it.Walked = p1.Walked && p2.Walked
	it.LeafFromDRAM = p1.LeafFromDRAM && p2.LeafFromDRAM
	return it
}
