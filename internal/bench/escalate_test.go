package bench

import (
	"testing"

	"pthammer/internal/evset"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/phys"
)

// escalationSeed is the fixed seed the acceptance tests (and the CI
// smoke run) use; the whole attack is deterministic per seed.
const escalationSeed = 1

// TestImplicitHammerStartsFromZeroPressure pins the fresh-window
// contract: construction traffic (aggressor discovery's
// demand-allocation loads and the eviction-set build probes) is
// scrubbed from the activation bookkeeping, so a freshly built hammer
// measures only its own activity.
func TestImplicitHammerStartsFromZeroPressure(t *testing.T) {
	m := machine.MustNew(hammerConfig())
	if _, ok := FindImplicitAggressors(m, 256); !ok {
		t.Fatal("no aggressor pair")
	}
	if s := m.HammerStats(); s.Activations != 0 || len(s.Victims) != 0 {
		t.Fatalf("pressure after FindImplicitAggressors: %+v, want zero", s)
	}

	m2 := machine.MustNew(hammerConfig())
	h, err := NewImplicitHammer(m2, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := m2.HammerStats(); s.Activations != 0 || len(s.Victims) != 0 {
		t.Fatalf("pressure after NewImplicitHammer: %+v, want zero", s)
	}
	// The first iteration's pressure is then exactly the loop's own.
	h.HammerOnce(m2)
	if s := m2.HammerStats(); s.Activations == 0 {
		t.Fatal("hammer iteration recorded no activations")
	}
}

// TestPlanEscalationLayout checks the attacker's layout invariants:
// the pair is double-sided over a victim row that holds sprayed leaf
// page tables, the jackpot surface is non-empty, and the eviction
// streams exclude every page mapped by a hammered-row table.
func TestPlanEscalationLayout(t *testing.T) {
	model := flip.MustNewModel(flip.ClassA(), escalationSeed)
	m := machine.MustNew(EscalationConfig(model))
	plan, err := PlanEscalation(m)
	if err != nil {
		t.Fatal(err)
	}
	pair := plan.Pair
	if pair.Loc1.Bank != pair.Loc2.Bank || pair.Loc2.Row-pair.Loc1.Row != 2 {
		t.Fatalf("pair not double-sided same-bank: %+v / %+v", pair.Loc1, pair.Loc2)
	}
	if len(plan.VictimRegions) == 0 || plan.Sprayable == 0 {
		t.Fatalf("plan has no sprayable victim tables: regions=%d sprayable=%d",
			len(plan.VictimRegions), plan.Sprayable)
	}
	// Every sprayed page is mapped and excluded from stream candidacy.
	excluded := make(map[phys.Addr]bool, len(plan.Exclude))
	for _, a := range plan.Exclude {
		excluded[a] = true
	}
	for _, s := range plan.Spray {
		if f, ok := m.PageTables().Resolve(s); !ok || f != phys.FrameOf(s) {
			t.Fatalf("sprayed page %#x not identity-mapped", uint64(s))
		}
		if !excluded[s] {
			t.Fatalf("sprayed page %#x not in the stream exclusion set", uint64(s))
		}
	}
	// The thrash stream covers every sTLB set at full associativity.
	cfg := m.Config().TLB
	sets := uint64(cfg.L2Entries / cfg.L2Ways)
	perSet := make(map[uint64]int)
	for _, a := range plan.Thrash {
		perSet[(uint64(a)>>phys.FrameShift)%sets]++
	}
	for s := uint64(0); s < sets; s++ {
		if perSet[s] < cfg.L2Ways {
			t.Fatalf("thrash stream hits sTLB set %d only %d times, want ≥ %d", s, perSet[s], cfg.L2Ways)
		}
	}
}

// TestEscalationEndToEnd is the PR's acceptance test: eviction-driven
// hammering with zero privileged operations produces a model-driven
// flip in a page-table frame, the attacker detects it by Translate
// divergence, and the demo rewrites a PTE through the corrupted
// mapping — ending with an attacker marker in a kernel frame.
func TestEscalationEndToEnd(t *testing.T) {
	m, plan, h, err := BuildEscalation(flip.ClassA(), escalationSeed)
	if err != nil {
		t.Fatal(err)
	}
	flushes0, invlpgs0 := m.PrivilegedOps()

	res, err := RunEscalation(m, h, plan, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFlips == 0 || res.FirstFlipIter == 0 {
		t.Fatalf("escalated without flips: %+v", res)
	}

	// Every flip landed in the planned victim row: the page-table row
	// sandwiched between the aggressor PTE rows. (Hammer side-traffic
	// pressures other rows too, but those are unwritten user frames —
	// holes — which the flip model cannot corrupt.)
	geom := m.DRAM().Config()
	for _, f := range m.Flips() {
		loc := geom.Map(f.Addr)
		if loc.Channel != plan.Pair.Loc1.Channel || loc.Rank != plan.Pair.Loc1.Rank ||
			loc.Bank != plan.Pair.Loc1.Bank || loc.Row != plan.Pair.VictimRow {
			t.Fatalf("flip outside the victim row: %+v decodes to %+v", f, loc)
		}
	}

	// Detection was real divergence: the corrupted page no longer
	// translates to its identity frame but to the page-table frame.
	if got, _ := m.Translate(res.CorruptVA); got != res.TableFrame {
		t.Fatalf("corrupt VA translates to %#x, want table frame %#x", uint64(got), uint64(res.TableFrame))
	}
	if res.TableFrame == phys.FrameOf(res.CorruptVA) {
		t.Fatal("corrupt VA still identity-mapped")
	}
	// The table frame is inside the kernel's table pool.
	base, frames := m.PageTables().Region()
	if res.TableFrame < base || res.TableFrame >= base+phys.Frame(frames) {
		t.Fatalf("table frame %#x outside the kernel pool", uint64(res.TableFrame))
	}

	// The rewrite went through the corrupted mapping into the real
	// tables: the reference resolver agrees the attacker page now maps
	// the kernel frame, and the marker store landed there.
	if got, ok := m.PageTables().Resolve(res.RewrittenVA); !ok || got != res.SecretFrame {
		t.Fatalf("rewritten VA resolves %#x/%v, want secret frame %#x", uint64(got), ok, uint64(res.SecretFrame))
	}
	if got := m.Memory().Read64(res.SecretFrame.Addr()); got != escalationMarker {
		t.Fatalf("kernel frame holds %#x, want the attacker marker %#x", got, uint64(escalationMarker))
	}

	// The whole attack — construction, hammering, detection, exploit —
	// used no privileged operation.
	if f, inv := m.PrivilegedOps(); f != flushes0 || inv != invlpgs0 || f != 0 || inv != 0 {
		t.Fatalf("privileged ops used: flushes=%d invlpg=%d", f, inv)
	}
}

// TestEscalationDeterministicPerSeed: the same (profile, seed) run
// twice produces an identical result — the property the CI smoke run
// and the committed tables rely on.
func TestEscalationDeterministicPerSeed(t *testing.T) {
	a, err := RunEscalationDemo(flip.ClassA(), escalationSeed, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunEscalationDemo(flip.ClassA(), escalationSeed, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a, b)
	}
	c, err := RunEscalationDemo(flip.ClassA(), escalationSeed+1, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical escalations")
	}
}

// TestRunFlipRateDeterministicAndOrdered: the fixed-budget flip-rate
// runs behind cmd/pthammer-flip are reproducible, and the module
// classes flip in vulnerability order.
func TestRunFlipRateDeterministicAndOrdered(t *testing.T) {
	const iters = 4000
	a1, err := RunFlipRate(flip.ClassA(), escalationSeed, iters)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunFlipRate(flip.ClassA(), escalationSeed, iters)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("flip-rate run diverged:\n%+v\nvs\n%+v", a1, a2)
	}
	if a1.Flips == 0 || a1.FirstFlipIter == 0 {
		t.Fatalf("class A produced no flips in %d iterations: %+v", iters, a1)
	}
	c, err := RunFlipRate(flip.ClassC(), escalationSeed, iters)
	if err != nil {
		t.Fatal(err)
	}
	if c.Flips > a1.Flips {
		t.Fatalf("class C (%d flips) out-flipped class A (%d)", c.Flips, a1.Flips)
	}
	if a1.FlipsPerMillionIters() <= 0 {
		t.Fatalf("rate = %v, want positive", a1.FlipsPerMillionIters())
	}
}

// TestEscalationPlannerRanksPairs pins the contract the replan tier
// depends on: the demo machine exposes several viable aggressor pairs,
// ranked by sprayable-table count, on distinct victim rows, and the
// planner reports exhaustion with an error rather than repeating one.
func TestEscalationPlannerRanksPairs(t *testing.T) {
	model := flip.MustNewModel(flip.ClassA(), escalationSeed)
	m := machine.MustNew(EscalationConfig(model))
	planner, err := NewEscalationPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	if planner.Remaining() < 2 {
		t.Fatalf("only %d candidate pairs — the replan tier would be dead code", planner.Remaining())
	}
	rows := make(map[uint64]bool)
	lastSprayable := -1
	for planner.Remaining() > 0 {
		plan, err := planner.Next()
		if err != nil {
			t.Fatal(err)
		}
		row := plan.Pair.Loc1.Row + 1
		if rows[row] {
			t.Fatalf("victim row %d planned twice", row)
		}
		rows[row] = true
		if lastSprayable >= 0 && plan.Sprayable > lastSprayable {
			t.Fatalf("ranking not by sprayable count: %d after %d", plan.Sprayable, lastSprayable)
		}
		lastSprayable = plan.Sprayable
	}
	if _, err := planner.Next(); err == nil {
		t.Fatal("exhausted planner handed out another plan")
	}
}
