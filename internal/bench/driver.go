// The budgeted escalation driver: the state machine that turns the
// single-shot escalation pipeline into an attack that can fail,
// diagnose, and retry. Real PThammer runs lose eviction sets to noise,
// lose flips to in-DRAM mitigations, and lose aggressor pairs to OS
// activity; the driver answers each with a tier — keep hammering with
// exponential backoff while flips still land, re-verify and rebuild
// the eviction sets when they stop, replan onto the next-ranked
// aggressor pair when rebuilding does not help — and accounts every
// move against one window budget. It always terminates: either the
// exploit lands within budget or the caller gets a structured Verdict
// saying how far the attack got, what it spent, and why it stopped.
package bench

import (
	"fmt"
	"sync"

	"pthammer/internal/evset"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/timing"
)

// Phase is how far the escalation state machine got.
type Phase string

// The driver phases, in the order an ideal run passes through them.
const (
	PhasePlan    Phase = "plan"
	PhaseBuild   Phase = "build"
	PhaseHammer  Phase = "hammer"
	PhaseRebuild Phase = "rebuild"
	PhaseReplan  Phase = "replan"
	PhaseExploit Phase = "exploit"
)

// Reason explains a failed Verdict. Empty on success.
type Reason string

// The abort reasons a Verdict can carry.
const (
	// ReasonPlanFailed: no sprayable aggressor pair exists on this
	// machine at all.
	ReasonPlanFailed Reason = "plan-failed"
	// ReasonBuildFailed: eviction-set construction for the first pair
	// failed before any hammering happened.
	ReasonBuildFailed Reason = "build-failed"
	// ReasonBudgetExhausted: flips kept landing but none was exploitable
	// before the window budget ran out.
	ReasonBudgetExhausted Reason = "budget-exhausted"
	// ReasonTiersExhausted: hammering stopped producing flips and every
	// escalation tier (rebuilds, replans) was spent without restoring
	// progress.
	ReasonTiersExhausted Reason = "tiers-exhausted"
)

// Budget bounds one resilient escalation run. Every knob is in refresh
// windows or tier counts; the driver never exceeds MaxWindows total.
type Budget struct {
	// MaxWindows is the hard ceiling on refresh windows spent across
	// all attempts, measured on the simulated clock (hammering,
	// detection scans, verification and rebuild traffic all count).
	MaxWindows uint64
	// AttemptWindows is the length of the first hammer attempt; each
	// no-exploit attempt with progress doubles it (exponential backoff)
	// up to AttemptWindows << MaxBackoff.
	AttemptWindows uint64
	MaxBackoff     uint
	// MaxRebuilds bounds tier 1: re-verify + rebuild the eviction sets
	// for the current pair. MaxReplans bounds tier 2: lay out the
	// next-ranked aggressor pair and rebuild for it.
	MaxRebuilds uint
	MaxReplans  uint
}

// DefaultBudget is sized from the demo machine's measured behaviour:
// fault-free escalation across seeds 1–10 needs 8–1600 windows, so
// 4000 covers the slowest seed with one recoverable fault class's
// worth of slack, while the backoff ladder (64·2⁰‥2⁴) keeps early
// aborts cheap when nothing lands at all.
func DefaultBudget() Budget {
	return Budget{
		MaxWindows:     4000,
		AttemptWindows: 64,
		MaxBackoff:     4,
		MaxRebuilds:    2,
		MaxReplans:     3,
	}
}

// Validate reports an error for a degenerate budget.
func (b Budget) Validate() error {
	switch {
	case b.AttemptWindows == 0:
		return fmt.Errorf("bench: budget needs a positive attempt length")
	case b.MaxWindows < b.AttemptWindows:
		return fmt.Errorf("bench: window budget %d smaller than one attempt (%d)", b.MaxWindows, b.AttemptWindows)
	case b.MaxBackoff > 32:
		return fmt.Errorf("bench: backoff exponent %d would overflow the attempt length", b.MaxBackoff)
	}
	return nil
}

// Verdict is the structured outcome of one resilient escalation run —
// success or not, it always says how far the attack got and what it
// spent. Attack-path failures are Verdicts, not errors: a Verdict with
// Success false is the driver working as designed.
type Verdict struct {
	Success bool
	// Phase is the furthest phase reached; Reason is empty on success.
	Phase  Phase
	Reason Reason
	// Windows is the total refresh windows consumed on the simulated
	// clock (never exceeds the budget's MaxWindows); Iterations counts
	// hammer iterations across all attempts.
	Windows    uint64
	Iterations uint64
	// Flips is every disturbance error the model recorded during the
	// driven phase, exploitable or not.
	Flips int
	// Rebuilds and Replans count the escalation tiers actually taken.
	Rebuilds uint
	Replans  uint
	// Faults is the fault model's injected-fault accounting (zero when
	// the run was fault-free).
	Faults fault.Stats
	// PrivFlushes/PrivInvlpgs re-assert the paper's contract: both stay
	// zero through every tier.
	PrivFlushes uint64
	PrivInvlpgs uint64
	// Result is the completed escalation on success, nil otherwise.
	Result *EscalationResult
}

// escalationMachines is the demo-machine free list behind
// RunEscalationResilient: every run uses the identical EscalationConfig
// shape apart from its models, and the Reset/Recycle contract
// guarantees a recycled machine is observationally fresh, so released
// machines are rebound to the next run's (profile, seed)-stamped
// models with ResetWithModels instead of reconstructing the whole
// memory system. The mutex makes concurrent runs (the robustness
// matrix, parallel tests) safe; the cap bounds how many idle machines
// stay live.
var escalationMachines struct {
	sync.Mutex
	free []*machine.Machine
}

const escalationMachineCap = 4

// acquireEscalationMachine returns a recycled demo machine bound to
// the given models, constructing one only when the free list is empty.
// A machine whose rebind fails is discarded, never returned or pooled.
func acquireEscalationMachine(fm *flip.Model, fam *fault.Model) (*machine.Machine, error) {
	escalationMachines.Lock()
	var m *machine.Machine
	if n := len(escalationMachines.free); n > 0 {
		m = escalationMachines.free[n-1]
		escalationMachines.free = escalationMachines.free[:n-1]
	}
	escalationMachines.Unlock()
	if m == nil {
		cfg := EscalationConfig(fm)
		cfg.FaultModel = fam
		return machine.New(cfg)
	}
	if err := m.ResetWithModels(fm, fam); err != nil {
		return nil, err
	}
	return m, nil
}

// releaseEscalationMachine parks a machine for the next run, dropping
// it once the free list is full.
func releaseEscalationMachine(m *machine.Machine) {
	escalationMachines.Lock()
	if len(escalationMachines.free) < escalationMachineCap {
		escalationMachines.free = append(escalationMachines.free, m)
	}
	escalationMachines.Unlock()
}

// RunEscalationResilient recycles (or builds) the demo machine for
// (profile, seed) — wiring in a fault model for fcfg when non-nil,
// stamped with the same seed — and drives the budgeted escalation
// state machine to a Verdict. The error return is for misuse only
// (invalid budget, profile, fault config, or machine construction);
// every attack-path failure comes back as a structured Verdict.
// Deterministic per (profile, seed, fcfg, budget) — machine reuse
// cannot leak into the outcome, by the Reset/Recycle contract.
func RunEscalationResilient(profile flip.Profile, seed int64, fcfg *fault.Config, budget Budget) (Verdict, error) {
	if err := budget.Validate(); err != nil {
		return Verdict{}, err
	}
	model, err := flip.NewModel(profile, seed)
	if err != nil {
		return Verdict{}, err
	}
	var fam *fault.Model
	if fcfg != nil {
		fc := *fcfg
		fc.Seed = seed
		if fam, err = fault.NewModel(fc); err != nil {
			return Verdict{}, err
		}
	}
	m, err := acquireEscalationMachine(model, fam)
	if err != nil {
		return Verdict{}, err
	}
	defer releaseEscalationMachine(m)
	window := timing.Cycles(m.Config().DRAM.RefreshWindow)
	if window == 0 {
		return Verdict{}, fmt.Errorf("bench: resilient escalation needs a windowed machine")
	}
	return driveEscalation(m, budget, window)
}

// driveEscalation is the state machine proper, on an already-built
// machine. Extracted so tests can drive hand-configured machines.
func driveEscalation(m *machine.Machine, budget Budget, window timing.Cycles) (Verdict, error) {
	model := m.FlipModel()
	if model == nil {
		return Verdict{}, fmt.Errorf("bench: resilient escalation needs a machine with a flip model")
	}
	v := Verdict{Phase: PhasePlan}
	finish := func() Verdict {
		if fm := m.FaultModel(); fm != nil {
			v.Faults = fm.Stats()
		}
		v.PrivFlushes, v.PrivInvlpgs = m.PrivilegedOps()
		return v
	}

	planner, err := NewEscalationPlanner(m)
	if err != nil {
		v.Reason = ReasonPlanFailed
		return finish(), nil
	}
	plan, err := planner.Next()
	if err != nil {
		v.Reason = ReasonPlanFailed
		return finish(), nil
	}
	v.Phase = PhaseBuild
	h, err := NewImplicitHammerForPair(m, plan.Pair, plan.Exclude, evset.Options{})
	if err != nil {
		v.Reason = ReasonBuildFailed
		return finish(), nil
	}
	// Eviction-set construction demand-allocated more page tables; a
	// flip landing on any of them is just as exploitable.
	plan.ptOf = leafPTs(m)

	start := m.Clock().Now()
	flips0 := len(model.Flips())
	scannedFlips := flips0
	rescan := false
	rejected := make(map[rejection]bool)
	var backoff uint
	var res EscalationResult

	spent := func() uint64 { return uint64((m.Clock().Now() - start) / window) }
	// Attempt deadlines are relative to the live clock, so each
	// attempt's fractional-window overshoot would otherwise accumulate
	// across attempts; clamping every deadline to this absolute ceiling
	// keeps spent() ≤ MaxWindows (one hammer iteration is far shorter
	// than a window, so the final overshoot floors away).
	ceiling := start + window*timing.Cycles(budget.MaxWindows)

	v.Phase = PhaseHammer
	for spent() < budget.MaxWindows {
		attempt := budget.AttemptWindows << backoff
		if rem := budget.MaxWindows - spent(); attempt > rem {
			attempt = rem
		}
		attemptFlips := len(model.Flips())
		deadline := m.Clock().Now() + window*timing.Cycles(attempt)
		if deadline > ceiling {
			deadline = ceiling
		}
		nextScan := m.Clock().Now() + window
		for m.Clock().Now() < deadline {
			h.HammerOnce(m)
			v.Iterations++
			if m.Clock().Now() < nextScan {
				continue
			}
			for nextScan <= m.Clock().Now() {
				nextScan += window
			}
			// Incremental detection, as in RunEscalation: only windows
			// that produced new flips (or follow a rejected exploit) are
			// worth the rescan traffic.
			if len(model.Flips()) == scannedFlips && !rescan {
				continue
			}
			scannedFlips = len(model.Flips())
			rescan = false
			va, table, ok := plan.scan(m, rejected)
			if !ok {
				continue
			}
			v.Phase = PhaseExploit
			if err := plan.exploit(m, va, table, &res); err != nil {
				rejected[rejection{va, table}] = true
				rescan = true
				v.Phase = PhaseHammer
				continue
			}
			v.Success = true
			v.Windows = spent()
			v.Flips = len(model.Flips()) - flips0
			res.Iterations = v.Iterations
			res.Windows = v.Windows
			res.Cycles = m.Clock().Now() - start
			res.TotalFlips = v.Flips
			v.Result = &res
			return finish(), nil
		}
		if len(model.Flips()) > attemptFlips {
			// Progress: flips are landing, just not exploitably yet.
			// Back off — longer attempts amortize scan traffic and give
			// the jackpot surface more draws before the next escalation
			// decision.
			if backoff < budget.MaxBackoff {
				backoff++
			}
			continue
		}
		// Tier traffic (verification probes, eviction-set rebuilds,
		// respraying a new pair) costs tens of windows; entering a tier
		// without room for it plus one attempt would blow the ceiling,
		// so a too-depleted budget aborts here instead.
		if budget.MaxWindows-spent() < 2*budget.AttemptWindows {
			break
		}
		// No flip landed in the whole attempt. Tier 1: if the eviction
		// sets no longer evict (decayed members, drifted thresholds),
		// rebuild them for the same pair.
		if v.Rebuilds < budget.MaxRebuilds && !h.Verify(m) {
			v.Phase = PhaseRebuild
			v.Rebuilds++
			if h2, err := NewImplicitHammerForPair(m, plan.Pair, plan.Exclude, evset.Options{}); err == nil {
				h = h2
				plan.ptOf = leafPTs(m)
				backoff = 0
				v.Phase = PhaseHammer
				continue
			}
			// Rebuild construction failed outright: fall through to
			// replanning onto a different pair.
		}
		// Tier 2: the sets are fine (or unrebuildable) yet nothing
		// flips — the pair itself is dead (invalidated, mitigated, or
		// just barren). Move to the next-ranked pair; a failed build
		// consumes the replan and tries the one after.
		replanned := false
		for v.Replans < budget.MaxReplans {
			v.Phase = PhaseReplan
			v.Replans++
			p2, err := planner.Next()
			if err != nil {
				break
			}
			h2, err := NewImplicitHammerForPair(m, p2.Pair, p2.Exclude, evset.Options{})
			if err != nil {
				continue
			}
			plan, h = p2, h2
			plan.ptOf = leafPTs(m)
			backoff = 0
			scannedFlips = len(model.Flips())
			// An earlier flip may already sit in the new pair's sprayed
			// tables; force one scan of the fresh surface.
			rescan = true
			replanned = true
			v.Phase = PhaseHammer
			break
		}
		if !replanned {
			v.Reason = ReasonTiersExhausted
			v.Windows = spent()
			v.Flips = len(model.Flips()) - flips0
			return finish(), nil
		}
	}
	v.Reason = ReasonBudgetExhausted
	v.Windows = spent()
	v.Flips = len(model.Flips()) - flips0
	return finish(), nil
}
