package bench

import (
	"strings"
	"testing"

	"pthammer/internal/evset"
	"pthammer/internal/machine"
	"pthammer/internal/payload"
)

// TestCompileHammerMatchesHammerOnce is the in-package smoke for the
// scenario lowering (the cross-seed sweep lives in payload/difftest):
// the compiled program must replay HammerOnce's iteration verdicts on a
// twin machine and stay unprivileged.
func TestCompileHammerMatchesHammerOnce(t *testing.T) {
	mc := machine.MustNew(machine.SandyBridge())
	mp := machine.MustNew(machine.SandyBridge())
	hc, err := NewImplicitHammer(mc, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hp, err := NewImplicitHammer(mp, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := CompileHammer(mp, hp)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Privileged() {
		t.Fatal("compiled implicit-hammer program reports privileged ops")
	}
	ex := payload.MustExecutor(prog)
	for i := 0; i < 4; i++ {
		it := hc.HammerOnce(mc)
		tr := ex.Run(mp)
		if it.Cycles != tr.Cycles || it.Walked != tr.Walked || it.LeafFromDRAM != tr.LeafFromDRAM {
			t.Fatalf("iter %d diverged: closure %+v, compiled %+v", i, it, tr)
		}
	}
	if f, inv := mp.PrivilegedOps(); f != 0 || inv != 0 {
		t.Fatalf("compiled hammer issued privileged ops: (%d, %d)", f, inv)
	}
}

// TestCompilePrivilegedCountsBothSides: the baseline lowering is
// privileged by construction and charges exactly one invlpg and one
// clflush per side per iteration.
func TestCompilePrivilegedCountsBothSides(t *testing.T) {
	m := machine.MustNew(machine.SandyBridge())
	pair, ok := FindImplicitAggressors(m, 256)
	if !ok {
		t.Fatal("no implicit aggressor pair in geometry")
	}
	prog, err := CompilePrivileged(m, pair)
	if err != nil {
		t.Fatal(err)
	}
	if !prog.Privileged() {
		t.Fatal("privileged baseline program does not report privileged ops")
	}
	ex := payload.MustExecutor(prog)
	const iters = 3
	for i := 0; i < iters; i++ {
		ex.Run(m)
	}
	if f, inv := m.PrivilegedOps(); f != 2*iters || inv != 2*iters {
		t.Fatalf("privileged ops = (%d, %d), want (%d, %d)", f, inv, 2*iters, 2*iters)
	}
}

// TestCompileRejectsOutOfRangeStreams: both compilers surface the
// program validator's address check instead of emitting a program that
// would fault at run time (a mis-sized machine handed to the compiler).
func TestCompileRejectsOutOfRangeStreams(t *testing.T) {
	m := machine.MustNew(machine.SandyBridge())
	h, err := NewImplicitHammer(m, 256, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tiny := machine.SandyBridge()
	tiny.MemBytes = 1 << 16
	small, err := machine.New(tiny)
	if err != nil {
		// The preset may reject the shrunken size outright; the check
		// below needs only a machine whose Memory().Size() is tiny.
		t.Skipf("cannot build undersized machine: %v", err)
	}
	if _, err := CompileHammer(small, h); err == nil || !strings.Contains(err.Error(), "compile hammer") {
		t.Fatalf("CompileHammer error = %v, want address-range failure", err)
	}
	pair, ok := FindImplicitAggressors(m, 256)
	if !ok {
		t.Fatal("no implicit aggressor pair in geometry")
	}
	if _, err := CompilePrivileged(small, pair); err == nil || !strings.Contains(err.Error(), "compile privileged") {
		t.Fatalf("CompilePrivileged error = %v, want address-range failure", err)
	}
}
