// Lowering the hammer bodies to payload programs. The closure paths
// (ImplicitHammer.HammerOnce, ImplicitPair.HammerOncePrivileged) stay
// the reference semantics; these compilers emit the exact same machine
// calls in the exact same order as flat op streams, and the difftest
// harness holds the two bit-identical. The steady-state scenarios run
// the compiled form; the escalation drivers keep the closures, so both
// engines stay load-bearing.
package bench

import (
	"fmt"

	"pthammer/internal/machine"
	"pthammer/internal/payload"
)

// CompileHammer lowers one flush-free hammer iteration — TLB eviction
// walk, leaf-PTE LLC eviction walk, probe, per side — into a program.
// The program's Trace mirrors HammerOnce's HammerIter: two probes whose
// Walked/LeafFromDRAM verdicts are ANDed, and the total cycles charged.
func CompileHammer(m *machine.Machine, h *ImplicitHammer) (*payload.Program, error) {
	c := payload.NewCompiler()
	c.Prime(h.TLB1.Pages)
	c.Prime(h.LLC1.Addrs)
	c.Probe(h.Pair.VA1)
	c.Prime(h.TLB2.Pages)
	c.Prime(h.LLC2.Addrs)
	c.Probe(h.Pair.VA2)
	prog, err := c.Compile(m.Memory().Size())
	if err != nil {
		return nil, fmt.Errorf("bench: compile hammer: %w", err)
	}
	if prog.Privileged() {
		return nil, fmt.Errorf("bench: compiled implicit-hammer program contains privileged ops")
	}
	return prog, nil
}

// CompilePrivileged lowers one privileged-baseline iteration — invlpg,
// clflush the leaf PTE, load, per side — into a program.
func CompilePrivileged(m *machine.Machine, pair ImplicitPair) (*payload.Program, error) {
	c := payload.NewCompiler()
	c.Invlpg(pair.VA1)
	c.Flush(pair.PTE1)
	c.Load(pair.VA1)
	c.Invlpg(pair.VA2)
	c.Flush(pair.PTE2)
	c.Load(pair.VA2)
	prog, err := c.Compile(m.Memory().Size())
	if err != nil {
		return nil, fmt.Errorf("bench: compile privileged baseline: %w", err)
	}
	return prog, nil
}
