package machine

import (
	"reflect"
	"runtime"
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/mem"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

func TestNewMultiWiring(t *testing.T) {
	mm := MustNewMulti(MultiConfig{Config: SandyBridge(), Cores: 3, Tenants: []int{0, 1, 0}})
	if mm.NumCores() != 3 || mm.Tenants() != 2 {
		t.Fatalf("got %d cores / %d tenants, want 3 / 2", mm.NumCores(), mm.Tenants())
	}
	for i := 0; i < 3; i++ {
		c := mm.Core(i)
		if c.Core() != i {
			t.Fatalf("core %d reports index %d", i, c.Core())
		}
		if c.Memory() != mm.Memory() || c.DRAM() != mm.DRAM() {
			t.Fatalf("core %d does not share memory/DRAM", i)
		}
		if c.PageTables() != mm.Tables(mm.Tenant(i)) {
			t.Fatalf("core %d not attached to tenant %d's tables", i, mm.Tenant(i))
		}
	}
	// Same tenant ⇒ same address space; different tenant ⇒ disjoint.
	if mm.Core(0).PageTables() != mm.Core(2).PageTables() {
		t.Fatal("cores 0 and 2 (both tenant 0) have different tables")
	}
	if mm.Core(0).PageTables() == mm.Core(1).PageTables() {
		t.Fatal("tenants 0 and 1 share tables")
	}
	// Clocks are per core: advancing one must not move another.
	mm.Core(0).Load(0)
	if mm.Core(1).Clock().Now() != 0 {
		t.Fatal("core 0's load advanced core 1's clock")
	}
}

func TestNewMultiRejectsBadConfigs(t *testing.T) {
	base := SandyBridge()
	cases := []MultiConfig{
		{Config: base, Cores: 0},
		{Config: base, Cores: 2, Tenants: []int{0}},     // wrong length
		{Config: base, Cores: 2, Tenants: []int{0, -1}}, // negative
		{Config: base, Cores: 2, Tenants: []int{0, 2}},  // not dense
		{Config: base, Cores: 2, Tenants: []int{1, 1}},  // tenant 0 unused
	}
	for i, cfg := range cases {
		if _, err := NewMulti(cfg); err == nil {
			t.Fatalf("case %d: NewMulti accepted invalid config %+v", i, cfg)
		}
	}
}

// TestTenantPoolsStripeAdjacentRows pins the cross-tenant attack
// surface: with two tenants, the page-table pools alternate DRAM row
// indices, so each tenant's table rows are physically sandwiched by
// the other tenant's.
func TestTenantPoolsStripeAdjacentRows(t *testing.T) {
	cfg := SandyBridge()
	pools, err := tenantPools(cfg, 2, LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	geom := cfg.DRAM
	rowOf := func(f phys.Frame) uint64 {
		l := geom.Map(f.Addr())
		return l.Row
	}
	// Frames within one pool must never collide with the other.
	inPool0 := map[phys.Frame]bool{}
	for _, f := range pools[0] {
		inPool0[f] = true
	}
	for _, f := range pools[1] {
		if inPool0[f] {
			t.Fatalf("frame %#x in both tenant pools", f.Addr())
		}
	}
	// Tenant 1's first row index sits directly between two of tenant
	// 0's in the same bank: rows r and r+2 belong to tenant 0, r+1 to
	// tenant 1 (row indices interleave across banks in pairs under the
	// open mapping, hence the per-bank row distance of 2 per index).
	l0 := geom.Map(pools[0][0].Addr())
	l1 := geom.Map(pools[1][0].Addr())
	if l0.Channel != l1.Channel || l0.Rank != l1.Rank || l0.Bank != l1.Bank {
		// Row indices span every bank, so bank 0's slice of consecutive
		// indices must land in the same bank.
		t.Fatalf("first pool frames not in the same bank: %+v vs %+v", l0, l1)
	}
	if rowOf(pools[1][0])-rowOf(pools[0][0]) == 0 {
		t.Fatal("tenant pools share a DRAM row")
	}
}

// TestCrossCoreLLCInclusivity is the satellite-4 coverage: filling the
// shared LLC from core 0 until core 1's line is evicted must drop that
// line from core 1's private L1/L2 as well (inclusive back-
// invalidation crosses cores), so core 1's next load goes to DRAM.
func TestCrossCoreLLCInclusivity(t *testing.T) {
	mm := MustNewMulti(MultiConfig{Config: SandyBridge(), Cores: 2})
	a, b := mm.Core(0), mm.Core(1)

	target := phys.Addr(64 << 10)
	b.Load(target)
	if inL1, inL2, inLLC := b.Caches().Contains(target); !inL1 || !inL2 || !inLLC {
		t.Fatalf("core 1's load did not fill all levels: L1=%v L2=%v LLC=%v", inL1, inL2, inLLC)
	}

	// Core 0 walks addresses that index the same LLC set as target;
	// twice the associativity guarantees the target's way is recycled
	// whatever the PTE-fetch traffic does to the set's LRU order.
	llc := mm.Config().LLC
	stride := phys.Addr(llc.Sets() * llc.LineBytes)
	for k := 1; k <= 2*llc.Ways; k++ {
		a.Load(target + phys.Addr(k)*stride)
	}

	if inL1, inL2, inLLC := b.Caches().Contains(target); inL1 || inL2 || inLLC {
		t.Fatalf("core 0's LLC fills left core 1 holding the line: L1=%v L2=%v LLC=%v", inL1, inL2, inLLC)
	}
	if res := b.Load(target); res.Source != mem.LevelDRAM {
		t.Fatalf("core 1's reload served from %v, want DRAM", res.Source)
	}
}

// TestLLCArbitrationCharging: crossing into the LLC behind the other
// core costs the arbitration surcharge, consecutive same-core accesses
// do not, and the surcharge lands on the crossing core's own clock.
func TestLLCArbitrationCharging(t *testing.T) {
	cfg := SandyBridge()
	mm := MustNewMulti(MultiConfig{Config: cfg, Cores: 2})
	a, b := mm.Core(0), mm.Core(1)

	target := phys.Addr(1 << 20)
	a.Load(target)       // fills the LLC with target's line
	b.Load(target + 64)  // warms core 1's TLB for the page (and the bank's open row)
	a.Load(target + 128) // core 0 reclaims the LLC slice

	// Core 1 now hits target's line in the LLC from behind core 0: the
	// arbitration surcharge is charged on top of the LLC hit, to core
	// 1's own clock.
	before := b.Clock().Now()
	res := b.Load(target)
	if res.Source != mem.LevelLLC {
		t.Fatalf("core 1's probe served from %v, want LLC", res.Source)
	}
	want := cfg.Lat.TLBL1Hit + cfg.Lat.LLCHit + cfg.Lat.LLCArbitration
	if got := b.Clock().Now() - before; got != want || res.Latency != want {
		t.Fatalf("cross-core LLC hit charged %d (Result %d), want %d", got, res.Latency, want)
	}

	// Core 1, a fresh line of the same (open) row: it owns the LLC
	// slice now, but core 0's reclaim load was the bank's last visitor,
	// so the DRAM-side arbitration fires instead.
	before = b.Clock().Now()
	res = b.Load(target + 320)
	if res.Source != mem.LevelDRAM {
		t.Fatalf("fresh line served from %v, want DRAM", res.Source)
	}
	want = cfg.Lat.TLBL1Hit + cfg.Lat.DRAMRowHit + cfg.Lat.DRAMBankArbitration
	if got := b.Clock().Now() - before; got != want || res.Latency != want {
		t.Fatalf("cross-core DRAM miss charged %d (Result %d), want %d", got, res.Latency, want)
	}

	// And once core 1 owns both the slice and the bank, a further fresh
	// line pays no arbitration at all: TLB hit + row hit, nothing else.
	before = b.Clock().Now()
	res = b.Load(target + 384)
	want = cfg.Lat.TLBL1Hit + cfg.Lat.DRAMRowHit
	if got := b.Clock().Now() - before; got != want || res.Latency != want {
		t.Fatalf("same-core DRAM miss charged %d (Result %d), want %d", got, res.Latency, want)
	}
}

// multiWorkload is the fixed scenario the determinism tests replay:
// each core strides through its own slice of memory, yielding every
// few loads, with enough traffic to rotate refresh windows and collide
// in the shared LLC sets.
func multiWorkload(mm *MultiMachine) {
	mm.Run(func(i int, m *Machine, yield func()) {
		base := phys.Addr(uint64(i) * (8 << 20))
		for n := 0; n < 400; n++ {
			m.Load(base + phys.Addr(uint64(n%64)*4096+uint64(n)*64))
			if n%8 == 7 {
				yield()
			}
		}
	})
}

type multiFingerprint struct {
	Log    []int
	Clocks []timing.Cycles
	Acts   uint64
}

func fingerprint(mm *MultiMachine) multiFingerprint {
	fp := multiFingerprint{}
	mm.Run(func(i int, m *Machine, yield func()) {
		base := phys.Addr(uint64(i) * (8 << 20))
		for n := 0; n < 400; n++ {
			m.Load(base + phys.Addr(uint64(n%64)*4096+uint64(n)*64))
			if n%8 == 7 {
				yield()
			}
		}
	})
	for i := 0; i < mm.NumCores(); i++ {
		fp.Clocks = append(fp.Clocks, mm.Core(i).Clock().Now())
	}
	fp.Acts = mm.Core(0).HammerStats().Activations
	return fp
}

// TestMultiMachineDeterministic is the tentpole acceptance test: the
// same multi-core workload on fresh machines produces bit-identical
// schedules and state for any GOMAXPROCS value.
func TestMultiMachineDeterministic(t *testing.T) {
	cfg := SandyBridge()
	cfg.DRAM.RefreshWindow = 50_000
	build := func() *MultiMachine {
		return MustNewMulti(MultiConfig{Config: cfg, Cores: 3, Tenants: []int{0, 1, 0}})
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	ref := fingerprint(build())
	if len(ref.Clocks) != 3 || ref.Clocks[0] == 0 {
		t.Fatalf("degenerate reference fingerprint: %+v", ref)
	}
	for _, p := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(p)
		got := fingerprint(build())
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("GOMAXPROCS=%d fingerprint diverged:\n got %+v\nwant %+v", p, got, ref)
		}
	}
}

// TestMultiRunPanicTeardown: a body that panics mid-run must surface
// its original value from mm.Run on the caller's goroutine — not crash
// the process from a core's goroutine — after the other cores unwind
// through their deferred cleanup; the machine stays usable afterwards.
func TestMultiRunPanicTeardown(t *testing.T) {
	mm := MustNewMulti(MultiConfig{Config: SandyBridge(), Cores: 3, Tenants: []int{0, 1, 0}})
	cleaned := make([]bool, 3)
	func() {
		defer func() {
			if r := recover(); r != "core 1 body blew up" {
				t.Fatalf("recovered %v, want the original panic value", r)
			}
		}()
		mm.Run(func(i int, m *Machine, yield func()) {
			defer func() { cleaned[i] = true }()
			for n := 0; ; n++ {
				m.Load(phys.Addr(uint64(i*8+n%4) * phys.FrameSize))
				if i == 1 && n == 5 {
					panic("core 1 body blew up")
				}
				yield()
			}
		})
		t.Fatal("Run returned instead of panicking")
	}()
	for i, c := range cleaned {
		if !c {
			t.Errorf("core %d deferred cleanup never ran", i)
		}
	}
	// The interleaver tore down cleanly: a fresh Run on the same machine
	// still schedules.
	log := mm.Run(func(i int, m *Machine, yield func()) {
		m.Load(phys.Addr(uint64(i) * phys.FrameSize))
	})
	if len(log) != 3 {
		t.Fatalf("post-panic Run grant log = %v, want one grant per core", log)
	}
}

// TestMultiFlipMislandInvariant is the other satellite-4 case: with a
// flip model and a flip-misland fault model active while two cores
// hammer concurrently — mislanded flips relocated onto rows the other
// core is probing — the flip engine's books still balance
// (Attempts − Misses == Flips) and every flip is attributed to a core.
func TestMultiFlipMislandInvariant(t *testing.T) {
	cfg := SandyBridge()
	cfg.DRAM.HammerThreshold = 16
	cfg.DRAM.RefreshWindow = 5000
	model := flip.MustNewModel(flip.Profile{
		Name: "eager", AttemptsPerWindow: 16, ExcessScale: 1, OneToZeroBias: 1,
	}, 99)
	cfg.FlipModel = model
	fm, err := fault.NewModel(fault.Config{Class: fault.FlipMisland, Seed: 7, MislandRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cfg.FaultModel = fm

	mm := MustNewMulti(MultiConfig{Config: cfg, Cores: 2, Tenants: []int{0, 1}})
	geom := mm.DRAM().Config()
	// Core 0 hammers rows 100/102 (victim 101); core 1 probes row 101's
	// frames while hammering its own pair two banks over — the row a
	// mislanded flip can be redirected onto is in core 1's working set.
	rows := [][2]phys.Addr{
		{geom.AddrOf(dram.Location{Row: 100}), geom.AddrOf(dram.Location{Row: 102})},
		{geom.AddrOf(dram.Location{Channel: 1, Row: 200}), geom.AddrOf(dram.Location{Channel: 1, Row: 202})},
	}
	victimStart, victimBytes := geom.RowRange(0, 0, 0, 101)
	for off := uint64(0); off < victimBytes; off += 8 {
		mm.Memory().Write64(victimStart+phys.Addr(off), ^uint64(0))
	}

	mm.Run(func(i int, m *Machine, yield func()) {
		above, below := rows[i][0], rows[i][1]
		for n := 0; n < 300; n++ {
			m.Flush(above)
			m.Flush(below)
			m.Load(above)
			m.Load(below)
			if i == 1 {
				m.Load(victimStart + phys.Addr(uint64(n%16)*64))
			}
			yield()
		}
	})

	if model.Windows() == 0 {
		t.Fatal("no refresh windows rotated under the multi-core hammer")
	}
	flips := model.Flips()
	if got, want := model.Attempts()-model.Misses(), uint64(len(flips)); got != want {
		t.Fatalf("Attempts−Misses = %d, want %d flips", got, want)
	}
	if len(flips) == 0 {
		t.Fatal("eager profile produced no flips")
	}
	if fm.Stats().FlipsRedirected == 0 {
		t.Fatal("misland fault never fired")
	}
	for _, f := range flips {
		if f.Core < 0 || f.Core >= mm.NumCores() {
			t.Fatalf("flip attributed to core %d outside [0, %d)", f.Core, mm.NumCores())
		}
	}
}
