// The benchmark bodies live in internal/bench so these in-tree runs
// and cmd/pthammer-bench's BENCH_NNNN.json reports always measure the
// same loops. This file only gives them `go test -bench` names.
package machine_test

import (
	"testing"

	"pthammer/internal/bench"
)

func BenchmarkScenarios(b *testing.B) {
	for _, sc := range bench.Scenarios() {
		b.Run(sc.Name, func(b *testing.B) {
			b.ReportAllocs()
			sc.Run(b)
		})
	}
}
