package machine

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/phys"
)

// TestStore64EdgePaths pins the error and boundary behaviour of the
// store path: the last aligned address inside memory works, the first
// address outside panics, and an unaligned address panics out of phys
// after the access already translated — the same order real hardware
// faults in (translation first, then the data access).
func TestStore64EdgePaths(t *testing.T) {
	m := MustNew(SandyBridge())
	size := phys.Addr(m.Memory().Size())

	last := size - 8
	if res := m.Store64(last, 0x1122334455667788); res.Latency == 0 {
		t.Fatal("store at last aligned address charged no cycles")
	}
	if got := m.Memory().Read64(last); got != 0x1122334455667788 {
		t.Fatalf("store at last aligned address read back %#x", got)
	}

	mustPanicMachine(t, "store at first out-of-range address", func() { m.Store64(size, 1) })
	mustPanicMachine(t, "store far out of range", func() { m.Store64(size+0x100000, 1) })

	// Unaligned: the access itself succeeds (and charges the clock), the
	// byte write then panics in phys. The clock must show the charge —
	// the panic happens after translation, not instead of it.
	before := m.Clock().Now()
	mustPanicMachine(t, "unaligned store", func() { m.Store64(0x9001, 1) })
	if m.Clock().Now() == before {
		t.Fatal("unaligned store panicked before translating; phys alignment panic should come after the access")
	}
}

// TestProbeOfFlushedDataLine: flushing the data line (the privileged
// clflush baseline) must show up in the probe verdicts as an LLC miss
// served from DRAM without a walk — the translation is still in the
// dTLB, so Walked and LeafFromDRAM stay false.
func TestProbeOfFlushedDataLine(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x51000)

	m.Load(a) // warm translation + data
	m.Flush(a)
	p := m.Probe(a)
	if p.Walked || p.STLBHit || p.LeafFromDRAM {
		t.Fatalf("probe after data flush = %+v, want translation side untouched", p)
	}
	if !p.LLCMiss || p.Source != mem.LevelDRAM {
		t.Fatalf("probe after data flush = %+v, want LLC miss served from DRAM", p)
	}
}

// TestProbeOfFlushedPTELine: dropping the translation (invlpg) and
// flushing the leaf PTE's cache line forces the next probe to walk and
// fetch the leaf entry from DRAM — LeafFromDRAM, the implicit-hammer
// verdict, must report it. Flushing only the PTE line while the dTLB
// still holds the translation must report nothing: no walk, no PTE
// fetch, warm data.
func TestProbeOfFlushedPTELine(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x62000)

	m.Load(a)
	pte, ok := m.PTEAddr(a, 1)
	if !ok {
		t.Fatal("leaf PTE not mapped after load")
	}

	// PTE line flushed but translation cached: the probe never touches
	// the page tables.
	m.Flush(pte)
	if p := m.Probe(a); p.Walked || p.LeafFromDRAM || p.LLCMiss {
		t.Fatalf("probe with cached translation = %+v, want no walk and warm data", p)
	}

	// Now drop the translation too: the walk runs and its leaf fetch
	// misses down to DRAM.
	m.Flush(pte)
	m.InvalidatePage(a)
	p := m.Probe(a)
	if !p.Walked || !p.LeafFromDRAM {
		t.Fatalf("probe after invlpg + PTE flush = %+v, want walk with DRAM leaf fetch", p)
	}
	if !p.LLCMiss {
		t.Fatalf("probe after invlpg + PTE flush = %+v, want the PTE fetch to count as an LLC miss", p)
	}
}

// TestProbeOutOfRange: probing outside physical memory panics like the
// load it wraps.
func TestProbeOutOfRange(t *testing.T) {
	m := MustNew(SandyBridge())
	mustPanicMachine(t, "probe out of range", func() { m.Probe(phys.Addr(m.Memory().Size())) })
}
