package machine

import (
	"fmt"

	"pthammer/internal/cache"
	"pthammer/internal/core"
	"pthammer/internal/dram"
	"pthammer/internal/pagetable"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// MultiConfig describes a multi-tenant machine: Cores front-ends (each
// a full Machine: own clock, counters, L1/L2, TLB chain, walker) over
// one physical memory, one inclusive LLC and one banked DRAM.
type MultiConfig struct {
	Config

	// Cores is the number of per-core front-ends.
	Cores int

	// Tenants assigns each core an address space: cores with the same
	// tenant index share one set of page tables (threads of one
	// process), cores with different indices get disjoint table pools
	// (co-located users). Nil means every core is tenant 0. Tenant
	// indices must be dense: every index in [0, max+1) must own at
	// least one core.
	//
	// Tenant table pools are striped across DRAM row indices at the top
	// of physical memory — tenant t owns the row indices congruent to t
	// modulo the tenant count — so different tenants' page tables land
	// in physically adjacent rows of the same banks. That is the
	// cross-tenant attack surface: an attacker hammering its own
	// tables' rows puts disturbance pressure on a victim tenant's PTEs
	// one row away (PAPER.md §II's threat model, which the single-core
	// machine cannot express).
	Tenants []int

	// Layout selects how the reserved table rows are divided among
	// tenants; the zero value is the interleaved striping described
	// above.
	Layout TableLayout
}

// TableLayout selects the physical placement of per-tenant page-table
// pools within the reserved rows at the top of memory.
type TableLayout int

const (
	// LayoutInterleaved stripes tenants mod T across row indices, so
	// different tenants' tables sit in physically adjacent rows — the
	// cross-tenant attack surface.
	LayoutInterleaved TableLayout = iota
	// LayoutBlocked gives each tenant a contiguous block of row
	// indices, so a tenant's rows neighbour its own tables (and at most
	// one row of one other tenant at each block boundary) — the
	// defensive placement the population tables contrast against
	// interleaved striping.
	LayoutBlocked
)

// String returns the layout's table-cell name.
func (l TableLayout) String() string {
	switch l {
	case LayoutInterleaved:
		return "interleaved"
	case LayoutBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("layout(%d)", int(l))
	}
}

// MultiMachine is Cores front-ends over one shared memory system. Each
// front-end is a *Machine whose shared handles (Memory, DRAM, the LLC
// behind Caches) alias every other core's; drive them concurrently
// with Run, which serialises quanta under the deterministic
// interleaver in internal/core.
type MultiMachine struct {
	cfg     MultiConfig
	mem     *phys.Memory
	dram    *dram.DRAM
	shared  *cache.SharedLLC
	cores   []*Machine
	tenants []int
	tables  []*pagetable.Tables
}

// tenantCount validates the tenant assignment and returns the number
// of tenants.
func tenantCount(cores int, tenants []int) (int, error) {
	if tenants == nil {
		return 1, nil
	}
	if len(tenants) != cores {
		return 0, fmt.Errorf("machine: %d tenant assignments for %d cores", len(tenants), cores)
	}
	max := 0
	for i, t := range tenants {
		if t < 0 {
			return 0, fmt.Errorf("machine: core %d has negative tenant %d", i, t)
		}
		if t > max {
			max = t
		}
	}
	seen := make([]bool, max+1)
	for _, t := range tenants {
		seen[t] = true
	}
	for t, ok := range seen {
		if !ok {
			return 0, fmt.Errorf("machine: tenant indices not dense: %d unused below max %d", t, max)
		}
	}
	return max + 1, nil
}

// tenantPools carves the top of physical memory into per-tenant
// page-table pools, each row index spanning one row of every bank and
// each pool holding at least FramesToMap frames so no tenant can
// exhaust its tables. LayoutInterleaved stripes the reserved rows mod
// T (tenant t owns the row indices congruent to t); LayoutBlocked
// hands tenant t the contiguous rows [start+t·R, start+(t+1)·R).
func tenantPools(cfg Config, tenantN int, layout TableLayout) ([][]phys.Frame, error) {
	rowSpan := uint64(cfg.DRAM.TotalBanks()) * cfg.DRAM.RowBytes
	rowFrames := rowSpan / phys.FrameSize
	framesPerTenant := pagetable.FramesToMap(cfg.MemBytes)
	rowsPerTenant := (framesPerTenant + rowFrames - 1) / rowFrames
	totalRows := cfg.MemBytes / rowSpan
	reservedRows := rowsPerTenant * uint64(tenantN)
	if reservedRows >= totalRows {
		return nil, fmt.Errorf("machine: %d-byte memory too small for %d tenants × %d table rows",
			cfg.MemBytes, tenantN, rowsPerTenant)
	}
	if layout != LayoutInterleaved && layout != LayoutBlocked {
		return nil, fmt.Errorf("machine: unknown table layout %v", layout)
	}
	startRow := totalRows - reservedRows
	pools := make([][]phys.Frame, tenantN)
	for t := range pools {
		pool := make([]phys.Frame, 0, rowsPerTenant*rowFrames)
		appendRow := func(r uint64) {
			first := phys.Frame(r * rowFrames)
			for k := uint64(0); k < rowFrames; k++ {
				pool = append(pool, first+phys.Frame(k))
			}
		}
		switch layout {
		case LayoutInterleaved:
			for r := startRow + uint64(t); r < totalRows; r += uint64(tenantN) {
				appendRow(r)
			}
		case LayoutBlocked:
			base := startRow + uint64(t)*rowsPerTenant
			for r := base; r < base+rowsPerTenant; r++ {
				appendRow(r)
			}
		}
		pools[t] = pool
	}
	return pools, nil
}

// NewMulti validates the config and wires the multi-tenant machine:
// shared memory, DRAM and LLC first, then one front-end per core, each
// attached to its tenant's page tables. Flip and fault models bind to
// the shared memory system exactly as on a single-core machine — one
// model serves every core, with reports attributed to the core whose
// access triggered them.
func NewMulti(cfg MultiConfig) (*MultiMachine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("machine: need at least one core (got %d)", cfg.Cores)
	}
	tenantN, err := tenantCount(cfg.Cores, cfg.Tenants)
	if err != nil {
		return nil, err
	}
	tenants := cfg.Tenants
	if tenants == nil {
		tenants = make([]int, cfg.Cores)
	}

	pmem, err := phys.New(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	pools, err := tenantPools(cfg.Config, tenantN, cfg.Layout)
	if err != nil {
		return nil, err
	}
	tables := make([]*pagetable.Tables, tenantN)
	for t := range tables {
		if tables[t], err = pagetable.NewWithFrames(pmem, pools[t]); err != nil {
			return nil, err
		}
	}

	clocks := make([]*timing.Clock, cfg.Cores)
	counters := make([]*perf.Counters, cfg.Cores)
	for i := range clocks {
		if clocks[i], err = timing.NewClock(cfg.FreqHz); err != nil {
			return nil, err
		}
		counters[i] = &perf.Counters{}
	}
	// The shared DRAM's default port is core 0 — its bookkeeping
	// methods (and the single-device Lookup path, which multi-core code
	// never uses) charge core 0's clock.
	d, err := dram.New(cfg.DRAM, clocks[0], counters[0], cfg.Lat)
	if err != nil {
		return nil, err
	}
	shared, err := cache.NewShared(cfg.LLC, cfg.Lat)
	if err != nil {
		return nil, err
	}

	mm := &MultiMachine{
		cfg:     cfg,
		mem:     pmem,
		dram:    d,
		shared:  shared,
		cores:   make([]*Machine, cfg.Cores),
		tenants: tenants,
		tables:  tables,
	}
	for i := range mm.cores {
		if mm.cores[i], err = buildCore(cfg.Config, i, pmem, clocks[i], counters[i], d, shared, tables[tenants[i]]); err != nil {
			return nil, err
		}
	}
	if err := bindModels(cfg.Config, pmem, d); err != nil {
		return nil, err
	}
	return mm, nil
}

// MustNewMulti is NewMulti but panics on error.
func MustNewMulti(cfg MultiConfig) *MultiMachine {
	mm, err := NewMulti(cfg)
	if err != nil {
		panic(err)
	}
	return mm
}

// NumCores returns how many front-ends the machine has.
func (mm *MultiMachine) NumCores() int { return len(mm.cores) }

// Core returns core i's front-end. Anything done through it outside a
// Run body executes unscheduled — fine for setup and inspection, wrong
// for the measured phase of a scenario.
func (mm *MultiMachine) Core(i int) *Machine { return mm.cores[i] }

// Tenant returns the tenant index core i belongs to.
func (mm *MultiMachine) Tenant(i int) int { return mm.tenants[i] }

// Tenants returns how many tenants the machine hosts.
func (mm *MultiMachine) Tenants() int { return len(mm.tables) }

// Tables returns tenant t's page tables.
func (mm *MultiMachine) Tables(t int) *pagetable.Tables { return mm.tables[t] }

// Memory returns the shared physical memory.
func (mm *MultiMachine) Memory() *phys.Memory { return mm.mem }

// DRAM returns the shared DRAM device.
func (mm *MultiMachine) DRAM() *dram.DRAM { return mm.dram }

// Config returns the configuration the machine was built with.
func (mm *MultiMachine) Config() MultiConfig { return mm.cfg }

// Reset recycles the whole multi-tenant machine under the
// Reset/Recycle contract: every front-end rewinds (clock, PMC, noise,
// TLB, walker, private caches, privileged-op counters), the shared LLC
// and DRAM rewind once, physical memory returns to holes, every
// tenant's table pool is recycled in place, and any bound flip/fault
// models rewind their streams and records. After Reset the machine is
// observationally identical to a fresh NewMulti(cfg) — the property
// the cohort scheduler's pool-size determinism rests on. The DRAM's
// new window is anchored at core 0's rebased clock, matching
// construction.
func (mm *MultiMachine) Reset() {
	for _, c := range mm.cores {
		c.resetFrontEnd()
	}
	mm.shared.Reset()
	mm.cores[0].dport.Reset()
	mm.mem.Reset()
	for _, t := range mm.tables {
		t.Reset()
	}
	if fm := mm.cfg.FlipModel; fm != nil {
		fm.Reset()
	}
	if fam := mm.cfg.FaultModel; fam != nil {
		fam.Reset()
	}
}

// Run drives every core's body concurrently under the deterministic
// interleaver: body(i, core i's front-end, yield) runs in its own
// goroutine, but quanta are serialised lowest-clock-first (ties to the
// lowest core index), so the interleaving — and everything it does to
// shared state — is bit-identical for any GOMAXPROCS value. Bodies
// must call yield between quanta (every few accesses) and must not
// touch another core's front-end. Returns the interleaver's grant log;
// see internal/core.
func (mm *MultiMachine) Run(body func(i int, m *Machine, yield func())) []int {
	streams := make([]core.Stream, len(mm.cores))
	for i := range mm.cores {
		i, m := i, mm.cores[i]
		streams[i] = core.Stream{
			Now: m.clock.Now,
			Run: func(yield func()) { body(i, m, yield) },
		}
	}
	return core.Run(streams)
}
