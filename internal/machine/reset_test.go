package machine

import (
	"reflect"
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// resetTrace is everything observable a workload leaves behind on a
// machine. The reset-equivalence difftest demands bit-identity of this
// whole record between a freshly constructed machine and a recycled
// one — that identity is the Reset/Recycle contract the cohort
// scheduler and the escalation machine pool rest on.
type resetTrace struct {
	Clock        timing.Cycles
	Counters     perf.Snapshot
	Hammer       dram.Stats
	Flips        []flip.Flip
	Attempts     uint64
	Misses       uint64
	Windows      uint64
	Faults       fault.Stats
	PrivFlushes  uint64
	PrivInvlpgs  uint64
	Materialized int
	Writes       uint64
}

func traceOf(m *Machine) resetTrace {
	tr := resetTrace{
		Clock:        m.Clock().Now(),
		Counters:     m.Counters().Snapshot(),
		Hammer:       m.HammerStats(),
		Materialized: m.Memory().Materialized(),
		Writes:       m.Memory().WriteCount(),
	}
	tr.PrivFlushes, tr.PrivInvlpgs = m.PrivilegedOps()
	if fm := m.FlipModel(); fm != nil {
		tr.Flips = append([]flip.Flip(nil), fm.Flips()...)
		tr.Attempts, tr.Misses, tr.Windows = fm.Attempts(), fm.Misses(), fm.Windows()
	}
	if fam := m.FaultModel(); fam != nil {
		tr.Faults = fam.Stats()
	}
	return tr
}

// resetVariant describes one seeded configuration of the property
// test: which optional engines are wired and with what seeds.
type resetVariant struct {
	name  string
	noise bool
	flip  bool
	fault bool
	seed  int64
}

func resetVariants() []resetVariant {
	return []resetVariant{
		{name: "quiet", seed: 3},
		{name: "noisy", noise: true, seed: 5},
		{name: "flip", flip: true, seed: 1},
		{name: "flip-seed9", flip: true, seed: 9},
		{name: "flip-fault", flip: true, fault: true, seed: 2},
		{name: "noisy-flip-fault", noise: true, flip: true, fault: true, seed: 7},
	}
}

// buildResetMachine constructs a fresh machine for the variant. Models
// are one-shot bound, so every call builds fresh ones.
func buildResetMachine(t *testing.T, v resetVariant) *Machine {
	t.Helper()
	cfg := SandyBridge()
	cfg.DRAM.HammerThreshold = 24
	cfg.DRAM.RefreshWindow = 25_000
	if v.noise {
		cfg.NoiseSeed = v.seed
		cfg.NoiseProb = 0.3
		cfg.NoiseMin = 100
		cfg.NoiseMax = 400
	}
	if v.flip {
		cfg.FlipModel = flip.MustNewModel(flip.ClassA(), v.seed)
	}
	if v.fault {
		fm, err := fault.NewModel(fault.Config{Class: fault.PairInvalidate, Seed: v.seed})
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultModel = fm
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// resetWorkload drives a seed-parameterised mix of everything the
// facade offers — stores (materializing victim-row content flips can
// land in), flush-hammer traffic across refresh windows, translations,
// probes, an invlpg — and returns the machine's trace.
func resetWorkload(m *Machine, seed int64) resetTrace {
	geom := m.DRAM().Config()
	rowA := uint64(100 + seed%7)
	above := geom.AddrOf(dram.Location{Row: rowA})
	below := geom.AddrOf(dram.Location{Row: rowA + 2})
	victim := geom.AddrOf(dram.Location{Row: rowA + 1})
	// Materialize victim-row frames so sampled flips can apply.
	for k := uint64(0); k < 8; k++ {
		m.Store64(victim+phys.Addr(k*512), ^uint64(0))
	}
	iters := 150 + int(seed%5)*40
	for i := 0; i < iters; i++ {
		m.Load(above)
		m.Flush(above)
		m.Load(below)
		m.Flush(below)
		if i%17 == 3 {
			m.Translate(above + phys.Addr(64*uint64(i%8)))
		}
		if i%29 == 11 {
			m.Probe(below)
		}
	}
	m.InvalidatePage(above)
	m.Load(above)
	return traceOf(m)
}

// TestResetEquivalence is the reset-equivalence difftest: over seeded
// configs (noise on/off, flip model, fault model), a machine that ran
// a dirtying workload and was recycled with Reset must produce a
// bit-identical Clock/PMC/HammerStats/Flips trace to a freshly
// constructed machine running the same workload.
func TestResetEquivalence(t *testing.T) {
	for _, v := range resetVariants() {
		t.Run(v.name, func(t *testing.T) {
			fresh := buildResetMachine(t, v)
			want := resetWorkload(fresh, v.seed)
			if v.flip && len(want.Flips) == 0 {
				t.Fatal("workload produced no flips; the property would be vacuous for this variant")
			}

			recycled := buildResetMachine(t, v)
			resetWorkload(recycled, v.seed+13) // dirty with a different workload
			recycled.Reset()
			got := resetWorkload(recycled, v.seed)

			if !reflect.DeepEqual(want, got) {
				t.Errorf("recycled trace diverged from fresh:\nfresh:    %+v\nrecycled: %+v", want, got)
			}
		})
	}
}

// TestResetWithModelsEquivalence pins the model-swap variant the
// escalation pool uses: recycling a machine with freshly built models
// must be indistinguishable from constructing a machine with those
// models.
func TestResetWithModelsEquivalence(t *testing.T) {
	v := resetVariant{name: "flip-fault", flip: true, fault: true, seed: 2}
	fresh := buildResetMachine(t, v)
	want := resetWorkload(fresh, v.seed)

	// Dirty a machine built with different seeds, then swap in models
	// matching the fresh machine's.
	dirty := buildResetMachine(t, resetVariant{flip: true, fault: true, seed: 11})
	resetWorkload(dirty, 11)
	fm := flip.MustNewModel(flip.ClassA(), v.seed)
	fam, err := fault.NewModel(fault.Config{Class: fault.PairInvalidate, Seed: v.seed})
	if err != nil {
		t.Fatal(err)
	}
	if err := dirty.ResetWithModels(fm, fam); err != nil {
		t.Fatal(err)
	}
	got := resetWorkload(dirty, v.seed)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("ResetWithModels trace diverged from fresh:\nfresh:    %+v\nrecycled: %+v", want, got)
	}

	// Swapping down to no models must behave like a model-free machine.
	quietWant := resetWorkload(buildResetMachine(t, resetVariant{seed: 3}), 3)
	if err := dirty.ResetWithModels(nil, nil); err != nil {
		t.Fatal(err)
	}
	if dirty.FlipModel() != nil || dirty.FaultModel() != nil {
		t.Fatal("models survived a nil rebind")
	}
	quietGot := resetWorkload(dirty, 3)
	if !reflect.DeepEqual(quietWant, quietGot) {
		t.Errorf("nil-model rebind diverged from a model-free machine:\nfresh:    %+v\nrecycled: %+v", quietWant, quietGot)
	}
}

// TestMultiResetEquivalence extends the difftest to the multi-tenant
// machine: a recycled MultiMachine must replay the interleaved
// workload bit-identically to a fresh one — per-core clocks, grant
// log, PMCs, hammer stats, flips, and both tenants' table state.
func TestMultiResetEquivalence(t *testing.T) {
	build := func() *MultiMachine {
		cfg := SandyBridge()
		cfg.DRAM.HammerThreshold = 24
		cfg.DRAM.RefreshWindow = 25_000
		cfg.FlipModel = flip.MustNewModel(flip.ClassB(), 4)
		return MustNewMulti(MultiConfig{Config: cfg, Cores: 2, Tenants: []int{0, 1}})
	}
	run := func(mm *MultiMachine) ([]int, []resetTrace, []int) {
		log := mm.Run(func(i int, m *Machine, yield func()) {
			base := phys.Addr(uint64(i) * (8 << 20))
			for n := 0; n < 300; n++ {
				m.Load(base + phys.Addr(uint64(n%96)*4096+uint64(n)*64))
				if n%8 == 7 {
					yield()
				}
			}
		})
		var traces []resetTrace
		for i := 0; i < mm.NumCores(); i++ {
			traces = append(traces, traceOf(mm.Core(i)))
		}
		var allocated []int
		for tn := 0; tn < mm.Tenants(); tn++ {
			allocated = append(allocated, mm.Tables(tn).Allocated())
		}
		return log, traces, allocated
	}

	wantLog, wantTraces, wantAlloc := run(build())

	mm := build()
	// Dirty with a different schedule, including cross-tenant mappings.
	mm.Run(func(i int, m *Machine, yield func()) {
		for n := 0; n < 150; n++ {
			m.Load(phys.Addr(uint64(i)*(4<<20) + uint64(n)*8192))
			if n%4 == 3 {
				yield()
			}
		}
	})
	mm.Reset()
	gotLog, gotTraces, gotAlloc := run(mm)

	if !reflect.DeepEqual(wantLog, gotLog) {
		t.Errorf("grant log diverged after recycle: fresh %v, recycled %v", wantLog, gotLog)
	}
	if !reflect.DeepEqual(wantTraces, gotTraces) {
		t.Errorf("per-core traces diverged after recycle:\nfresh:    %+v\nrecycled: %+v", wantTraces, gotTraces)
	}
	if !reflect.DeepEqual(wantAlloc, gotAlloc) {
		t.Errorf("table allocation diverged after recycle: fresh %v, recycled %v", wantAlloc, gotAlloc)
	}
}
