package machine

import (
	"testing"

	"pthammer/internal/phys"
)

// TestPremapIdentityMapsRange pins the kernel-style pre-fault path:
// Premap maps every page of the range eagerly (the PTE path exists
// before any access touches it) and leaves pages beyond the range to
// demand mapping.
func TestPremapIdentityMapsRange(t *testing.T) {
	m := MustNew(SandyBridge())
	const pages = 4
	if _, ok := m.PTEAddr(0, 1); ok {
		t.Fatal("fresh machine already has page 0 mapped")
	}

	m.Premap(0, pages*phys.FrameSize)
	for p := phys.Addr(0); p < pages; p++ {
		if _, ok := m.PTEAddr(p*phys.FrameSize, 1); !ok {
			t.Errorf("page %d not mapped after Premap", p)
		}
	}
	// A page in the next 2 MiB region needs its own last-level table;
	// Premap must not have built that path.
	if _, ok := m.PTEAddr(2<<20, 1); ok {
		t.Error("Premap built table paths beyond the requested range")
	}
}

// TestTableLayoutString pins the table-cell names the population and
// mt-* reports key their rows on — a renamed layout would silently
// reshuffle committed tables.
func TestTableLayoutString(t *testing.T) {
	cases := []struct {
		l    TableLayout
		want string
	}{
		{LayoutInterleaved, "interleaved"},
		{LayoutBlocked, "blocked"},
		{TableLayout(9), "layout(9)"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("TableLayout(%d).String() = %q, want %q", int(c.l), got, c.want)
		}
	}
}
