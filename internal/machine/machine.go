// Package machine is the facade over the whole simulated memory
// hierarchy. machine.New wires one phys.Memory, one timing.Clock, one
// perf.Counters bank, and the device chain — dTLB → sTLB → (stub) page
// walker for translation, L1 → L2 → LLC → DRAM banks for data — so
// that a single Load traverses every level exactly the way the paper's
// measured loads do, and clock deltas agree with counter deltas by
// construction. Every later algorithm PR (eviction sets, Figure 5/6
// sweeps, the hammer loop) programs against this type.
package machine

import (
	"fmt"

	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

// Config fully describes one simulated machine.
type Config struct {
	// MemBytes is the physical memory size; it must equal the DRAM
	// geometry's capacity so every physical address maps to a bank.
	MemBytes uint64
	// FreqHz is the core clock frequency.
	FreqHz uint64

	Lat  timing.LatencyTable
	DRAM dram.Config
	L1   cache.Config
	L2   cache.Config
	LLC  cache.Config
	TLB  tlb.Config

	// Noise parameters for timed measurements; NoiseProb 0 keeps the
	// machine fully deterministic.
	NoiseSeed          int64
	NoiseProb          float64
	NoiseMin, NoiseMax timing.Cycles
}

// SandyBridge returns a preset modelled on the paper's Sandy
// Bridge-class test machine: 1 GiB of DDR3 across 2 channels × 1 rank
// × 8 banks with 8 KiB rows, 32 KiB/256 KiB/8 MiB caches, a 64-entry
// dTLB over a 512-entry sTLB, and a 64 ms refresh window at 3.4 GHz.
func SandyBridge() Config {
	const freq = 3_400_000_000
	return Config{
		MemBytes: 1 << 30,
		FreqHz:   freq,
		Lat:      timing.DefaultLatencies(),
		DRAM: dram.Config{
			Channels:        2,
			RanksPerChannel: 1,
			BanksPerRank:    8,
			Rows:            8192,
			RowBytes:        8192,
			// 64 ms at 3.4 GHz.
			RefreshWindow: timing.Cycles(freq * 64 / 1000),
			// First-flip activation count reported for the paper's
			// weakest module class.
			HammerThreshold: 139_000,
		},
		L1:  cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:  cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
		LLC: cache.Config{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
		TLB: tlb.Config{L1Entries: 64, L1Ways: 4, L2Entries: 512, L2Ways: 4},
	}
}

// Machine owns the shared simulator state and the wired device chain.
type Machine struct {
	cfg      Config
	mem      *phys.Memory
	clock    *timing.Clock
	noise    *timing.Noise
	counters *perf.Counters

	tlb    *tlb.TLB
	caches *cache.Hierarchy
	dram   *dram.DRAM

	// noisy caches NoiseProb != 0 so the quiet (deterministic) hot path
	// skips the noise sampler entirely.
	noisy bool
}

// stubWalker stands in for the hardware page walker until the real one
// (which fetches PTEs through the cache hierarchy, firing
// L1PTEMemoryFetch) lands in a later PR. It charges a fixed four-level
// walk and counts the completed walk.
type stubWalker struct {
	clock    *timing.Clock
	counters *perf.Counters
	stepCost timing.Cycles
}

func (w *stubWalker) Lookup(mem.Access) mem.Result {
	const levels = 4 // PML4 → PDPT → PD → PT
	cost := w.stepCost * levels
	w.clock.Advance(cost)
	w.counters.Inc(perf.PageWalkCompleted)
	return mem.Result{Latency: cost, Hit: false, Source: mem.LevelPageWalk}
}

// New validates the config and wires the machine.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Lat.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.DRAM.Validate(); err != nil {
		return nil, err
	}
	if cap := cfg.DRAM.Capacity(); cap != cfg.MemBytes {
		return nil, fmt.Errorf("machine: DRAM capacity %d != memory size %d", cap, cfg.MemBytes)
	}
	pmem, err := phys.New(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	clock, err := timing.NewClock(cfg.FreqHz)
	if err != nil {
		return nil, err
	}
	noise, err := timing.NewNoise(cfg.NoiseSeed, cfg.NoiseProb, cfg.NoiseMin, cfg.NoiseMax)
	if err != nil {
		return nil, err
	}
	counters := &perf.Counters{}

	d, err := dram.New(cfg.DRAM, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	caches, err := cache.New(cfg.L1, cfg.L2, cfg.LLC, d, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	walker := &stubWalker{clock: clock, counters: counters, stepCost: cfg.Lat.PageWalkStep}
	t, err := tlb.New(cfg.TLB, walker, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:      cfg,
		mem:      pmem,
		clock:    clock,
		noise:    noise,
		counters: counters,
		tlb:      t,
		caches:   caches,
		dram:     d,
		noisy:    cfg.NoiseProb != 0,
	}, nil
}

// MustNew is New but panics on error; intended for tests and presets.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Load performs one demand load at the physical address: translation
// through the TLB chain, then data through the cache chain. The result
// aggregates both halves — Latency is the total cycles charged
// (including any noise spike), Hit/Source report where the data was
// served. Panics on an out-of-range address, mirroring phys.
func (m *Machine) Load(a phys.Addr) mem.Result {
	if !m.mem.Contains(a) {
		panic(fmt.Sprintf("machine: load at %#x outside %d-byte memory", uint64(a), m.mem.Size()))
	}
	acc := mem.Access{Addr: a, Kind: mem.KindLoad}
	tres := m.tlb.Lookup(acc)
	cres := m.caches.Lookup(acc)
	total := tres.Latency + cres.Latency
	if m.noisy {
		if spike := m.noise.Sample(); spike > 0 {
			m.clock.Advance(spike)
			total += spike
		}
	}
	return mem.Result{Latency: total, Hit: tres.Hit && cres.Hit, Source: cres.Source}
}

// LoadN performs Load on every address in order, appending the
// per-load results to out and returning the extended slice. Passing a
// reused buffer (`buf = m.LoadN(addrs, buf[:0])`) keeps batched
// measurement loops — the sweep engine's inner loop — allocation-free;
// the single capacity check up front replaces a per-load append grow.
func (m *Machine) LoadN(addrs []phys.Addr, out []mem.Result) []mem.Result {
	if need := len(out) + len(addrs); cap(out) < need {
		grown := make([]mem.Result, len(out), need)
		copy(grown, out)
		out = grown
	}
	for _, a := range addrs {
		out = append(out, m.Load(a))
	}
	return out
}

// Flush models clflush on the address's line: it is dropped from every
// cache level and the instruction cost is charged and returned. The
// TLB is untouched — exactly why the paper needs eviction-based TLB
// flushing from user space. Panics on an out-of-range address, like
// Load.
func (m *Machine) Flush(a phys.Addr) timing.Cycles {
	if !m.mem.Contains(a) {
		panic(fmt.Sprintf("machine: flush at %#x outside %d-byte memory", uint64(a), m.mem.Size()))
	}
	return m.caches.Flush(a)
}

// HammerStats reports the DRAM's per-refresh-window activation
// bookkeeping: total ACTs and which rows are currently hammer-eligible.
func (m *Machine) HammerStats() dram.Stats { return m.dram.HammerStats() }

// Accessors for the shared state; algorithm code reads these the way
// the paper's tooling reads rdtsc and the PMC kernel module.

// Clock returns the machine's cycle clock.
func (m *Machine) Clock() *timing.Clock { return m.clock }

// Counters returns the machine's performance-counter bank.
func (m *Machine) Counters() *perf.Counters { return m.counters }

// Memory returns the backing physical memory.
func (m *Machine) Memory() *phys.Memory { return m.mem }

// DRAM returns the DRAM device (for address mapping and stats).
func (m *Machine) DRAM() *dram.DRAM { return m.dram }

// Caches returns the cache hierarchy.
func (m *Machine) Caches() *cache.Hierarchy { return m.caches }

// TLB returns the TLB chain.
func (m *Machine) TLB() *tlb.TLB { return m.tlb }

// Config returns the configuration the machine was built with.
func (m *Machine) Config() Config { return m.cfg }
