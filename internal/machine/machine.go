// Package machine is the facade over the whole simulated memory
// hierarchy. machine.New wires one phys.Memory, one timing.Clock, one
// perf.Counters bank, and the device chain — dTLB → sTLB → hardware
// page walker for translation, L1 → L2 → LLC → DRAM banks for data —
// so that a single Load traverses every level exactly the way the
// paper's measured loads do, and clock deltas agree with counter
// deltas by construction. Every later algorithm PR (eviction sets,
// Figure 5/6 sweeps, the hammer loop) programs against this type.
//
// Translation is real: the machine reserves the top of physical
// memory as the kernel's page-table pool, identity-maps pages there on
// first touch (demand paging), and the walker fetches the actual PTE
// bytes through the cache hierarchy as mem.KindPTEFetch accesses — so
// a TLB-missing load opens DRAM rows in the table region exactly the
// way PThammer's implicit accesses do.
package machine

import (
	"fmt"

	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/mem"
	"pthammer/internal/pagetable"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/ptwalk"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

// Config fully describes one simulated machine.
type Config struct {
	// MemBytes is the physical memory size; it must equal the DRAM
	// geometry's capacity so every physical address maps to a bank.
	MemBytes uint64
	// FreqHz is the core clock frequency.
	FreqHz uint64

	Lat  timing.LatencyTable
	DRAM dram.Config
	L1   cache.Config
	L2   cache.Config
	LLC  cache.Config
	TLB  tlb.Config
	// Walk sizes the walker's paging-structure caches; the zero value
	// selects ptwalk.Defaults.
	Walk ptwalk.Config

	// Noise parameters for timed measurements; NoiseProb 0 keeps the
	// machine fully deterministic.
	NoiseSeed          int64
	NoiseProb          float64
	NoiseMin, NoiseMax timing.Cycles

	// FlipModel, when non-nil, is the disturbance-error engine: New
	// binds it to this machine's physical memory and DRAM geometry and
	// subscribes it to end-of-refresh-window victim reports, so rows
	// hammered past HammerThreshold within a window can actually flip
	// bits (read the damage back with Flips). Nil — the default — keeps
	// memory ideal: hammering is detected but never corrupts.
	FlipModel *flip.Model

	// FaultModel, when non-nil, is the adversity engine: New binds it to
	// this machine's DRAM geometry, hooks it into the Prime/Probe paths,
	// and (when a FlipModel is also configured) subscribes it to the
	// flip engine's injection points, so the attack path can be
	// exercised under the fault classes in internal/fault. Nil — the
	// default — costs nothing: like the noise sampler, the hot paths
	// cache its absence and skip every hook.
	FaultModel *fault.Model
}

// SandyBridge returns a preset modelled on the paper's Sandy
// Bridge-class test machine: 1 GiB of DDR3 across 2 channels × 1 rank
// × 8 banks with 8 KiB rows, 32 KiB/256 KiB/8 MiB caches, a 64-entry
// dTLB over a 512-entry sTLB, and a 64 ms refresh window at 3.4 GHz.
func SandyBridge() Config {
	const freq = 3_400_000_000
	return Config{
		MemBytes: 1 << 30,
		FreqHz:   freq,
		Lat:      timing.DefaultLatencies(),
		DRAM: dram.Config{
			Channels:        2,
			RanksPerChannel: 1,
			BanksPerRank:    8,
			Rows:            8192,
			RowBytes:        8192,
			// 64 ms at 3.4 GHz.
			RefreshWindow: timing.Cycles(freq * 64 / 1000),
			// First-flip activation count reported for the paper's
			// weakest module class.
			HammerThreshold: 139_000,
		},
		L1:  cache.Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64},
		L2:  cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
		LLC: cache.Config{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64},
		TLB: tlb.Config{L1Entries: 64, L1Ways: 4, L2Entries: 512, L2Ways: 4},
	}
}

// Machine owns one core's front-end — clock, counters, TLB chain,
// walker, private cache levels — plus handles to the state it shares
// with any co-resident cores: physical memory, the inclusive LLC, the
// banked DRAM, and its address space's page tables. A single-core
// machine (New) owns all of that state outright; NewMulti builds N
// Machines over one shared memory system.
type Machine struct {
	cfg      Config
	core     int
	mem      *phys.Memory
	clock    *timing.Clock
	noise    *timing.Noise
	counters *perf.Counters

	tlb    *tlb.TLB
	walker *ptwalk.Walker
	tables *pagetable.Tables
	caches *cache.Hierarchy
	dram   *dram.DRAM
	dport  *dram.Port

	// noisy caches NoiseProb != 0 so the quiet (deterministic) hot path
	// skips the noise sampler entirely; faulty does the same for the
	// fault-injection hooks.
	noisy  bool
	faulty bool

	// privFlushes/privInvlpgs count the kernel-only operations issued on
	// this machine. PThammer's attacker has neither clflush on kernel
	// lines nor invlpg, so the flush-free eviction-set paths assert
	// these counters never move (see PrivilegedOps).
	privFlushes uint64
	privInvlpgs uint64
}

// validate checks the config invariants shared by New and NewMulti.
func (cfg Config) validate() error {
	if err := cfg.Lat.Validate(); err != nil {
		return err
	}
	if err := cfg.DRAM.Validate(); err != nil {
		return err
	}
	if cap := cfg.DRAM.Capacity(); cap != cfg.MemBytes {
		return fmt.Errorf("machine: DRAM capacity %d != memory size %d", cap, cfg.MemBytes)
	}
	return nil
}

// New validates the config and wires a single-core machine: the core's
// front-end built by buildCore over memory, LLC and DRAM it has all to
// itself, with the page-table pool contiguous at the top of physical
// memory — the layout every single-core scenario and benchmark is
// calibrated against.
func New(cfg Config) (*Machine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	pmem, err := phys.New(cfg.MemBytes)
	if err != nil {
		return nil, err
	}
	clock, err := timing.NewClock(cfg.FreqHz)
	if err != nil {
		return nil, err
	}
	counters := &perf.Counters{}
	d, err := dram.New(cfg.DRAM, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	shared, err := cache.NewShared(cfg.LLC, cfg.Lat)
	if err != nil {
		return nil, err
	}
	// The kernel's page-table pool sits at the top of physical memory,
	// sized so identity-mapping the whole machine can never exhaust it.
	tableFrames := pagetable.FramesToMap(cfg.MemBytes)
	totalFrames := cfg.MemBytes / phys.FrameSize
	if tableFrames >= totalFrames {
		return nil, fmt.Errorf("machine: %d-byte memory too small for its %d-frame page-table pool",
			cfg.MemBytes, tableFrames)
	}
	tables, err := pagetable.New(pmem, phys.Frame(totalFrames-tableFrames), tableFrames)
	if err != nil {
		return nil, err
	}
	m, err := buildCore(cfg, 0, pmem, clock, counters, d, shared, tables)
	if err != nil {
		return nil, err
	}
	if err := bindModels(cfg, pmem, d); err != nil {
		return nil, err
	}
	return m, nil
}

// buildCore wires one core's front-end — noise source, DRAM port,
// private cache levels over the shared LLC, page walker and TLB chain
// — charging everything to the given clock and counters. The caller
// owns the shared pieces (memory, DRAM, LLC, the core's address-space
// tables) and binds any flip/fault models afterwards.
func buildCore(cfg Config, core int, pmem *phys.Memory, clock *timing.Clock, counters *perf.Counters, d *dram.DRAM, shared *cache.SharedLLC, tables *pagetable.Tables) (*Machine, error) {
	// Offset the seed per core so noisy cores draw independent spike
	// streams; with NoiseProb 0 (the multi-core determinism default)
	// the source is never sampled.
	noise, err := timing.NewNoise(cfg.NoiseSeed+int64(core), cfg.NoiseProb, cfg.NoiseMin, cfg.NoiseMax)
	if err != nil {
		return nil, err
	}
	dport, err := d.NewPort(core, clock, counters)
	if err != nil {
		return nil, err
	}
	caches, err := cache.NewCore(cfg.L1, cfg.L2, shared, core, dport, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	walker, err := ptwalk.New(cfg.Walk, tables, caches, pmem, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	// Demand paging: first touch of a page identity-maps it. The
	// handler maps the whole path for va, so the walk's re-read of the
	// faulting entry — and every level below it — finds it present.
	walker.Fault = func(va phys.Addr, _ int) {
		tables.Map(va, phys.FrameOf(va))
	}
	t, err := tlb.New(cfg.TLB, walker, clock, counters, cfg.Lat)
	if err != nil {
		return nil, err
	}
	return &Machine{
		cfg:      cfg,
		core:     core,
		mem:      pmem,
		clock:    clock,
		noise:    noise,
		counters: counters,
		tlb:      t,
		walker:   walker,
		tables:   tables,
		caches:   caches,
		dram:     d,
		dport:    dport,
		noisy:    cfg.NoiseProb != 0,
		faulty:   cfg.FaultModel != nil,
	}, nil
}

// bindModels attaches the configured flip and fault models to the
// machine's memory system. It runs last — Bind is one-shot, and
// binding before a later constructor could fail would poison the model
// for a retried New with a corrected config.
func bindModels(cfg Config, pmem *phys.Memory, d *dram.DRAM) error {
	if cfg.FlipModel != nil {
		if err := cfg.FlipModel.Bind(pmem, cfg.DRAM); err != nil {
			return err
		}
		d.SetWindowHook(cfg.FlipModel.OnWindow)
	}
	if cfg.FaultModel != nil {
		if err := cfg.FaultModel.Bind(cfg.DRAM); err != nil {
			return err
		}
		if cfg.FlipModel != nil {
			if err := cfg.FlipModel.SetInjector(cfg.FaultModel); err != nil {
				return err
			}
		}
	}
	return nil
}

// MustNew is New but panics on error; intended for tests and presets.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// access is the shared demand-access path: translation through the
// TLB chain (walking the page tables on a full miss), then the data
// access through the cache chain at the physical address the
// translation resolved. Under the machine's identity mapping the two
// coincide — until a flipped page-table bit makes them diverge. It
// returns that physical address alongside the aggregate result —
// Latency is the total cycles charged (including any noise spike),
// Hit/Source report where the data was served. Panics on an
// out-of-range virtual address, mirroring phys, and on a (corrupted)
// translation that resolves outside memory.
//
//pthammer:noalloc
func (m *Machine) access(a phys.Addr, kind mem.Kind) (phys.Addr, mem.Result) {
	if !m.mem.Contains(a) {
		panic(fmt.Sprintf("machine: %v at %#x outside %d-byte memory", kind, uint64(a), m.mem.Size()))
	}
	frame, tres := m.tlb.Translate(mem.Access{Addr: a, Kind: kind})
	pa := frame.Addr() + phys.Addr(phys.Offset(a))
	if !m.mem.Contains(pa) {
		panic(fmt.Sprintf("machine: %#x translates to %#x outside %d-byte memory (corrupted page tables?)",
			uint64(a), uint64(pa), m.mem.Size()))
	}
	cres := m.caches.Lookup(mem.Access{Addr: pa, Kind: kind})
	total := tres.Latency + cres.Latency
	if m.noisy {
		if spike := m.noise.Sample(); spike > 0 {
			m.clock.Advance(spike)
			total += spike
		}
	}
	return pa, mem.Result{Latency: total, Hit: tres.Hit && cres.Hit, Source: cres.Source}
}

// Load performs one demand load at the virtual address — the shared
// access path with nothing written back.
//
//pthammer:noalloc
func (m *Machine) Load(a phys.Addr) mem.Result {
	_, res := m.access(a, mem.KindLoad)
	return res
}

// Store64 performs one demand store of a little-endian 64-bit value at
// the virtual address: the same access path as Load (write-allocate
// through the cache chain), then the bytes written to physical memory
// at the resolved address. It is a plain user store — no privilege
// involved — which is exactly what makes it the escalation demo's
// final step: once a flipped PTE maps an attacker page onto a
// page-table frame, Store64 through that page rewrites page-table
// entries. The address must be 8-byte aligned (phys panics otherwise).
//
//pthammer:noalloc
func (m *Machine) Store64(a phys.Addr, v uint64) mem.Result {
	pa, res := m.access(a, mem.KindStore)
	m.mem.Write64(pa, v)
	return res
}

// Translate resolves the virtual address the way a load would —
// through the TLB, walking (and demand-mapping) on a miss, charging
// the shared clock — and returns the physical frame plus the
// translation-side result. Tests use it to observe what a corrupted
// page table resolves to without the data-side access.
func (m *Machine) Translate(a phys.Addr) (phys.Frame, mem.Result) {
	if !m.mem.Contains(a) {
		panic(fmt.Sprintf("machine: translate at %#x outside %d-byte memory", uint64(a), m.mem.Size()))
	}
	return m.tlb.Translate(mem.Access{Addr: a, Kind: mem.KindLoad})
}

// InvalidatePage is the simulated invlpg: it drops the page's
// translation from both TLB levels and its entries from the walker's
// paging-structure caches. Only the kernel can execute it — the paper's
// attacker substitutes TLB eviction sets — so scenarios use it as the
// privileged baseline. It charges no cycles and reports whether any
// structure held state for the page.
//
//pthammer:noalloc
func (m *Machine) InvalidatePage(a phys.Addr) bool {
	m.privInvlpgs++
	inTLB := m.tlb.Invalidate(a)
	inPS := m.walker.Invalidate(a)
	return inTLB || inPS
}

// PrivilegedOps reports how many privileged maintenance operations —
// Flush (clflush on arbitrary lines) and InvalidatePage (invlpg) — have
// been issued since the machine was built. The eviction-set tests
// assert the deltas stay zero across construction and hammering: the
// whole point of Algorithm 1 is doing without them.
func (m *Machine) PrivilegedOps() (flushes, invlpgs uint64) {
	return m.privFlushes, m.privInvlpgs
}

// PTEAddr returns the physical address of the page-table entry
// consulted at the given level (1 = PT … 4 = PML4) when translating a.
// ok is false while the path is not yet mapped. Hammer scenarios use
// it to aim flushes at the cache lines holding PTEs.
func (m *Machine) PTEAddr(a phys.Addr, level int) (phys.Addr, bool) {
	return m.tables.EntryAddr(a, level)
}

// Premap eagerly identity-maps every page of [start, start+bytes),
// the way a kernel pre-faults a region. Benchmarks use it to pull
// demand-mapping table writes out of measured loops.
func (m *Machine) Premap(start phys.Addr, bytes uint64) {
	m.tables.MapRange(start, bytes)
}

// LoadN performs Load on every address in order, appending the
// per-load results to out and returning the extended slice. Passing a
// reused buffer (`buf = m.LoadN(addrs, buf[:0])`) keeps batched
// measurement loops — the sweep engine's inner loop — allocation-free;
// the single capacity check up front replaces a per-load append grow.
//
//pthammer:noalloc
func (m *Machine) LoadN(addrs []phys.Addr, out []mem.Result) []mem.Result {
	if need := len(out) + len(addrs); cap(out) < need {
		grown := make([]mem.Result, len(out), need) //pthammer:alloc-ok one up-front grow; reused buffers never hit it
		copy(grown, out)
		out = grown
	}
	for _, a := range addrs {
		out = append(out, m.Load(a)) //pthammer:alloc-ok capacity reserved above, append never grows
	}
	return out
}

// Prime issues the access stream: one demand Load per address, in
// order, discarding the per-load results and returning the total cycles
// charged. This is the batch primitive eviction sets are driven with —
// walking a measured set of conflicting pages (or lines) is the
// unprivileged attacker's substitute for invlpg and clflush, so the
// loop body must stay allocation-free for the hammer hot path.
//
//pthammer:noalloc
func (m *Machine) Prime(addrs []phys.Addr) timing.Cycles {
	if m.faulty {
		return m.primeFaulted(addrs)
	}
	var total timing.Cycles
	for _, a := range addrs {
		total += m.Load(a).Latency
	}
	return total
}

// primeFaulted is Prime under a fault model: the model may rotate the
// walk order (system activity reordering the access stream) and drop
// individual members (the line/translation got re-fetched between the
// drop and the measurement). Off the quiet path this is behaviourally
// identical to Prime — every hook returns its zero fast-path value.
//
//pthammer:noalloc
func (m *Machine) primeFaulted(addrs []phys.Addr) timing.Cycles {
	n := len(addrs)
	if n == 0 {
		return 0
	}
	fm := m.cfg.FaultModel
	start := fm.PrimeStart(n)
	var total timing.Cycles
	for i := 0; i < n; i++ {
		j := start + i
		if j >= n {
			j -= n
		}
		if fm.DropMember() {
			continue
		}
		total += m.Load(addrs[j]).Latency
	}
	return total
}

// ProbeResult couples one timed load with the performance-counter
// deltas it produced — the paper's measurement primitive: rdtsc around
// the load plus the PMC kernel module reading dtlb_load_misses.*,
// page_walker.* and longest_lat_cache.* as ground truth.
type ProbeResult struct {
	mem.Result
	// Walked reports dtlb_load_misses.miss_causes_a_walk advanced: the
	// load missed both TLB levels and the hardware walker ran.
	Walked bool
	// STLBHit reports dtlb_load_misses.stlb_hit advanced: the load
	// missed only the first-level TLB.
	STLBHit bool
	// LeafFromDRAM reports page_walker.l1pte_memory_fetch advanced: the
	// walk's leaf PTE came from DRAM — an implicit hammer access.
	LeafFromDRAM bool
	// LLCMiss reports longest_lat_cache.miss advanced somewhere in the
	// load (data or PTE fetch).
	LLCMiss bool
}

// Probe performs one Load bracketed by a PMC snapshot and returns the
// result together with the decoded counter deltas. Eviction-set
// construction (Algorithm 1) uses it to decide whether a candidate
// stream really evicted the target translation or PTE line; it charges
// exactly what the Load charges and allocates nothing.
//
//pthammer:noalloc
func (m *Machine) Probe(a phys.Addr) ProbeResult {
	snap := m.counters.Snapshot()
	res := m.Load(a)
	if m.faulty {
		// Threshold drift: the fault model may inflate this timed probe.
		// The spike is charged to the shared clock so the clock-delta /
		// Result-latency agreement invariant holds under drift too.
		if extra := m.cfg.FaultModel.ProbeJitter(); extra > 0 {
			m.clock.Advance(extra)
			res.Latency += extra
		}
	}
	return ProbeResult{
		Result:       res,
		Walked:       snap.Advanced(m.counters, perf.DTLBLoadMissesWalk),
		STLBHit:      snap.Advanced(m.counters, perf.DTLBLoadMissesL1),
		LeafFromDRAM: snap.Advanced(m.counters, perf.L1PTEMemoryFetch),
		LLCMiss:      snap.Advanced(m.counters, perf.LongestLatCacheMiss),
	}
}

// Flush models clflush on the address's line: it is dropped from every
// cache level and the instruction cost is charged and returned. The
// TLB is untouched — exactly why the paper needs eviction-based TLB
// flushing from user space. Panics on an out-of-range address, like
// Load.
//
//pthammer:noalloc
func (m *Machine) Flush(a phys.Addr) timing.Cycles {
	if !m.mem.Contains(a) {
		panic(fmt.Sprintf("machine: flush at %#x outside %d-byte memory", uint64(a), m.mem.Size()))
	}
	m.privFlushes++
	return m.caches.Flush(a)
}

// HammerStats reports the DRAM's per-refresh-window activation
// bookkeeping: total ACTs and which rows are currently hammer-eligible.
// Window rotation is checked against this core's clock.
func (m *Machine) HammerStats() dram.Stats { return m.dport.HammerStats() }

// ResetRefreshWindow discards the DRAM's current refresh window —
// activation counts and victim pressure drop to zero, banks precharge,
// and no flip-model report fires for the discarded activity. Scenario
// construction (aggressor discovery, eviction-set building) calls it
// so the first measured window starts from zero pressure instead of
// inheriting construction traffic.
//
//pthammer:noalloc
func (m *Machine) ResetRefreshWindow() { m.dport.ResetWindow() }

// resetFrontEnd rewinds this core's private state to construction
// time: clock rebased to cycle 0, PMC bank cleared, noise stream
// reseeded, TLB levels and paging-structure caches and private L1/L2
// emptied, privileged-operation counters zeroed. Shared state (LLC,
// DRAM, physical memory, page tables, models) is deliberately not
// touched — on a multi-core machine it must be reset exactly once, by
// the owner of the whole machine.
func (m *Machine) resetFrontEnd() {
	m.clock.Reset()
	m.counters.Reset()
	m.noise.Reset()
	m.tlb.Reset()
	m.walker.Reset()
	m.caches.Reset()
	m.privFlushes, m.privInvlpgs = 0, 0
}

// resetShared rewinds the memory system this machine fronts: the
// shared LLC, the DRAM device (window, per-row ACT epochs, bank
// arbitration), physical memory (all frames back to holes), and the
// page-table pool (scrubbed, re-bump-allocatable, fresh root). Order
// matters: the DRAM reset anchors its new window at this core's
// already-rebased clock, and memory is reset before the tables so the
// re-allocated root is the only frame the recycled machine
// materializes — exactly what a fresh construction materializes.
func (m *Machine) resetShared() {
	m.caches.Shared().Reset()
	m.dport.Reset()
	m.mem.Reset()
	m.tables.Reset()
}

// Reset recycles a single-core machine under the Reset/Recycle
// contract (CONTRIBUTING.md): after Reset, the machine is
// observationally identical to a freshly constructed machine.New(cfg)
// — same clock base, counters, cache/TLB/walker state, DRAM window
// bookkeeping, hole-only memory, one-root page tables, and rewound
// flip/fault models (still bound, streams reseeded). The
// reset-equivalence difftest in machine_reset_test.go pins the
// contract: recycled and fresh machines produce bit-identical
// Clock/PMC/HammerStats/Flips traces for the same workload.
//
// Reset is for machines that own their whole memory system (built with
// New). Cores of a MultiMachine share theirs; recycle those with
// MultiMachine.Reset instead.
func (m *Machine) Reset() {
	m.resetFrontEnd()
	m.resetShared()
	if m.cfg.FlipModel != nil {
		m.cfg.FlipModel.Reset()
	}
	if m.cfg.FaultModel != nil {
		m.cfg.FaultModel.Reset()
	}
}

// ResetWithModels is Reset with a model swap: the machine recycles as
// in Reset, but binds the given freshly built (never-bound) flip and
// fault models in place of the old ones, exactly as construction would
// have. Either may be nil. The escalation machine pool uses this: each
// RunEscalationResilient call brings its own (profile, seed)-stamped
// models to a recycled machine instead of constructing a whole new
// one. On error the machine's models are in an undefined state; do not
// reuse it without a successful rebind.
func (m *Machine) ResetWithModels(fm *flip.Model, fam *fault.Model) error {
	m.resetFrontEnd()
	m.resetShared()
	cfg := m.cfg
	cfg.FlipModel, cfg.FaultModel = fm, fam
	// bindModels only installs a hook when a flip model is present, so
	// drop the old subscription first: a nil fm must leave no hook.
	m.dram.SetWindowHook(nil)
	if err := bindModels(cfg, m.mem, m.dram); err != nil {
		return err
	}
	m.cfg = cfg
	m.faulty = fam != nil
	return nil
}

// Flips returns the disturbance errors the configured flip model has
// produced so far, in occurrence order, or nil when the machine was
// built without a FlipModel. The slice is the model's own record:
// callers must not mutate it.
func (m *Machine) Flips() []flip.Flip {
	if m.cfg.FlipModel == nil {
		return nil
	}
	return m.cfg.FlipModel.Flips()
}

// FlipModel returns the machine's disturbance-error engine, nil when
// none was configured.
func (m *Machine) FlipModel() *flip.Model { return m.cfg.FlipModel }

// FaultModel returns the machine's fault-injection engine, nil when the
// machine runs fault-free.
func (m *Machine) FaultModel() *fault.Model { return m.cfg.FaultModel }

// Accessors for the shared state; algorithm code reads these the way
// the paper's tooling reads rdtsc and the PMC kernel module.

// Core returns this front-end's core index: 0 on a single-core
// machine, the position in the NewMulti core list otherwise.
func (m *Machine) Core() int { return m.core }

// Clock returns this core's cycle clock.
//
//pthammer:noalloc
func (m *Machine) Clock() *timing.Clock { return m.clock }

// Counters returns the machine's performance-counter bank.
func (m *Machine) Counters() *perf.Counters { return m.counters }

// Memory returns the backing physical memory.
func (m *Machine) Memory() *phys.Memory { return m.mem }

// DRAM returns the DRAM device (for address mapping and stats).
func (m *Machine) DRAM() *dram.DRAM { return m.dram }

// Caches returns the cache hierarchy.
func (m *Machine) Caches() *cache.Hierarchy { return m.caches }

// TLB returns the TLB chain.
func (m *Machine) TLB() *tlb.TLB { return m.tlb }

// Walker returns the hardware page walker.
func (m *Machine) Walker() *ptwalk.Walker { return m.walker }

// PageTables returns the machine's page tables.
func (m *Machine) PageTables() *pagetable.Tables { return m.tables }

// Config returns the configuration the machine was built with.
func (m *Machine) Config() Config { return m.cfg }
