package machine

import (
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/mem"
	"pthammer/internal/pagetable"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

func TestSandyBridgeConfigIsCoherent(t *testing.T) {
	cfg := SandyBridge()
	if err := cfg.Lat.Validate(); err != nil {
		t.Fatalf("preset latency table invalid: %v", err)
	}
	if got := cfg.DRAM.Capacity(); got != cfg.MemBytes {
		t.Fatalf("DRAM capacity %d != MemBytes %d", got, cfg.MemBytes)
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("New(SandyBridge()): %v", err)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cfg := SandyBridge()
	cfg.MemBytes /= 2 // no longer matches the DRAM geometry
	if _, err := New(cfg); err == nil {
		t.Error("capacity mismatch accepted")
	}

	cfg = SandyBridge()
	cfg.Lat.TLBL1Hit = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid latency table accepted")
	}

	cfg = SandyBridge()
	cfg.FreqHz = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero frequency accepted")
	}

	cfg = SandyBridge()
	cfg.NoiseProb = 2
	if _, err := New(cfg); err == nil {
		t.Error("invalid noise config accepted")
	}
}

// TestColdThenWarmLoadEndToEnd is the acceptance test: one cold load
// traverses TLB miss → 4-level page walk whose PTE fetches go through
// the caches into DRAM → LLC miss → DRAM activation, a warm repeat
// hits the dTLB and L1, and the latency gap agrees with the
// perf-counter deltas and the shared clock.
func TestColdThenWarmLoadEndToEnd(t *testing.T) {
	m := MustNew(SandyBridge())
	lat := m.Config().Lat
	a := phys.Addr(0x1234560)

	start := m.Clock().Now()
	snap := m.Counters().Snapshot()

	cold := m.Load(a)
	if cold.Hit || cold.Source != mem.LevelDRAM {
		t.Fatalf("cold load = %+v, want DRAM miss", cold)
	}
	// The walk fetched one entry per level plus the data line: five
	// cache traversals, each missing to DRAM, plus four walk steps. The
	// exact DRAM cycles depend on which table frames share rows, so
	// bound rather than enumerate; the clock check below pins exactness.
	minCold := 4*lat.PageWalkStep + 4*lat.DRAMRowHit + lat.DRAMRowClosed
	maxCold := 4*lat.PageWalkStep + 5*lat.DRAMRowConflict
	if cold.Latency < minCold || cold.Latency > maxCold {
		t.Fatalf("cold latency = %d, want in [%d, %d]", cold.Latency, minCold, maxCold)
	}
	for _, c := range []struct {
		ev   perf.Event
		want uint64
	}{
		{perf.DTLBLoadMissesWalk, 1},
		{perf.PageWalkCompleted, 1},
		{perf.WalkStepPML4E, 1},
		{perf.WalkStepPDPTE, 1},
		{perf.WalkStepPDE, 1},
		{perf.WalkStepPTE, 1},
		{perf.L1PTEMemoryFetch, 1},
		{perf.PSCacheHit, 0},
		{perf.LLCReference, 5}, // 4 PTE fetches + the data line
		{perf.LongestLatCacheMiss, 5},
		{perf.DRAMRowConflicts, 0},
		{perf.DTLBLoadMissesL1, 0},
	} {
		if got := snap.Delta(m.Counters(), c.ev); got != c.want {
			t.Errorf("cold %v delta = %d, want %d", c.ev, got, c.want)
		}
	}
	// Every activation this load caused is in the table region or the
	// data row: at least the data row and the PT row activated.
	if got := snap.Delta(m.Counters(), perf.DRAMActivate); got < 2 || got > 5 {
		t.Errorf("cold DRAMActivate delta = %d, want 2..5", got)
	}

	snap = m.Counters().Snapshot()
	warm := m.Load(a)
	if !warm.Hit || warm.Source != mem.LevelL1 {
		t.Fatalf("warm load = %+v, want L1 hit", warm)
	}
	wantWarm := lat.TLBL1Hit + lat.L1Hit
	if warm.Latency != wantWarm {
		t.Fatalf("warm latency = %d, want %d", warm.Latency, wantWarm)
	}
	for _, ev := range []perf.Event{
		perf.DTLBLoadMissesWalk, perf.PageWalkCompleted, perf.PSCacheHit,
		perf.LLCReference, perf.LongestLatCacheMiss, perf.DRAMActivate,
	} {
		if got := snap.Delta(m.Counters(), ev); got != 0 {
			t.Errorf("warm %v delta = %d, want 0", ev, got)
		}
	}

	if cold.Latency <= warm.Latency {
		t.Fatalf("cold (%d) not slower than warm (%d)", cold.Latency, warm.Latency)
	}
	// Clock and reported latencies agree by construction.
	if got := m.Clock().Now() - start; got != cold.Latency+warm.Latency {
		t.Fatalf("clock delta %d != latency sum %d", got, cold.Latency+warm.Latency)
	}
	// Loads of never-written memory still read zeros without
	// materializing host frames; the only frames the walk wrote are the
	// demand-allocated page tables themselves.
	if got, tables := m.Memory().Materialized(), m.PageTables().Allocated(); got != tables {
		t.Fatalf("pure loads materialized %d frames, want only the %d table frames", got, tables)
	}
}

// TestPSCacheServesPartialWalk: after one full walk the PDE cache
// holds the PT frame, so a TLB-invalidated retranslation skips the
// three upper levels — one PS-cache charge plus a single PT-level
// fetch that hits L1.
func TestPSCacheServesPartialWalk(t *testing.T) {
	m := MustNew(SandyBridge())
	lat := m.Config().Lat
	a := phys.Addr(0x1234560)

	m.Load(a)
	if pde, pdpte, pml4e := m.Walker().PSContains(a); !pde || !pdpte || !pml4e {
		t.Fatalf("PS caches after full walk = %v %v %v, want all true", pde, pdpte, pml4e)
	}
	// Drop only the TLB entry; the paging-structure caches survive
	// (the paper's eviction sets target exactly this asymmetry).
	m.TLB().Invalidate(a)

	snap := m.Counters().Snapshot()
	frame, res := m.Translate(a)
	if frame != phys.FrameOf(a) {
		t.Fatalf("frame = %d, want identity %d", frame, phys.FrameOf(a))
	}
	want := lat.PSCacheHit + lat.PageWalkStep + lat.L1Hit // PDE hit, PTE line still in L1
	if res.Latency != want {
		t.Fatalf("partial-walk latency = %d, want %d", res.Latency, want)
	}
	for _, c := range []struct {
		ev   perf.Event
		want uint64
	}{
		{perf.PSCacheHit, 1},
		{perf.WalkStepPTE, 1},
		{perf.WalkStepPDE, 0},
		{perf.WalkStepPDPTE, 0},
		{perf.WalkStepPML4E, 0},
		{perf.PageWalkCompleted, 1},
		{perf.L1PTEMemoryFetch, 0}, // served from L1, not DRAM
	} {
		if got := snap.Delta(m.Counters(), c.ev); got != c.want {
			t.Errorf("%v delta = %d, want %d", c.ev, got, c.want)
		}
	}
}

// TestPTECorruptionRedirectsTranslation is the paper's exploitation
// step: a single bit flip in a PT entry (the kind the hammer loop
// induces) makes the next walk resolve the VA to a different frame.
func TestPTECorruptionRedirectsTranslation(t *testing.T) {
	m := MustNew(SandyBridge())
	va := phys.Addr(0x5000)

	m.Load(va)
	pte, ok := m.PTEAddr(va, 1)
	if !ok {
		t.Fatal("PTE not mapped after load")
	}
	// Flip bit 12 of the entry (byte 1, bit 4): the lowest frame bit.
	m.Memory().FlipBit(pte+1, 4)

	// The stale TLB entry still serves the old translation — flips are
	// invisible until the translation is re-walked.
	if frame, _ := m.Translate(va); frame != phys.FrameOf(va) {
		t.Fatalf("TLB-cached translation = %d, want stale identity %d", frame, phys.FrameOf(va))
	}

	m.InvalidatePage(va)
	frame, res := m.Translate(va)
	if want := phys.FrameOf(va) ^ 1; frame != want {
		t.Fatalf("corrupted translation = %d, want %d", frame, want)
	}
	if res.Hit || res.Source != mem.LevelPageWalk {
		t.Fatalf("corrupted translation came from %v, want a walk", res.Source)
	}
	// The data side follows the corrupted translation: the load now
	// fills the cache line of the *wrong* physical frame.
	m.Load(va)
	wrongPA := (phys.FrameOf(va) ^ 1).Addr() + phys.Addr(phys.Offset(va))
	if in1, _, _ := m.Caches().Contains(wrongPA); !in1 {
		t.Fatal("load after corruption did not touch the redirected frame")
	}
}

// TestPDECorruptionAndPSCacheInvalidation pins the paging-structure
// cache semantics around corruption: a flipped PDE is masked by a
// cached PDE entry (the walk skips the corrupted level) until invlpg
// drops the PS caches, after which the walk follows the corrupted
// entry into the *adjacent page table* and resolves a different frame.
func TestPDECorruptionAndPSCacheInvalidation(t *testing.T) {
	m := MustNew(SandyBridge())
	va1 := phys.Addr(0)                 // region 0 → PT allocated first
	va2 := phys.Addr(pagetable.Span(2)) // region 1 → next PT frame
	m.Load(va1)
	m.Load(va2)

	pt1, ok1 := m.PTEAddr(va1, 1)
	pt2, ok2 := m.PTEAddr(va2, 1)
	if !ok1 || !ok2 {
		t.Fatal("PTs not mapped")
	}
	// Precondition of the chosen flip: the two PT frames differ in
	// exactly frame bit 0, so flipping entry bit 12 swaps them.
	if phys.FrameOf(pt2) != phys.FrameOf(pt1)^1 {
		t.Fatalf("PT frames %d/%d not bit-0 adjacent; demand-alloc order changed",
			phys.FrameOf(pt1), phys.FrameOf(pt2))
	}
	pde, ok := m.PTEAddr(va1, 2)
	if !ok {
		t.Fatal("PDE not mapped")
	}
	m.Memory().FlipBit(pde+1, 4)

	// TLB dropped but PS caches intact: the cached PDE still points at
	// the original PT, so translation is still correct.
	m.TLB().Invalidate(va1)
	if frame, _ := m.Translate(va1); frame != phys.FrameOf(va1) {
		t.Fatalf("PS-cached translation = %d, want %d (corrupted PDE should be skipped)",
			frame, phys.FrameOf(va1))
	}

	// Full invlpg drops the PS caches too: the walk now reads the
	// corrupted PDE and lands in va2's page table, whose same-index
	// entry maps va2's frame.
	m.InvalidatePage(va1)
	if frame, _ := m.Translate(va1); frame != phys.FrameOf(va2) {
		t.Fatalf("post-invlpg translation = %d, want redirected %d", frame, phys.FrameOf(va2))
	}
	// The reference resolver agrees — the corruption lives in the
	// tables themselves, not in walker state.
	if frame, ok := m.PageTables().Resolve(va1); !ok || frame != phys.FrameOf(va2) {
		t.Fatalf("Resolve = %d/%v, want %d", frame, ok, phys.FrameOf(va2))
	}
}

// hammerConfig is SandyBridge with a tiny hammer threshold and no
// refresh window so a short test loop can cross it.
func hammerConfig() Config {
	cfg := SandyBridge()
	cfg.DRAM.HammerThreshold = 16
	cfg.DRAM.RefreshWindow = 0
	return cfg
}

// TestFlushHammerLoopReachesThreshold drives the clflush-based
// explicit hammer baseline through the facade: alternate loads to two
// same-bank rows with flushes in between, and observe the sandwiched
// victim row become hammer-eligible. The first touch of each aggressor
// happens before the snapshot so the page-walk activations of the cold
// translations stay out of the hammer accounting.
func TestFlushHammerLoopReachesThreshold(t *testing.T) {
	m := MustNew(hammerConfig())
	geom := m.DRAM().Config()

	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	if la, lb := geom.Map(above), geom.Map(below); la.Channel != lb.Channel || la.Rank != lb.Rank || la.Bank != lb.Bank {
		t.Fatalf("aggressors not same-bank: %+v vs %+v", la, lb)
	}
	m.Load(above)
	m.Flush(above)
	m.Load(below)
	m.Flush(below)

	snap := m.Counters().Snapshot()
	for i := 0; i < 8; i++ {
		m.Load(above)
		m.Flush(above)
		m.Load(below)
		m.Flush(below)
	}
	// Translations are TLB-cached, so no walks: with the flushes every
	// load re-activates exactly its own row, 8 activations per
	// aggressor.
	if got := snap.Delta(m.Counters(), perf.DRAMActivate); got != 16 {
		t.Fatalf("activations = %d, want 16", got)
	}
	if got := snap.Delta(m.Counters(), perf.DTLBLoadMissesWalk); got != 0 {
		t.Fatalf("hammer loop walked %d times, want 0 (translations cached)", got)
	}

	s := m.HammerStats()
	if len(s.Victims) != 1 {
		t.Fatalf("victims = %+v, want exactly the sandwiched row", s.Victims)
	}
	v := s.Victims[0]
	// 8 loop activations + 1 warm-up activation per side.
	if v.Row != 101 || v.Pressure != 18 {
		t.Fatalf("victim = %+v, want row 101 pressure 18", v)
	}
}

// TestCachesAbsorbHammerWithoutFlush is the negative control: the same
// loop without flushes stays in the cache (data, TLB and
// paging-structure caches alike) and never re-activates.
func TestCachesAbsorbHammerWithoutFlush(t *testing.T) {
	m := MustNew(hammerConfig())
	geom := m.DRAM().Config()
	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	m.Load(above)
	m.Load(below)

	snap := m.Counters().Snapshot()
	for i := 0; i < 32; i++ {
		m.Load(above)
		m.Load(below)
	}
	if got := snap.Delta(m.Counters(), perf.DRAMActivate); got != 0 {
		t.Fatalf("activations = %d, want 0 (everything cached)", got)
	}
	if s := m.HammerStats(); len(s.Victims) != 0 {
		t.Fatalf("victims without flushing: %+v", s.Victims)
	}
}

func TestNoiseStaysConsistentWithClock(t *testing.T) {
	cfg := SandyBridge()
	cfg.NoiseSeed = 7
	cfg.NoiseProb = 0.5
	cfg.NoiseMin = 500
	cfg.NoiseMax = 1500
	m := MustNew(cfg)

	start := m.Clock().Now()
	var sum timing.Cycles
	spiked := false
	warm := cfg.Lat.TLBL1Hit + cfg.Lat.L1Hit
	for i := 0; i < 200; i++ {
		res := m.Load(phys.Addr(0x40))
		sum += res.Latency
		if i > 0 && res.Latency > warm {
			spiked = true
		}
	}
	if !spiked {
		t.Fatal("no spike in 200 samples at prob 0.5")
	}
	if got := m.Clock().Now() - start; got != sum {
		t.Fatalf("clock delta %d != latency sum %d", got, sum)
	}
}

func TestLoadPanicsOutOfRange(t *testing.T) {
	m := MustNew(SandyBridge())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load did not panic")
		}
	}()
	m.Load(phys.Addr(m.Config().MemBytes))
}

func TestFlushPanicsOutOfRange(t *testing.T) {
	m := MustNew(SandyBridge())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range flush did not panic")
		}
	}()
	m.Flush(phys.Addr(m.Config().MemBytes))
}

func TestFlushDoesNotTouchTLB(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x9000)
	m.Load(a)
	m.Flush(a)
	// The data line is gone but the translation survives — the reason
	// the paper needs eviction-based TLB flushing from user space.
	res := m.Load(a)
	if res.Hit || res.Source != mem.LevelDRAM {
		t.Fatalf("post-flush load = %+v, want DRAM", res)
	}
	if in1, _ := m.TLB().Contains(a); !in1 {
		t.Fatal("Flush evicted the TLB entry")
	}
	if got := m.Counters().Read(perf.DTLBLoadMissesWalk); got != 1 {
		t.Fatalf("walks = %d, want 1 (translation cached)", got)
	}
}

// TestLoadSteadyStateZeroAllocs pins the hot-path contract: once the
// machine is warmed up, Load (hit or full DRAM miss) allocates nothing.
func TestLoadSteadyStateZeroAllocs(t *testing.T) {
	m := MustNew(SandyBridge())
	geom := m.DRAM().Config()
	a1 := geom.AddrOf(dram.Location{Row: 1})
	a2 := geom.AddrOf(dram.Location{Row: 3})
	// Warm up: touch the flush-hammer working set so lazily grown
	// bookkeeping (touched-row lists) reaches steady state.
	for i := 0; i < 64; i++ {
		m.Flush(a1)
		m.Flush(a2)
		m.Load(a1)
		m.Load(a2)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Flush(a1)
		m.Flush(a2)
		m.Load(a1)
		m.Load(a2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state flush-hammer loop allocates %.1f per iteration, want 0", allocs)
	}
}

// TestPrimeMatchesLoads: the batch eviction-stream primitive is just
// Load in a loop — same clock movement, same counters, and the
// returned cycle total equals the sum of the individual latencies.
func TestPrimeMatchesLoads(t *testing.T) {
	addrs := []phys.Addr{0x0, 0x1000, 0x80000, 0x200000, 0x1000}
	single := MustNew(SandyBridge())
	batched := MustNew(SandyBridge())

	var want timing.Cycles
	for _, a := range addrs {
		want += single.Load(a).Latency
	}
	got := batched.Prime(addrs)
	if got != want {
		t.Fatalf("Prime returned %d cycles, want %d", got, want)
	}
	if single.Clock().Now() != batched.Clock().Now() {
		t.Fatalf("clocks diverged: %d vs %d", single.Clock().Now(), batched.Clock().Now())
	}
	for _, ev := range []perf.Event{
		perf.DTLBLoadMissesWalk, perf.LLCReference, perf.DRAMActivate, perf.PageWalkCompleted,
	} {
		if single.Counters().Read(ev) != batched.Counters().Read(ev) {
			t.Fatalf("counter %v diverged", ev)
		}
	}
	// Prime on a warmed stream allocates nothing — it is the eviction
	// hammer's hot path.
	if allocs := testing.AllocsPerRun(100, func() { batched.Prime(addrs) }); allocs != 0 {
		t.Fatalf("steady-state Prime allocates %.1f per call, want 0", allocs)
	}
}

// TestProbeDecodesPMCDeltas: a cold probe sees the walk, the DRAM leaf
// fetch and the LLC miss; a warm reprobe sees none of them; an
// sTLB-only miss is distinguished from a full walk.
func TestProbeDecodesPMCDeltas(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x345678)

	cold := m.Probe(a)
	if !cold.Walked || !cold.LeafFromDRAM || !cold.LLCMiss {
		t.Fatalf("cold probe = %+v, want walk + DRAM leaf + LLC miss", cold)
	}
	if cold.STLBHit {
		t.Fatal("cold probe cannot hit the sTLB")
	}
	warm := m.Probe(a)
	if warm.Walked || warm.LeafFromDRAM || warm.LLCMiss || warm.STLBHit {
		t.Fatalf("warm probe = %+v, want no miss events", warm)
	}
	if warm.Latency >= cold.Latency {
		t.Fatalf("warm probe (%d) not faster than cold (%d)", warm.Latency, cold.Latency)
	}
	// Evict a from the dTLB only: prime pages that share its dTLB set
	// (vpn stride = dTLB set count) but land in different sTLB sets, so
	// the probe hits the sTLB — STLBHit without a walk.
	cfg := m.Config().TLB
	dSets := uint64(cfg.L1Entries / cfg.L1Ways)
	conflicts := make([]phys.Addr, cfg.L1Ways)
	for i := range conflicts {
		conflicts[i] = a + phys.Addr((uint64(i)+1)*dSets<<phys.FrameShift)
	}
	m.Prime(conflicts)
	if p := m.Probe(a); p.Walked || !p.STLBHit {
		t.Fatalf("probe after dTLB-only eviction = %+v, want sTLB hit without walk", p)
	}
	// Probe charges exactly what it reports.
	before := m.Clock().Now()
	p := m.Probe(a)
	if got := m.Clock().Now() - before; got != p.Latency {
		t.Fatalf("probe charged %d cycles but reported %d", got, p.Latency)
	}
	if allocs := testing.AllocsPerRun(100, func() { m.Probe(a) }); allocs != 0 {
		t.Fatalf("Probe allocates %.1f per call, want 0", allocs)
	}
}

// TestPrivilegedOpsCountsFlushAndInvlpg: only the two privileged
// operations move the counters; the attacker-available primitives
// (Load, Prime, Probe) never do.
func TestPrivilegedOpsCountsFlushAndInvlpg(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x2000)
	m.Load(a)
	m.Prime([]phys.Addr{0x3000, 0x4000})
	m.Probe(a)
	if f, i := m.PrivilegedOps(); f != 0 || i != 0 {
		t.Fatalf("unprivileged traffic counted as privileged: flushes=%d invlpg=%d", f, i)
	}
	m.Flush(a)
	m.InvalidatePage(a)
	m.InvalidatePage(a)
	if f, i := m.PrivilegedOps(); f != 1 || i != 2 {
		t.Fatalf("privileged ops = %d/%d, want 1 flush, 2 invlpg", f, i)
	}
}

// TestLoadNMatchesLoad checks the batched path is just Load in a loop:
// same results, same clock and counter movement.
func TestLoadNMatchesLoad(t *testing.T) {
	addrs := []phys.Addr{0x0, 0x1000, 0x40, 0x200000, 0x1000, 0x7fff8}
	single := MustNew(SandyBridge())
	batched := MustNew(SandyBridge())

	var want []mem.Result
	for _, a := range addrs {
		want = append(want, single.Load(a))
	}
	got := batched.LoadN(addrs, nil)
	if len(got) != len(want) {
		t.Fatalf("LoadN returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if single.Clock().Now() != batched.Clock().Now() {
		t.Fatalf("clocks diverged: %d vs %d", single.Clock().Now(), batched.Clock().Now())
	}
	for _, ev := range []perf.Event{
		perf.DTLBLoadMissesWalk, perf.DTLBLoadMissesL1, perf.LongestLatCacheMiss,
		perf.LLCReference, perf.DRAMActivate, perf.DRAMRowConflicts, perf.PageWalkCompleted,
	} {
		if single.Counters().Read(ev) != batched.Counters().Read(ev) {
			t.Fatalf("counter %v diverged", ev)
		}
	}

	// Appending into a reused buffer extends rather than clobbers.
	buf := make([]mem.Result, 0, 16)
	buf = batched.LoadN(addrs[:2], buf)
	buf = batched.LoadN(addrs[2:4], buf)
	if len(buf) != 4 {
		t.Fatalf("reused buffer length = %d, want 4", len(buf))
	}
}

// TestFlipModelEndToEnd wires the disturbance-error engine through the
// facade: a flush-hammer loop crossing refresh windows makes the
// configured model corrupt cells in the sandwiched victim row — real
// bytes change in phys.Memory — while a machine without a model keeps
// memory ideal.
func TestFlipModelEndToEnd(t *testing.T) {
	cfg := hammerConfig()
	cfg.DRAM.RefreshWindow = 5000
	// An eager profile so a short loop flips: certain past threshold,
	// always discharging.
	model := flip.MustNewModel(flip.Profile{
		Name: "eager", AttemptsPerWindow: 16, ExcessScale: 1, OneToZeroBias: 1,
	}, 99)
	cfg.FlipModel = model
	m := MustNew(cfg)
	if m.FlipModel() != model {
		t.Fatal("FlipModel accessor does not return the configured model")
	}

	geom := m.DRAM().Config()
	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	// The victim row holds attacker-readable data: fill it with ones so
	// every discharge is observable.
	victimStart, victimBytes := geom.RowRange(0, 0, 0, 101)
	for off := uint64(0); off < victimBytes; off++ {
		m.Memory().Write8(victimStart+phys.Addr(off), 0xFF)
	}

	m.Load(above)
	m.Load(below)
	for i := 0; i < 400 && len(m.Flips()) == 0; i++ {
		m.Flush(above)
		m.Flush(below)
		m.Load(above)
		m.Load(below)
	}
	flips := m.Flips()
	if len(flips) == 0 {
		t.Fatalf("no flips after hammering across %d windows", model.Windows())
	}
	for _, f := range flips {
		if f.Addr < victimStart || f.Addr >= victimStart+phys.Addr(victimBytes) {
			t.Fatalf("flip at %#x outside victim row [%#x, %#x)", uint64(f.Addr), uint64(victimStart), uint64(victimStart)+victimBytes)
		}
		if !f.OneToZero {
			t.Fatalf("0→1 flip from an all-ones row: %+v", f)
		}
		if got := m.Memory().Bit(f.Addr, f.Bit); got != 0 {
			t.Fatalf("flipped cell %#x bit %d still reads %d", uint64(f.Addr), f.Bit, got)
		}
	}

	// The control machine, hammered identically without a model, stays
	// pristine.
	ctl := MustNew(hammerConfig())
	if ctl.Flips() != nil {
		t.Fatal("machine without FlipModel reports flips")
	}
}

// TestNewRejectsBoundFlipModel: a model already bound to one machine
// cannot be wired into a second.
func TestNewRejectsBoundFlipModel(t *testing.T) {
	cfg := hammerConfig()
	cfg.FlipModel = flip.MustNewModel(flip.ClassA(), 1)
	if _, err := New(cfg); err != nil {
		t.Fatalf("first machine: %v", err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("second machine accepted an already-bound flip model")
	}
}

// TestResetRefreshWindowClearsPressure: construction-style traffic is
// discarded by an explicit reset, so measured pressure starts at zero.
func TestResetRefreshWindowClearsPressure(t *testing.T) {
	m := MustNew(hammerConfig())
	geom := m.DRAM().Config()
	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	m.Load(above)
	m.Load(below)
	for i := 0; i < 16; i++ {
		m.Flush(above)
		m.Flush(below)
		m.Load(above)
		m.Load(below)
	}
	if s := m.HammerStats(); s.Activations == 0 || len(s.Victims) == 0 {
		t.Fatalf("expected construction pressure, got %+v", s)
	}
	m.ResetRefreshWindow()
	if s := m.HammerStats(); s.Activations != 0 || len(s.Victims) != 0 {
		t.Fatalf("stats after reset = %+v, want zero", s)
	}
}

// TestStore64WritesThroughTranslation: a store translates like a load,
// charges the clock exactly its reported latency, lands its bytes in
// physical memory, and leaves the line cached for the next access.
func TestStore64WritesThroughTranslation(t *testing.T) {
	m := MustNew(SandyBridge())
	va := phys.Addr(0x7008)
	const v = 0xfeed_face_cafe_f00d

	start := m.Clock().Now()
	res := m.Store64(va, v)
	if got := m.Clock().Now() - start; got != res.Latency {
		t.Fatalf("clock advanced %d, result says %d", got, res.Latency)
	}
	if res.Hit || res.Source != mem.LevelDRAM {
		t.Fatalf("cold store result = %+v, want DRAM miss", res)
	}
	if got := m.Memory().Read64(va); got != v {
		t.Fatalf("stored value = %#x, want %#x", got, uint64(v))
	}
	// Write-allocate: the line is now cached, so a warm store hits L1
	// with its translation in the dTLB.
	res2 := m.Store64(va, v+1)
	if !res2.Hit || res2.Source != mem.LevelL1 {
		t.Fatalf("warm store result = %+v, want L1 hit", res2)
	}
	if got := m.Memory().Read64(va); got != v+1 {
		t.Fatalf("second store lost: %#x", got)
	}
	mustPanicMachine(t, "out-of-range store", func() { m.Store64(phys.Addr(m.Memory().Size()), 1) })
}

func mustPanicMachine(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

// TestFaultProbeJitterStaysConsistentWithClock: threshold-drift spikes
// are charged to the shared clock, so the clock-delta/latency-sum
// agreement invariant holds under drift too.
func TestFaultProbeJitterStaysConsistentWithClock(t *testing.T) {
	cfg := hammerConfig()
	cfg.FaultModel = fault.MustNewModel(fault.Config{Class: fault.ThresholdDrift, Seed: 3})
	m := MustNew(cfg)

	start := m.Clock().Now()
	var sum timing.Cycles
	for i := 0; i < 500; i++ {
		sum += m.Probe(phys.Addr(0x40)).Latency
	}
	if got := m.Clock().Now() - start; got != sum {
		t.Fatalf("clock delta %d != probe latency sum %d", got, sum)
	}
	if m.FaultModel().Stats().ProbesPerturbed == 0 {
		t.Fatal("no probe perturbed in 500 samples at default drift prob")
	}
}

// TestFaultPrimeDecayDropsMembers: during a decay burst the Prime
// stream loses members, visible as both the model's drop counter and a
// cheaper total than the honest walk.
func TestFaultPrimeDecayDropsMembers(t *testing.T) {
	cfg := hammerConfig()
	cfg.FaultModel = fault.MustNewModel(fault.Config{
		Class: fault.EvictionDecay, Seed: 1, QuietPrimes: 1, BurstPrimes: 1 << 40,
	})
	m := MustNew(cfg)

	addrs := make([]phys.Addr, 32)
	for i := range addrs {
		addrs[i] = phys.Addr(i) * 4096
	}
	if got := m.Prime(nil); got != 0 {
		t.Fatalf("faulted Prime of empty stream charged %d cycles", got)
	}
	for i := 0; i < 200; i++ {
		m.Prime(addrs)
	}
	s := m.FaultModel().Stats()
	if s.MembersDropped == 0 || s.PrimesFaulted == 0 {
		t.Fatalf("decay burst injected nothing: %+v", s)
	}
}

// TestFaultFreeMachineHasNilModel: the default config carries no fault
// model and the accessor says so.
func TestFaultFreeMachineHasNilModel(t *testing.T) {
	m := MustNew(hammerConfig())
	if m.FaultModel() != nil {
		t.Fatal("fault-free machine reports a fault model")
	}
}

// TestNewRejectsBoundFaultModel: like flip models, a fault model
// belongs to exactly one machine.
func TestNewRejectsBoundFaultModel(t *testing.T) {
	cfg := hammerConfig()
	cfg.FaultModel = fault.MustNewModel(fault.Config{Class: fault.TRRSuppress, Seed: 1})
	if _, err := New(cfg); err != nil {
		t.Fatalf("first machine: %v", err)
	}
	cfg.FlipModel = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("second machine accepted an already-bound fault model")
	}
}

// TestFaultSuppressAllKillsFlips: a perfect TRR sampler (suppress rate
// 1.0) wired through New means the flip engine records windows but
// never a single attempt — the structural "unrecoverable" case the
// escalation driver must turn into a budgeted abort.
func TestFaultSuppressAllKillsFlips(t *testing.T) {
	cfg := hammerConfig()
	cfg.DRAM.RefreshWindow = 200_000
	cfg.FlipModel = flip.MustNewModel(flip.ClassA(), 1)
	cfg.FaultModel = fault.MustNewModel(fault.Config{Class: fault.TRRSuppress, Seed: 1, SuppressRate: 1})
	m := MustNew(cfg)
	geom := m.DRAM().Config()

	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	victim := geom.AddrOf(dram.Location{Row: 101})
	m.Memory().Write8(victim, 0xff)
	for i := 0; i < 20_000; i++ {
		m.Load(above)
		m.Flush(above)
		m.Load(below)
		m.Flush(below)
	}
	model := m.FlipModel()
	if model.Windows() == 0 {
		t.Fatal("no refresh window elapsed")
	}
	if got := model.Attempts(); got != 0 {
		t.Fatalf("perfect suppression let %d attempts through", got)
	}
	if got := m.FaultModel().Stats().AttemptsSuppressed; got == 0 {
		t.Fatal("suppression count did not move")
	}
	if len(m.Flips()) != 0 {
		t.Fatalf("flips recorded under total suppression: %d", len(m.Flips()))
	}
}
