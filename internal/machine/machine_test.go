package machine

import (
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

func TestSandyBridgeConfigIsCoherent(t *testing.T) {
	cfg := SandyBridge()
	if err := cfg.Lat.Validate(); err != nil {
		t.Fatalf("preset latency table invalid: %v", err)
	}
	if got := cfg.DRAM.Capacity(); got != cfg.MemBytes {
		t.Fatalf("DRAM capacity %d != MemBytes %d", got, cfg.MemBytes)
	}
	if _, err := New(cfg); err != nil {
		t.Fatalf("New(SandyBridge()): %v", err)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cfg := SandyBridge()
	cfg.MemBytes /= 2 // no longer matches the DRAM geometry
	if _, err := New(cfg); err == nil {
		t.Error("capacity mismatch accepted")
	}

	cfg = SandyBridge()
	cfg.Lat.TLBL1Hit = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid latency table accepted")
	}

	cfg = SandyBridge()
	cfg.FreqHz = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero frequency accepted")
	}

	cfg = SandyBridge()
	cfg.NoiseProb = 2
	if _, err := New(cfg); err == nil {
		t.Error("invalid noise config accepted")
	}
}

// TestColdThenWarmLoadEndToEnd is the acceptance test: one cold load
// traverses TLB miss → page walk → LLC miss → DRAM activation, a warm
// repeat hits the dTLB and L1, and the latency gap agrees with the
// perf-counter deltas and the shared clock.
func TestColdThenWarmLoadEndToEnd(t *testing.T) {
	m := MustNew(SandyBridge())
	lat := m.Config().Lat
	a := phys.Addr(0x1234560)

	start := m.Clock().Now()
	snap := m.Counters().Snapshot()

	cold := m.Load(a)
	if cold.Hit || cold.Source != mem.LevelDRAM {
		t.Fatalf("cold load = %+v, want DRAM miss", cold)
	}
	// 4-level stub walk + closed-row DRAM activation.
	wantCold := 4*lat.PageWalkStep + lat.DRAMRowClosed
	if cold.Latency != wantCold {
		t.Fatalf("cold latency = %d, want %d", cold.Latency, wantCold)
	}
	for _, c := range []struct {
		ev   perf.Event
		want uint64
	}{
		{perf.DTLBLoadMissesWalk, 1},
		{perf.PageWalkCompleted, 1},
		{perf.LLCReference, 1},
		{perf.LongestLatCacheMiss, 1},
		{perf.DRAMActivate, 1},
		{perf.DRAMRowConflicts, 0},
		{perf.DTLBLoadMissesL1, 0},
	} {
		if got := snap.Delta(m.Counters(), c.ev); got != c.want {
			t.Errorf("cold %v delta = %d, want %d", c.ev, got, c.want)
		}
	}

	snap = m.Counters().Snapshot()
	warm := m.Load(a)
	if !warm.Hit || warm.Source != mem.LevelL1 {
		t.Fatalf("warm load = %+v, want L1 hit", warm)
	}
	wantWarm := lat.TLBL1Hit + lat.L1Hit
	if warm.Latency != wantWarm {
		t.Fatalf("warm latency = %d, want %d", warm.Latency, wantWarm)
	}
	for _, ev := range []perf.Event{
		perf.DTLBLoadMissesWalk, perf.PageWalkCompleted,
		perf.LLCReference, perf.LongestLatCacheMiss, perf.DRAMActivate,
	} {
		if got := snap.Delta(m.Counters(), ev); got != 0 {
			t.Errorf("warm %v delta = %d, want 0", ev, got)
		}
	}

	if cold.Latency <= warm.Latency {
		t.Fatalf("cold (%d) not slower than warm (%d)", cold.Latency, warm.Latency)
	}
	// Clock and reported latencies agree by construction.
	if got := m.Clock().Now() - start; got != cold.Latency+warm.Latency {
		t.Fatalf("clock delta %d != latency sum %d", got, cold.Latency+warm.Latency)
	}
	// Loads of never-written memory read zeros without materializing
	// host frames, so address sweeps stay cheap.
	if got := m.Memory().Materialized(); got != 0 {
		t.Fatalf("pure loads materialized %d frames", got)
	}
}

// hammerConfig is SandyBridge with a tiny hammer threshold and no
// refresh window so a short test loop can cross it.
func hammerConfig() Config {
	cfg := SandyBridge()
	cfg.DRAM.HammerThreshold = 16
	cfg.DRAM.RefreshWindow = 0
	return cfg
}

// TestFlushHammerLoopReachesThreshold drives the clflush-based
// explicit hammer baseline through the facade: alternate loads to two
// same-bank rows with flushes in between, and observe the sandwiched
// victim row become hammer-eligible.
func TestFlushHammerLoopReachesThreshold(t *testing.T) {
	m := MustNew(hammerConfig())
	geom := m.DRAM().Config()

	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})
	if la, lb := geom.Map(above), geom.Map(below); la.Channel != lb.Channel || la.Rank != lb.Rank || la.Bank != lb.Bank {
		t.Fatalf("aggressors not same-bank: %+v vs %+v", la, lb)
	}

	snap := m.Counters().Snapshot()
	for i := 0; i < 8; i++ {
		m.Load(above)
		m.Flush(above)
		m.Load(below)
		m.Flush(below)
	}
	// Without the flushes these would be cache hits; with them every
	// load re-activates its row: 8 activations per aggressor.
	if got := snap.Delta(m.Counters(), perf.DRAMActivate); got != 16 {
		t.Fatalf("activations = %d, want 16", got)
	}

	s := m.HammerStats()
	if s.Activations != 16 {
		t.Fatalf("stats activations = %d, want 16", s.Activations)
	}
	if len(s.Victims) != 1 {
		t.Fatalf("victims = %+v, want exactly the sandwiched row", s.Victims)
	}
	v := s.Victims[0]
	if v.Row != 101 || v.Pressure != 16 {
		t.Fatalf("victim = %+v, want row 101 pressure 16", v)
	}
}

// TestCachesAbsorbHammerWithoutFlush is the negative control: the same
// loop without flushes stays in the cache and never re-activates.
func TestCachesAbsorbHammerWithoutFlush(t *testing.T) {
	m := MustNew(hammerConfig())
	geom := m.DRAM().Config()
	above := geom.AddrOf(dram.Location{Row: 100})
	below := geom.AddrOf(dram.Location{Row: 102})

	snap := m.Counters().Snapshot()
	for i := 0; i < 32; i++ {
		m.Load(above)
		m.Load(below)
	}
	// Two cold activations, then every load is a cache hit.
	if got := snap.Delta(m.Counters(), perf.DRAMActivate); got != 2 {
		t.Fatalf("activations = %d, want 2", got)
	}
	if s := m.HammerStats(); len(s.Victims) != 0 {
		t.Fatalf("victims without flushing: %+v", s.Victims)
	}
}

func TestNoiseStaysConsistentWithClock(t *testing.T) {
	cfg := SandyBridge()
	cfg.NoiseSeed = 7
	cfg.NoiseProb = 0.5
	cfg.NoiseMin = 500
	cfg.NoiseMax = 1500
	m := MustNew(cfg)

	start := m.Clock().Now()
	var sum timing.Cycles
	spiked := false
	warm := cfg.Lat.TLBL1Hit + cfg.Lat.L1Hit
	for i := 0; i < 200; i++ {
		res := m.Load(phys.Addr(0x40))
		sum += res.Latency
		if i > 0 && res.Latency > warm {
			spiked = true
		}
	}
	if !spiked {
		t.Fatal("no spike in 200 samples at prob 0.5")
	}
	if got := m.Clock().Now() - start; got != sum {
		t.Fatalf("clock delta %d != latency sum %d", got, sum)
	}
}

func TestLoadPanicsOutOfRange(t *testing.T) {
	m := MustNew(SandyBridge())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range load did not panic")
		}
	}()
	m.Load(phys.Addr(m.Config().MemBytes))
}

func TestFlushPanicsOutOfRange(t *testing.T) {
	m := MustNew(SandyBridge())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range flush did not panic")
		}
	}()
	m.Flush(phys.Addr(m.Config().MemBytes))
}

func TestFlushDoesNotTouchTLB(t *testing.T) {
	m := MustNew(SandyBridge())
	a := phys.Addr(0x9000)
	m.Load(a)
	m.Flush(a)
	// The data line is gone but the translation survives — the reason
	// the paper needs eviction-based TLB flushing from user space.
	res := m.Load(a)
	if res.Hit || res.Source != mem.LevelDRAM {
		t.Fatalf("post-flush load = %+v, want DRAM", res)
	}
	if in1, _ := m.TLB().Contains(a); !in1 {
		t.Fatal("Flush evicted the TLB entry")
	}
	if got := m.Counters().Read(perf.DTLBLoadMissesWalk); got != 1 {
		t.Fatalf("walks = %d, want 1 (translation cached)", got)
	}
}

// TestLoadSteadyStateZeroAllocs pins the hot-path contract: once the
// machine is warmed up, Load (hit or full DRAM miss) allocates nothing.
func TestLoadSteadyStateZeroAllocs(t *testing.T) {
	m := MustNew(SandyBridge())
	geom := m.DRAM().Config()
	a1 := geom.AddrOf(dram.Location{Row: 1})
	a2 := geom.AddrOf(dram.Location{Row: 3})
	// Warm up: touch the flush-hammer working set so lazily grown
	// bookkeeping (touched-row lists) reaches steady state.
	for i := 0; i < 64; i++ {
		m.Flush(a1)
		m.Flush(a2)
		m.Load(a1)
		m.Load(a2)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.Flush(a1)
		m.Flush(a2)
		m.Load(a1)
		m.Load(a2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state flush-hammer loop allocates %.1f per iteration, want 0", allocs)
	}
}

// TestLoadNMatchesLoad checks the batched path is just Load in a loop:
// same results, same clock and counter movement.
func TestLoadNMatchesLoad(t *testing.T) {
	addrs := []phys.Addr{0x0, 0x1000, 0x40, 0x200000, 0x1000, 0x7fff8}
	single := MustNew(SandyBridge())
	batched := MustNew(SandyBridge())

	var want []mem.Result
	for _, a := range addrs {
		want = append(want, single.Load(a))
	}
	got := batched.LoadN(addrs, nil)
	if len(got) != len(want) {
		t.Fatalf("LoadN returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if single.Clock().Now() != batched.Clock().Now() {
		t.Fatalf("clocks diverged: %d vs %d", single.Clock().Now(), batched.Clock().Now())
	}
	for _, ev := range []perf.Event{
		perf.DTLBLoadMissesWalk, perf.DTLBLoadMissesL1, perf.LongestLatCacheMiss,
		perf.LLCReference, perf.DRAMActivate, perf.DRAMRowConflicts, perf.PageWalkCompleted,
	} {
		if single.Counters().Read(ev) != batched.Counters().Read(ev) {
			t.Fatalf("counter %v diverged", ev)
		}
	}

	// Appending into a reused buffer extends rather than clobbers.
	buf := make([]mem.Result, 0, 16)
	buf = batched.LoadN(addrs[:2], buf)
	buf = batched.LoadN(addrs[2:4], buf)
	if len(buf) != 4 {
		t.Fatalf("reused buffer length = %d, want 4", len(buf))
	}
}
