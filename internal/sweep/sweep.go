// Package sweep is the Figure 5/6 measurement engine: it times loads
// over an address stream while sweeping the amount of NOP padding
// executed before each timed load, producing one latency histogram per
// padding value — the raw material of the paper's latency-vs-padding
// plots.
//
// A sweep is split into independent shards, one per padding value, and
// the shards are distributed over a worker pool. Each shard builds its
// own machine.Machine seeded deterministically from the sweep's base
// seed and the shard index, so the merged result is bit-identical for
// any worker count: parallelism changes wall-clock time, never the
// histograms.
package sweep

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"pthammer/internal/evset"
	"pthammer/internal/machine"
	"pthammer/internal/mem"
	"pthammer/internal/payload"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Spec describes one sweep: which machine to build, which addresses to
// time, and the padding range to sweep.
type Spec struct {
	// Machine is the template configuration; each shard copies it and
	// overrides NoiseSeed with a value derived from BaseSeed and the
	// shard index.
	Machine machine.Config

	// Addrs is the address stream timed at every padding value.
	Addrs []phys.Addr

	// PadMin/PadMax/PadStep define the swept NOP counts: PadMin,
	// PadMin+PadStep, … ≤ PadMax. Before each timed replay of the
	// address stream the shard executes that many NOPs (advancing the
	// clock by NOP-cost × count), modelling the padding instructions of
	// the paper's Figure 5/6 measurement loops.
	PadMin, PadMax, PadStep int

	// Reps is how many times the address stream is replayed per padding
	// value; each timed load adds one histogram sample.
	Reps int

	// FlushBetween issues clflush on every address before its timed
	// load (the Figure 6 explicit-hammer style), so loads measure the
	// DRAM path instead of cache hits.
	FlushBetween bool

	// EvictBetween drives the sweep the way the paper's unprivileged
	// attacker must: each shard builds, once, a TLB eviction set and a
	// leaf-PTE LLC eviction set per address (Algorithm 1, via
	// internal/evset) and walks both before every timed replay, so the
	// timed loads measure the full implicit-access path — a hardware
	// walk whose leaf PTE comes from DRAM — with zero flush or invlpg.
	// Mutually exclusive with FlushBetween.
	EvictBetween bool

	// Evict tunes the per-shard eviction-set construction when
	// EvictBetween is set; the zero value selects evset's defaults.
	Evict evset.Options

	// ClosureReplay forces the original closure replay loop instead of
	// the compiled payload program each shard normally lowers its rep
	// body to. The two paths drive the machine identically — the
	// payload difftest harness pins their histograms bit-equal — so
	// this is an escape hatch and the closure path's regression anchor,
	// not a semantic switch.
	ClosureReplay bool

	// Workers caps the worker pool; 0 means GOMAXPROCS. The worker
	// count never affects results, only how shards overlap in time.
	Workers int

	// BaseSeed seeds the per-shard noise streams.
	BaseSeed int64
}

// validate reports an error for a sweep that cannot run.
func (s Spec) validate() error {
	switch {
	case len(s.Addrs) == 0:
		return fmt.Errorf("sweep: address stream is empty")
	case s.Reps <= 0:
		return fmt.Errorf("sweep: reps must be positive (got %d)", s.Reps)
	case s.PadStep <= 0:
		return fmt.Errorf("sweep: pad step must be positive (got %d)", s.PadStep)
	case s.PadMin < 0 || s.PadMax < s.PadMin:
		return fmt.Errorf("sweep: bad padding range [%d, %d]", s.PadMin, s.PadMax)
	case s.FlushBetween && s.EvictBetween:
		return fmt.Errorf("sweep: FlushBetween and EvictBetween are mutually exclusive")
	}
	return nil
}

// paddings expands the swept padding values in ascending order.
func (s Spec) paddings() []int {
	var pads []int
	for p := s.PadMin; p <= s.PadMax; p += s.PadStep {
		pads = append(pads, p)
	}
	return pads
}

// shardSeed derives the noise seed for one shard. The mix keeps shard
// streams decorrelated while staying a pure function of (BaseSeed,
// shard), which is what makes worker count irrelevant to results.
func shardSeed(base int64, shard int) int64 {
	x := uint64(base) ^ (uint64(shard+1) * 0x9E3779B97F4A7C15)
	x ^= x >> 32
	return int64(x)
}

// Histogram counts latency samples per exact cycle value.
type Histogram struct {
	counts map[timing.Cycles]uint64
	total  uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[timing.Cycles]uint64)}
}

// Add records one latency sample.
func (h *Histogram) Add(c timing.Cycles) {
	h.counts[c]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() uint64 { return h.total }

// Count returns how many samples landed exactly on the given latency.
func (h *Histogram) Count(c timing.Cycles) uint64 { return h.counts[c] }

// Bin is one histogram bucket: an exact latency and its sample count.
type Bin struct {
	Latency timing.Cycles
	Count   uint64
}

// Bins returns the buckets in ascending latency order.
func (h *Histogram) Bins() []Bin {
	bins := make([]Bin, 0, len(h.counts))
	for c, n := range h.counts {
		bins = append(bins, Bin{Latency: c, Count: n})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].Latency < bins[j].Latency })
	return bins
}

// Quantile returns the smallest latency at or below which at least
// ⌈q·Total⌉ samples lie (q in [0,1]; q=0 is the minimum, q=1 the
// maximum). Zero-sample histograms report 0. The walk over sorted bins
// makes it a pure function of the recorded samples, so summary tables
// derived from bit-identical histograms are themselves bit-identical.
func (h *Histogram) Quantile(q float64) timing.Cycles {
	return h.Quantiles(q)[0]
}

// Quantiles answers several quantile queries with a single bin sort —
// the summary-table path asks for min/p25/p50/p90/max per histogram
// and should not pay five sorts for it. Each query's sample rank
// ⌈q·Total⌉ is clamped to [1, Total], so out-of-range q degrade
// gracefully rather than panic or read past the distribution: any
// q ≤ 0 — and NaN — reports the minimum exactly like q=0, and any
// q ≥ 1 reports the maximum exactly like q=1. The clamp happens in
// float space, before any float→integer conversion, because Go leaves
// out-of-range conversions implementation-defined. An empty histogram
// reports 0 for every query. The flip-latency tables depend on this
// contract at the q=0/q=1 edges.
func (h *Histogram) Quantiles(qs ...float64) []timing.Cycles {
	out := make([]timing.Cycles, len(qs))
	if h.total == 0 {
		return out
	}
	bins := h.Bins()
	for i, q := range qs {
		var rank uint64
		switch {
		case math.IsNaN(q) || q <= 0:
			rank = 1
		case q >= 1:
			rank = h.total
		default:
			rank = uint64(math.Ceil(q * float64(h.total)))
			if rank < 1 {
				rank = 1
			}
			if rank > h.total {
				rank = h.total
			}
		}
		var seen uint64
		for _, b := range bins {
			seen += b.Count
			if seen >= rank {
				out[i] = b.Latency
				break
			}
		}
	}
	return out
}

// Mean returns the average sample latency in cycles (0 when empty).
// The sum runs over sorted bins, not the raw count map: float addition
// is not associative, so summing in map-iteration order would make the
// low digits of the mean vary run to run on identical samples.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for _, b := range h.Bins() {
		sum += float64(b.Latency) * float64(b.Count)
	}
	return sum / float64(h.total)
}

// Merge folds other's samples into h. Map order is harmless here:
// per-key uint64 adds commute, so any iteration order yields the same
// counts.
func (h *Histogram) Merge(other *Histogram) {
	for c, n := range other.counts { //pthammer:nondeterministic-ok order-independent integer accumulation per distinct key
		h.counts[c] += n
	}
	h.total += other.total
}

// Equal reports whether two histograms hold identical samples. Map
// order is harmless here: membership comparison is order-independent.
func (h *Histogram) Equal(other *Histogram) bool {
	if h.total != other.total || len(h.counts) != len(other.counts) {
		return false
	}
	for c, n := range h.counts { //pthammer:nondeterministic-ok order-independent membership comparison
		if other.counts[c] != n {
			return false
		}
	}
	return true
}

// Point is the merged measurement at one padding value.
type Point struct {
	Padding int
	Hist    *Histogram
}

// Result is a completed sweep: one Point per padding value, ascending.
type Result struct {
	Points []Point
}

// Merged folds every padding's histogram into one distribution — the
// overall latency picture Figure 6 compares across hammer styles.
func (r *Result) Merged() *Histogram {
	h := NewHistogram()
	for _, p := range r.Points {
		h.Merge(p.Hist)
	}
	return h
}

// Run executes the sweep and returns the per-padding histograms. The
// shards (one per padding value) are pulled off a shared index by the
// worker pool; each shard writes only its own slot, so the merge is
// race-free and the output deterministic for a fixed Spec. Errors are
// reported in shard order, so a bad machine template surfaces as the
// first shard's construction error regardless of scheduling.
func Run(s Spec) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	pads := s.paddings()
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pads) {
		workers = len(pads)
	}

	points := make([]Point, len(pads))
	errs := make([]error, len(pads))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pads) {
					return
				}
				h, err := s.runShard(i, pads[i])
				points[i] = Point{Padding: pads[i], Hist: h}
				errs[i] = err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Points: points}, nil
}

// runShard measures one padding value on a fresh, deterministically
// seeded machine. In EvictBetween mode it first runs Algorithm 1 on
// that machine — the construction is deterministic for the shard's
// seed, so the merged sweep stays bit-identical for any worker count.
// The rep body is normally lowered once into a payload program and
// replayed by the executor; ClosureReplay keeps the original loop.
func (s Spec) runShard(shard, pad int) (*Histogram, error) {
	cfg := s.Machine
	cfg.NoiseSeed = shardSeed(s.BaseSeed, shard)
	m, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	var tlbs []*evset.TLBSet
	var llcs []*evset.LLCSet
	if s.EvictBetween {
		tlbs = make([]*evset.TLBSet, len(s.Addrs))
		llcs = make([]*evset.LLCSet, len(s.Addrs))
		for i, a := range s.Addrs {
			// Every other target page is excluded from this target's
			// streams, so priming one never re-installs another.
			if tlbs[i], err = evset.BuildTLB(m, a, s.Addrs, s.Evict); err != nil {
				return nil, fmt.Errorf("sweep: shard %d addr %#x: %w", shard, uint64(a), err)
			}
			if llcs[i], err = evset.BuildLLCPTE(m, a, tlbs[i], s.Addrs, s.Evict); err != nil {
				return nil, fmt.Errorf("sweep: shard %d addr %#x: %w", shard, uint64(a), err)
			}
		}
	}
	h := NewHistogram()
	nopCost := cfg.Lat.NOP * timing.Cycles(pad)
	if !s.ClosureReplay {
		// Lower one rep — the between-loads traffic, the padding NOPs,
		// the timed stream — to a program and replay it Reps times,
		// draining the recorded latencies into the histogram.
		c := payload.NewCompiler()
		if s.FlushBetween {
			for _, a := range s.Addrs {
				c.Flush(a)
			}
		}
		for i := range tlbs {
			c.Prime(tlbs[i].Pages)
			c.Prime(llcs[i].Addrs)
		}
		c.Advance(nopCost)
		c.LoadRec(s.Addrs)
		prog, err := c.Compile(m.Memory().Size())
		if err != nil {
			return nil, fmt.Errorf("sweep: shard %d: %w", shard, err)
		}
		ex, err := payload.NewExecutor(prog)
		if err != nil {
			return nil, fmt.Errorf("sweep: shard %d: %w", shard, err)
		}
		for rep := 0; rep < s.Reps; rep++ {
			ex.Run(m)
			for _, lat := range ex.Records() {
				h.Add(lat)
			}
		}
		return h, nil
	}
	clock := m.Clock()
	buf := make([]mem.Result, 0, len(s.Addrs))
	for rep := 0; rep < s.Reps; rep++ {
		if s.FlushBetween {
			for _, a := range s.Addrs {
				m.Flush(a)
			}
		}
		if s.EvictBetween {
			for i := range tlbs {
				tlbs[i].Evict(m)
				llcs[i].Evict(m)
			}
		}
		// Execute the padding NOPs, then replay the address stream as
		// one batched measurement.
		clock.Advance(nopCost)
		buf = m.LoadN(s.Addrs, buf[:0])
		for _, r := range buf {
			h.Add(r.Latency)
		}
	}
	return h, nil
}
