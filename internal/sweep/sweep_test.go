package sweep

import (
	"math"
	"runtime"
	"testing"

	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// testSpec is a small but non-trivial sweep: noisy machine, flushes on,
// a handful of pages, several padding points.
func testSpec() Spec {
	cfg := machine.SandyBridge()
	cfg.NoiseProb = 0.2
	cfg.NoiseMin = 100
	cfg.NoiseMax = 400
	return Spec{
		Machine:      cfg,
		Addrs:        []phys.Addr{0x0, 0x1000, 0x41000, 0x200000, 0x5000},
		PadMin:       0,
		PadMax:       60,
		PadStep:      10,
		Reps:         50,
		FlushBetween: true,
		BaseSeed:     42,
	}
}

// evictSpec is a small eviction-driven sweep: two targets in distinct
// 2 MiB regions, light noise, a couple of padding points. Every shard
// runs Algorithm 1 before measuring.
func evictSpec() Spec {
	cfg := machine.SandyBridge()
	cfg.NoiseProb = 0.05
	cfg.NoiseMin = 100
	cfg.NoiseMax = 400
	return Spec{
		Machine:      cfg,
		Addrs:        []phys.Addr{0x0, 0x200000},
		PadMin:       0,
		PadMax:       20,
		PadStep:      10,
		Reps:         8,
		EvictBetween: true,
		BaseSeed:     7,
	}
}

func TestRunValidatesSpec(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Addrs = nil },
		func(s *Spec) { s.Reps = 0 },
		func(s *Spec) { s.PadStep = 0 },
		func(s *Spec) { s.PadMin = -1 },
		func(s *Spec) { s.PadMax = s.PadMin - 1 },
		func(s *Spec) { s.Machine.FreqHz = 0 },
		func(s *Spec) { s.EvictBetween = true }, // both modes at once
	}
	for i, mutate := range bad {
		s := testSpec()
		mutate(&s)
		if _, err := Run(s); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestSweepShapeAndSampleCounts(t *testing.T) {
	s := testSpec()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 7 {
		t.Fatalf("points = %d, want 7 (pads 0..60 step 10)", len(res.Points))
	}
	wantSamples := uint64(s.Reps * len(s.Addrs))
	for i, p := range res.Points {
		if p.Padding != i*10 {
			t.Fatalf("point %d padding = %d, want %d", i, p.Padding, i*10)
		}
		if got := p.Hist.Total(); got != wantSamples {
			t.Fatalf("padding %d samples = %d, want %d", p.Padding, got, wantSamples)
		}
	}
	if got := res.Merged().Total(); got != wantSamples*7 {
		t.Fatalf("merged samples = %d, want %d", got, wantSamples*7)
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the engine's core
// contract: for a fixed seed the merged histograms are bit-identical
// no matter how the shards are spread over workers.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	s := testSpec()
	s.Workers = 1
	serial, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0) + 3} {
		s.Workers = workers
		par, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Points) != len(serial.Points) {
			t.Fatalf("%d workers: %d points, want %d", workers, len(par.Points), len(serial.Points))
		}
		for i := range serial.Points {
			a, b := serial.Points[i], par.Points[i]
			if a.Padding != b.Padding || !a.Hist.Equal(b.Hist) {
				t.Fatalf("%d workers: padding %d histogram differs from serial run", workers, a.Padding)
			}
		}
	}
}

// TestSweepSeparatesCachedFromFlushed checks the physics the engine
// exists to measure: with flushes the latencies are DRAM-class, without
// them the stream settles into cache hits.
func TestSweepSeparatesCachedFromFlushed(t *testing.T) {
	s := testSpec()
	s.Machine.NoiseProb = 0 // deterministic latencies for the bounds below
	s.PadMin, s.PadMax, s.PadStep = 0, 0, 1
	lat := s.Machine.Lat

	flushed, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.FlushBetween = false
	cached, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}

	// Every flushed sample pays at least a DRAM row access on top of
	// translation; the cached run must contain L1-hit samples.
	for _, b := range flushed.Points[0].Hist.Bins() {
		if b.Latency < lat.DRAMRowHit {
			t.Fatalf("flushed sweep has sub-DRAM latency %d", b.Latency)
		}
	}
	warm := lat.TLBL1Hit + lat.L1Hit
	if cached.Points[0].Hist.Count(warm) == 0 {
		t.Fatal("cached sweep has no warm L1-hit samples")
	}
}

// TestEvictSweepMeasuresImplicitPath: in EvictBetween mode every timed
// load rides the full implicit-access path — translation evicted by
// the TLB set, leaf PTE evicted by the LLC set — so no sample can be a
// warm TLB+L1 hit, and the slow tail reaches DRAM-walk latencies.
func TestEvictSweepMeasuresImplicitPath(t *testing.T) {
	s := evictSpec()
	s.Machine.NoiseProb = 0 // deterministic latencies for the bounds below
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	lat := s.Machine.Lat
	merged := res.Merged()
	warm := lat.TLBL1Hit + lat.L1Hit
	if merged.Count(warm) != 0 {
		t.Fatal("eviction-driven sweep produced warm-hit samples")
	}
	// Every sample at least walked: one walk step plus a memory fetch
	// on the translation side alone.
	if min := merged.Quantile(0); min < lat.PageWalkStep+lat.L1Hit {
		t.Fatalf("minimum sample %d below any possible walk", min)
	}
	// And the leaf-PTE DRAM fetch shows up in the distribution.
	if max := merged.Quantile(1); max < lat.DRAMRowHit {
		t.Fatalf("maximum sample %d never reached DRAM", max)
	}
}

// TestEvictSweepDeterministicAcrossWorkerCounts extends the engine's
// core contract to the eviction-driven mode: per-shard Algorithm 1
// construction happens on the shard's own deterministically seeded
// machine, so worker count still cannot change a single sample.
func TestEvictSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	s := evictSpec()
	s.Workers = 1
	serial, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0) + 1} {
		s.Workers = workers
		par, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Points {
			a, b := serial.Points[i], par.Points[i]
			if a.Padding != b.Padding || !a.Hist.Equal(b.Hist) {
				t.Fatalf("%d workers: padding %d histogram differs from serial run", workers, a.Padding)
			}
		}
	}
}

// TestShardSeedsDiffer guards the seed mix: shards must not share noise
// streams just because the base seed is small.
func TestShardSeedsDiffer(t *testing.T) {
	seen := map[int64]bool{}
	for shard := 0; shard < 64; shard++ {
		seed := shardSeed(1, shard)
		if seen[seed] {
			t.Fatalf("duplicate shard seed %d at shard %d", seed, shard)
		}
		seen[seed] = true
	}
}

func TestHistogramMergeAndEqual(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for _, c := range []timing.Cycles{5, 5, 90, 300} {
		a.Add(c)
	}
	b.Add(5)
	if a.Equal(b) {
		t.Fatal("unequal histograms reported equal")
	}
	b.Add(5)
	b.Add(90)
	b.Add(300)
	if !a.Equal(b) {
		t.Fatal("equal histograms reported unequal")
	}
	a.Merge(b)
	if a.Total() != 8 || a.Count(5) != 4 {
		t.Fatalf("merge wrong: total %d count(5) %d", a.Total(), a.Count(5))
	}
	bins := a.Bins()
	if len(bins) != 3 || bins[0].Latency != 5 || bins[2].Latency != 300 {
		t.Fatalf("bins = %+v", bins)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, c := range []timing.Cycles{10, 10, 10, 20, 20, 30, 30, 30, 30, 100} {
		h.Add(c)
	}
	for _, tc := range []struct {
		q    float64
		want timing.Cycles
	}{
		{0, 10}, {0.25, 10}, {0.5, 20}, {0.9, 30}, {1, 100},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := h.Mean(); got != 29 {
		t.Errorf("Mean = %v, want 29", got)
	}
}

// TestQuantilesEdgeCases pins the documented clamping contract before
// the flip-latency tables start depending on it: q=0 is exactly the
// minimum and q=1 exactly the maximum, an empty histogram reports 0
// for every query, and out-of-range q (negative, past one, NaN, the
// infinities) clamp to the corresponding edge instead of panicking or
// hitting Go's implementation-defined float→integer conversion.
func TestQuantilesEdgeCases(t *testing.T) {
	empty := NewHistogram()
	for _, got := range empty.Quantiles(-1, 0, 0.5, 1, 2, math.NaN()) {
		if got != 0 {
			t.Fatalf("empty histogram quantile = %d, want 0", got)
		}
	}

	h := NewHistogram()
	for _, c := range []timing.Cycles{40, 7, 300, 7, 90} {
		h.Add(c)
	}
	const min, max = timing.Cycles(7), timing.Cycles(300)
	// The documented min/max contract at the exact edges.
	if got := h.Quantile(0); got != min {
		t.Errorf("Quantile(0) = %d, want the minimum %d", got, min)
	}
	if got := h.Quantile(1); got != max {
		t.Errorf("Quantile(1) = %d, want the maximum %d", got, max)
	}
	// Out-of-range queries clamp to the same edges.
	for _, q := range []float64{-0.01, -5, math.Inf(-1), math.NaN()} {
		if got := h.Quantile(q); got != min {
			t.Errorf("Quantile(%v) = %d, want clamped minimum %d", q, got, min)
		}
	}
	for _, q := range []float64{1.01, 17, math.Inf(1)} {
		if got := h.Quantile(q); got != max {
			t.Errorf("Quantile(%v) = %d, want clamped maximum %d", q, got, max)
		}
	}
	// A single batched call agrees with the per-query path.
	got := h.Quantiles(-1, 0, 1, 2)
	want := []timing.Cycles{min, min, max, max}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Quantiles[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// A vanishingly small positive q still means "at least one sample":
	// the rank-1 clamp, not a zero rank.
	if got := h.Quantile(1e-12); got != min {
		t.Errorf("Quantile(1e-12) = %d, want %d", got, min)
	}
}

// BenchmarkSweep measures end-to-end engine throughput on a small
// parallel sweep.
func BenchmarkSweep(b *testing.B) {
	s := testSpec()
	s.Reps = 20
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}
