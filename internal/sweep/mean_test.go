package sweep

import (
	"testing"

	"pthammer/internal/timing"
)

// TestMeanIsOrderIndependent pins the determinism fix in Histogram.Mean:
// the sum must run over sorted bins, not the raw count map. The samples
// are chosen so that summing in the wrong order visibly changes the
// result: 2^53 is the edge of float64's exact-integer range, so
// (1+2)+2^53 and (2^53+1)+2 round to different values. With
// map-iteration order deciding the sum, some fresh histograms would
// report a different mean for identical samples; after the fix every
// one of them must report the bit-identical sorted-order value.
func TestMeanIsOrderIndependent(t *testing.T) {
	big := timing.Cycles(1) << 53
	// Sorted-bin order: (1 + 2) + 2^53.
	want := (float64(1) + float64(2) + float64(big)) / 3
	for i := 0; i < 200; i++ {
		h := NewHistogram()
		// Insertion order must not matter; vary it too.
		if i%2 == 0 {
			h.Add(big)
			h.Add(2)
			h.Add(1)
		} else {
			h.Add(1)
			h.Add(2)
			h.Add(big)
		}
		if got := h.Mean(); got != want {
			t.Fatalf("iteration %d: Mean() = %v, want %v (sum order leaked into the result)", i, got, want)
		}
	}
}

// TestMeanMatchesExactAverage checks the plain arithmetic on values far
// from any float rounding edge.
func TestMeanMatchesExactAverage(t *testing.T) {
	h := NewHistogram()
	for _, c := range []timing.Cycles{10, 20, 20, 50} {
		h.Add(c)
	}
	if got, want := h.Mean(), 25.0; got != want {
		t.Fatalf("Mean() = %v, want %v", got, want)
	}
	if got := NewHistogram().Mean(); got != 0 {
		t.Fatalf("empty Mean() = %v, want 0", got)
	}
}
