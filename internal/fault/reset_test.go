package fault

import (
	"reflect"
	"testing"

	"pthammer/internal/dram"
)

// TestResetDisarmsLeakedFault is the no-cross-cohort-leak pin: a
// pair-invalidate fault armed (and even fired) by one cohort's flips
// must be unable to fire in the next cohort after Reset — the armed
// row, the trigger window, the fired latch and the window counter are
// all gone.
func TestResetDisarmsLeakedFault(t *testing.T) {
	m := MustNewModel(Config{Class: PairInvalidate, Seed: 9, TriggerWindows: 2})
	if err := m.Bind(testGeom()); err != nil {
		t.Fatal(err)
	}
	flipped := dram.Victim{Channel: 0, Rank: 0, Bank: 2, Row: 500, Pressure: 96}

	// Cohort 1: arm on the first flip, reach the trigger, fire.
	m.OnWindow(1)
	m.ObserveFlip(flipped)
	m.OnWindow(3)
	if m.Stats().PairsInvalidated != 1 || !m.SuppressAttempt(flipped) {
		t.Fatalf("cohort 1 setup failed to fire the armed fault: %+v", m.Stats())
	}

	// Recycle. The leaked arming must not survive: the armed row flips
	// freely again, and no amount of window progress re-fires the old
	// invalidation.
	m.Reset()
	if got := m.Stats(); got != (Stats{}) {
		t.Fatalf("stats survived Reset: %+v", got)
	}
	for w := uint64(1); w <= 10; w++ {
		m.OnWindow(w)
		if m.SuppressAttempt(flipped) {
			t.Fatalf("window %d: leaked armed fault suppressed the next cohort's attempt", w)
		}
	}
	if m.Stats().PairsInvalidated != 0 {
		t.Fatal("leaked arming re-fired in the next cohort without a new flip")
	}

	// The recycled model must still work from scratch: a fresh flip in
	// the new cohort arms and fires as on a fresh model.
	m.ObserveFlip(flipped)
	m.OnWindow(12)
	if m.Stats().PairsInvalidated != 1 {
		t.Fatal("recycled model no longer arms on a fresh flip")
	}
}

// TestResetReplaysBitIdentically pins the stream half of the contract:
// a recycled model must behave bit-identically to a fresh one for the
// same hook sequence, across every fault class.
func TestResetReplaysBitIdentically(t *testing.T) {
	for _, class := range []Class{EvictionDecay, ThresholdDrift, TRRSuppress, FlipMisland, PairInvalidate} {
		cfg := Config{Class: class, Seed: 5}.WithDefaults()
		drive := func(m *Model) (starts, drops, jitters []any, st Stats) {
			v := dram.Victim{Channel: 0, Rank: 0, Bank: 1, Row: 42, Pressure: 80}
			for w := uint64(1); w <= 12; w++ {
				m.OnWindow(w)
				starts = append(starts, m.PrimeStart(16))
				drops = append(drops, m.DropMember())
				jitters = append(jitters, m.ProbeJitter())
				if w == 3 {
					m.ObserveFlip(v)
				}
				m.SuppressAttempt(v)
				a, b, _ := m.RedirectFlip(0x1234000, uint(w%8))
				starts = append(starts, a, b)
			}
			return starts, drops, jitters, m.Stats()
		}

		fresh := MustNewModel(cfg)
		if err := fresh.Bind(testGeom()); err != nil {
			t.Fatal(err)
		}
		wantS, wantD, wantJ, wantStats := drive(fresh)

		recycled := MustNewModel(cfg)
		if err := recycled.Bind(testGeom()); err != nil {
			t.Fatal(err)
		}
		drive(recycled) // dirty
		recycled.Reset()
		gotS, gotD, gotJ, gotStats := drive(recycled)

		if !reflect.DeepEqual(wantS, gotS) || !reflect.DeepEqual(wantD, gotD) ||
			!reflect.DeepEqual(wantJ, gotJ) || wantStats != gotStats {
			t.Errorf("%v: recycled model diverged from fresh\nfresh:    %v %v %v %+v\nrecycled: %v %v %v %+v",
				class, wantS, wantD, wantJ, wantStats, gotS, gotD, gotJ, gotStats)
		}
	}
}
