package fault

import (
	"testing"

	"pthammer/internal/dram"
	"pthammer/internal/phys"
)

func testGeom() dram.Config {
	return dram.Config{
		Channels:        1,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		Rows:            1 << 15,
		RowBytes:        8 << 10,
		HammerThreshold: 64,
		RefreshWindow:   350_000,
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"unknown class", Config{Class: "cosmic-ray"}, false},
		{"zero class", Config{}, false},
		{"defaults valid", Config{Class: EvictionDecay}, true},
		{"drop rate above one", Config{Class: EvictionDecay, DropRate: 1.5}, false},
		{"suppress rate negative", Config{Class: TRRSuppress, SuppressRate: -0.1}, false},
		{"misland rate one is valid", Config{Class: FlipMisland, MislandRate: 1}, true},
		{"drift prob above one", Config{Class: ThresholdDrift, DriftProb: 2}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewModel(tc.cfg)
			if tc.ok && err != nil {
				t.Fatalf("NewModel(%+v) = %v, want nil", tc.cfg, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("NewModel(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
}

func TestWithDefaultsFillsEveryKnob(t *testing.T) {
	c := Config{Class: EvictionDecay, Seed: 7}.WithDefaults()
	if c.DropRate == 0 || c.BurstPrimes == 0 || c.QuietPrimes == 0 ||
		c.DriftProb == 0 || c.DriftMax == 0 || c.SuppressRate == 0 ||
		c.MislandRate == 0 || c.MislandRows == 0 || c.TriggerWindows == 0 {
		t.Fatalf("WithDefaults left a zero knob: %+v", c)
	}
	if c.Class != EvictionDecay || c.Seed != 7 {
		t.Fatalf("WithDefaults changed identity fields: %+v", c)
	}
}

func TestBindIsOneShot(t *testing.T) {
	m := MustNewModel(Config{Class: FlipMisland, Seed: 1})
	if err := m.Bind(testGeom()); err != nil {
		t.Fatalf("first Bind: %v", err)
	}
	if err := m.Bind(testGeom()); err == nil {
		t.Fatal("second Bind succeeded, want error")
	}
}

func TestEvictionDecayStartsQuiet(t *testing.T) {
	m := MustNewModel(Config{Class: EvictionDecay, Seed: 1})
	quiet := m.Config().QuietPrimes
	for i := uint64(0); i < quiet; i++ {
		if off := m.PrimeStart(20); off != 0 {
			t.Fatalf("prime %d: rotation %d during quiet head, want 0", i, off)
		}
		for j := 0; j < 20; j++ {
			if m.DropMember() {
				t.Fatalf("prime %d: member dropped during quiet head", i)
			}
		}
	}
	if s := m.Stats(); s.MembersDropped != 0 || s.PrimesFaulted != 0 {
		t.Fatalf("faults counted during quiet head: %+v", s)
	}
	// The first burst prime must start faulting.
	dropped := false
	for i := uint64(0); i < m.Config().BurstPrimes; i++ {
		m.PrimeStart(20)
		for j := 0; j < 20; j++ {
			dropped = m.DropMember() || dropped
		}
	}
	s := m.Stats()
	if !dropped || s.MembersDropped == 0 || s.PrimesFaulted != m.Config().BurstPrimes {
		t.Fatalf("burst did not fault: dropped=%v stats=%+v", dropped, s)
	}
	// Burst drop rate should track DropRate within a loose band.
	total := float64(m.Config().BurstPrimes * 20)
	rate := float64(s.MembersDropped) / total
	if rate < 0.2 || rate > 0.4 {
		t.Fatalf("burst drop rate %.3f far from configured %.3f", rate, m.Config().DropRate)
	}
}

func TestOtherClassesLeaveMachineSeamsAlone(t *testing.T) {
	for _, class := range []Class{ThresholdDrift, TRRSuppress, FlipMisland, PairInvalidate} {
		m := MustNewModel(Config{Class: class, Seed: 1})
		for i := 0; i < 10_000; i++ {
			if m.PrimeStart(20) != 0 || m.DropMember() {
				t.Fatalf("%s perturbed the Prime stream", class)
			}
		}
		if class != ThresholdDrift {
			for i := 0; i < 10_000; i++ {
				if m.ProbeJitter() != 0 {
					t.Fatalf("%s perturbed a timed probe", class)
				}
			}
		}
	}
}

func TestThresholdDriftSpikesUpwardOnly(t *testing.T) {
	m := MustNewModel(Config{Class: ThresholdDrift, Seed: 3})
	spikes := 0
	for i := 0; i < 10_000; i++ {
		j := m.ProbeJitter()
		if j > 0 {
			spikes++
			if j > m.Config().DriftMax {
				t.Fatalf("spike %d exceeds DriftMax %d", j, m.Config().DriftMax)
			}
		}
	}
	rate := float64(spikes) / 10_000
	if rate < 0.15 || rate > 0.35 {
		t.Fatalf("spike rate %.3f far from configured %.3f", rate, m.Config().DriftProb)
	}
	if got := m.Stats().ProbesPerturbed; got != uint64(spikes) {
		t.Fatalf("ProbesPerturbed = %d, want %d", got, spikes)
	}
}

func TestTRRSuppressSamplesAtRate(t *testing.T) {
	m := MustNewModel(Config{Class: TRRSuppress, Seed: 5})
	v := dram.Victim{Row: 100, Pressure: 96}
	suppressed := 0
	for i := 0; i < 10_000; i++ {
		if m.SuppressAttempt(v) {
			suppressed++
		}
	}
	rate := float64(suppressed) / 10_000
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("suppression rate %.3f far from configured %.3f", rate, m.Config().SuppressRate)
	}
	if got := m.Stats().AttemptsSuppressed; got != uint64(suppressed) {
		t.Fatalf("AttemptsSuppressed = %d, want %d", got, suppressed)
	}
}

func TestTRRSuppressAllIsTotal(t *testing.T) {
	m := MustNewModel(Config{Class: TRRSuppress, Seed: 5, SuppressRate: 1})
	for i := 0; i < 1000; i++ {
		if !m.SuppressAttempt(dram.Victim{Row: uint64(i)}) {
			t.Fatal("SuppressRate 1.0 let an attempt through")
		}
	}
}

func TestPairInvalidateArmsOnFirstFlipThenKillsThatRowOnly(t *testing.T) {
	m := MustNewModel(Config{Class: PairInvalidate, Seed: 9, TriggerWindows: 3})
	flipped := dram.Victim{Channel: 0, Rank: 0, Bank: 2, Row: 500, Pressure: 96}
	other := dram.Victim{Channel: 0, Rank: 0, Bank: 2, Row: 900, Pressure: 70}

	// No flip observed yet: nothing arms, nothing suppresses.
	m.OnWindow(1)
	if m.SuppressAttempt(flipped) || m.SuppressAttempt(other) {
		t.Fatal("suppressed before any flip was observed")
	}
	// The first recorded flip arms its row at window 1.
	m.ObserveFlip(flipped)
	for w := uint64(2); w <= 3; w++ {
		m.OnWindow(w)
		if m.SuppressAttempt(flipped) || m.SuppressAttempt(other) {
			t.Fatalf("window %d: suppressed before trigger", w)
		}
	}
	if m.Stats().PairsInvalidated != 0 {
		t.Fatal("pair invalidated before trigger window count elapsed")
	}
	// Window 4 = armedAt(1) + TriggerWindows(3): the flipped row dies,
	// every other row keeps flipping.
	m.OnWindow(4)
	if m.Stats().PairsInvalidated != 1 {
		t.Fatal("pair not invalidated after trigger window count")
	}
	if !m.SuppressAttempt(flipped) {
		t.Fatal("armed row not suppressed after invalidation")
	}
	if m.SuppressAttempt(other) {
		t.Fatal("unarmed row suppressed")
	}
	if m.Stats().AttemptsSuppressed != 1 {
		t.Fatalf("AttemptsSuppressed = %d, want 1", m.Stats().AttemptsSuppressed)
	}
	// Later flips elsewhere do not re-arm: the OS migrated one table.
	m.ObserveFlip(other)
	if m.SuppressAttempt(other) {
		t.Fatal("second flip re-armed the invalidation")
	}
	if !m.SuppressAttempt(flipped) {
		t.Fatal("original armed row released")
	}
}

func TestRedirectFlipMovesRowsNotBanks(t *testing.T) {
	geom := testGeom()
	m := MustNewModel(Config{Class: FlipMisland, Seed: 2, MislandRate: 1})
	if err := m.Bind(geom); err != nil {
		t.Fatal(err)
	}
	start, _ := geom.RowRange(0, 0, 3, 1000)
	for i := 0; i < 100; i++ {
		addr := start + phys.Addr(i*64)
		got, bit, ok := m.RedirectFlip(addr, 5)
		if !ok {
			t.Fatal("MislandRate 1.0 did not redirect")
		}
		if bit != 5 {
			t.Fatalf("redirect changed bit: %d", bit)
		}
		from, to := geom.Map(addr), geom.Map(got)
		if to.Channel != from.Channel || to.Rank != from.Rank || to.Bank != from.Bank {
			t.Fatalf("redirect crossed banks: %+v -> %+v", from, to)
		}
		if to.Row != from.Row+m.Config().MislandRows {
			t.Fatalf("redirect row %d, want %d", to.Row, from.Row+m.Config().MislandRows)
		}
	}
	if got := m.Stats().FlipsRedirected; got != 100 {
		t.Fatalf("FlipsRedirected = %d, want 100", got)
	}
}

func TestRedirectFlipReflectsAtBankTop(t *testing.T) {
	geom := testGeom()
	m := MustNewModel(Config{Class: FlipMisland, Seed: 2, MislandRate: 1})
	if err := m.Bind(geom); err != nil {
		t.Fatal(err)
	}
	topRow := geom.Rows - 1
	start, _ := geom.RowRange(0, 0, 0, topRow)
	got, _, ok := m.RedirectFlip(start, 0)
	if !ok {
		t.Fatal("MislandRate 1.0 did not redirect")
	}
	if to := geom.Map(got); to.Row != topRow-m.Config().MislandRows {
		t.Fatalf("top-of-bank redirect row %d, want %d", to.Row, topRow-m.Config().MislandRows)
	}
}

func TestModelDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		m := MustNewModel(Config{Class: TRRSuppress, Seed: seed})
		out := make([]bool, 500)
		for i := range out {
			out[i] = m.SuppressAttempt(dram.Victim{Row: uint64(i)})
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at attempt %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical suppression streams")
	}
}

func TestMatrixShape(t *testing.T) {
	mx := Matrix()
	if mx[0].Name != "none" || mx[0].Config != nil || !mx[0].Recoverable {
		t.Fatalf("matrix[0] is not the fault-free control: %+v", mx[0])
	}
	seen := map[Class]bool{}
	unrecoverable := 0
	for _, sc := range mx[1:] {
		if sc.Config == nil {
			t.Fatalf("scenario %q has nil config", sc.Name)
		}
		if _, err := NewModel(Config{Class: sc.Config.Class, Seed: 1}); err != nil {
			t.Fatalf("scenario %q: %v", sc.Name, err)
		}
		seen[sc.Config.Class] = true
		if !sc.Recoverable {
			unrecoverable++
		}
	}
	for _, class := range Classes() {
		if !seen[class] {
			t.Fatalf("class %s missing from matrix", class)
		}
	}
	if unrecoverable != 2 {
		t.Fatalf("matrix has %d unrecoverable scenarios, want 2", unrecoverable)
	}
}

// TestStatsTotalAndClass: Total sums every seam's counter and the
// model reports its configured class.
func TestStatsTotalAndClass(t *testing.T) {
	s := Stats{MembersDropped: 1, ProbesPerturbed: 2, AttemptsSuppressed: 3, FlipsRedirected: 4, PairsInvalidated: 5}
	if s.Total() != 15 {
		t.Fatalf("Total() = %d, want 15", s.Total())
	}
	m := MustNewModel(Config{Class: TRRSuppress, Seed: 1})
	if m.Class() != TRRSuppress {
		t.Fatalf("Class() = %v, want TRRSuppress", m.Class())
	}
}
