// Package fault is the deterministic fault-injection layer: the
// component that makes the simulated attack fail the way real PThammer
// runs fail, so the escalation driver can be proven to diagnose and
// recover instead of assuming the golden path. Each Model simulates one
// adversity class at the seam where the real failure lives:
//
//   - eviction-decay — system noise degrades the measured eviction
//     sets: during bursts, members of every Prime stream are dropped
//     and the walk order rotates, so a minimal set intermittently stops
//     evicting and hammer pressure dips below the threshold;
//   - threshold-drift — thermal/contention drift perturbs timed
//     probes, so the latency thresholds Algorithm 1 calibrated no
//     longer sit cleanly between the cached and evicted populations;
//   - trr-suppress — an in-DRAM TRR-style sampler intercepts a
//     fraction of disturbance attempts before they can flip a cell
//     (rate 1.0 models a perfect mitigation: the module never flips);
//   - flip-misland — flips land outside the sprayed PTE surface: a
//     fraction of disturbance attempts are redirected onto a row of
//     attacker-owned (unsprayed) frames, wasting the damage;
//   - pair-invalidate — the OS invalidates the planned aggressor pair
//     mid-run (table migration/remap): once armed, every disturbance
//     attempt against the first victim row seen is suppressed, so only
//     replanning onto a different pair makes progress again.
//
// Like flip.Model, a fault Model is probabilistic but fully
// deterministic per seed, is bound to exactly one machine
// (machine.Config.FaultModel), and costs nothing when unset: every
// hook sits behind a nil check the hot path caches. The counters in
// Stats are the ground truth a Verdict reports as "faults observed".
//
// In the multi-core mode one bound Model serves every core: the
// deterministic interleaver runs exactly one core's quantum at a time,
// so the Model's hooks and rng are never entered concurrently and
// draw in a schedule-determined (hence reproducible) order.
package fault

import (
	"fmt"
	"math/rand"

	"pthammer/internal/dram"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Class names one adversity class. The zero value is invalid: a Model
// always injects exactly one class (compose by running the seed matrix
// across classes, not by stacking models).
type Class string

// The fault classes, one per attack-path seam.
const (
	EvictionDecay  Class = "eviction-decay"
	ThresholdDrift Class = "threshold-drift"
	TRRSuppress    Class = "trr-suppress"
	FlipMisland    Class = "flip-misland"
	PairInvalidate Class = "pair-invalidate"
)

// Classes returns every fault class, in seam order.
func Classes() []Class {
	return []Class{EvictionDecay, ThresholdDrift, TRRSuppress, FlipMisland, PairInvalidate}
}

// Config fixes one fault class and its knobs. The zero value of every
// knob selects the class's default; only Class and Seed are required.
type Config struct {
	Class Class
	// Seed drives the model's private random stream; the injected fault
	// sequence is a pure function of (Config, access sequence).
	Seed int64

	// eviction-decay: during a burst, each Prime-stream member is
	// dropped with probability DropRate and the walk order rotates by a
	// random offset. Bursts alternate with quiet stretches, counted in
	// Prime calls, starting quiet (so initial eviction-set construction
	// measures an honest machine and the decay hits the sets it built).
	DropRate    float64
	BurstPrimes uint64
	QuietPrimes uint64

	// threshold-drift: each timed probe is inflated by a uniform spike
	// in [1, DriftMax] cycles with probability DriftProb. Spikes only
	// add latency, mirroring real contention.
	DriftProb float64
	DriftMax  timing.Cycles

	// trr-suppress: each disturbance attempt is intercepted with
	// probability SuppressRate; 1.0 is a perfect in-DRAM mitigation.
	SuppressRate float64

	// flip-misland: each disturbance attempt is redirected with
	// probability MislandRate onto the row MislandRows away (same bank,
	// same column) — attacker-owned frames outside the sprayed PTE
	// surface; 1.0 means no flip ever lands where it is exploitable.
	MislandRate float64
	MislandRows uint64

	// pair-invalidate: the first victim row the flip engine reports is
	// the armed pair; once TriggerWindows end-of-window reports have
	// passed since arming, every attempt against that row is suppressed.
	TriggerWindows uint64
}

// WithDefaults returns the config with zero-valued knobs replaced by
// the class defaults (tuned so every class is observable on the
// escalation demo machine without being a foregone conclusion).
func (c Config) WithDefaults() Config {
	if c.DropRate == 0 {
		c.DropRate = 0.3
	}
	if c.BurstPrimes == 0 {
		c.BurstPrimes = 2500
	}
	if c.QuietPrimes == 0 {
		c.QuietPrimes = 4000
	}
	if c.DriftProb == 0 {
		c.DriftProb = 0.25
	}
	if c.DriftMax == 0 {
		c.DriftMax = 400
	}
	if c.SuppressRate == 0 {
		c.SuppressRate = 0.5
	}
	if c.MislandRate == 0 {
		c.MislandRate = 0.5
	}
	if c.MislandRows == 0 {
		c.MislandRows = 8
	}
	if c.TriggerWindows == 0 {
		c.TriggerWindows = 8
	}
	return c
}

// Validate reports an error for an unknown class or an out-of-range
// knob (after defaults are applied).
func (c Config) Validate() error {
	switch c.Class {
	case EvictionDecay, ThresholdDrift, TRRSuppress, FlipMisland, PairInvalidate:
	default:
		return fmt.Errorf("fault: unknown class %q", string(c.Class))
	}
	rates := []struct {
		name string
		v    float64
	}{
		{"drop rate", c.DropRate},
		{"drift probability", c.DriftProb},
		{"suppress rate", c.SuppressRate},
		{"misland rate", c.MislandRate},
	}
	for _, r := range rates {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s: %s %v outside [0,1]", c.Class, r.name, r.v)
		}
	}
	return nil
}

// Stats counts the faults a model actually injected — the "faults
// observed" a Verdict carries, and what tests assert to prove a class
// really fired.
type Stats struct {
	// PrimesFaulted counts Prime calls issued during a decay burst;
	// MembersDropped the stream members those bursts swallowed.
	PrimesFaulted  uint64
	MembersDropped uint64
	// ProbesPerturbed counts timed probes that took a drift spike.
	ProbesPerturbed uint64
	// AttemptsSuppressed counts disturbance attempts the TRR sampler or
	// an invalidated pair intercepted.
	AttemptsSuppressed uint64
	// FlipsRedirected counts disturbance attempts sent to a mislanded
	// row.
	FlipsRedirected uint64
	// PairsInvalidated is 1 once the armed pair's trigger has passed.
	PairsInvalidated uint64
}

// Total is the aggregate fault count across every seam.
func (s Stats) Total() uint64 {
	return s.MembersDropped + s.ProbesPerturbed + s.AttemptsSuppressed +
		s.FlipsRedirected + s.PairsInvalidated
}

// Model injects one fault class into one machine. Create it with
// NewModel, hand it to machine.Config.FaultModel (which binds it to the
// machine's DRAM geometry and subscribes it to the flip engine's
// injection points), and read the injected-fault counts back with
// Stats.
type Model struct {
	cfg Config
	rng *rand.Rand

	geom  dram.Config
	bound bool

	stats Stats

	// Eviction-decay burst bookkeeping: primes counts every Prime call,
	// inBurst caches whether the current call sits in a burst.
	primes  uint64
	inBurst bool

	// Pair-invalidate arming: the row where the first recorded flip
	// landed, and the window count at which suppression engages.
	armed                        bool
	armedChannel, armedRank      int
	armedBank                    int
	armedRow                     uint64
	armedAtWindow, currentWindow uint64
}

// NewModel validates the config (after applying class defaults) and
// builds an unbound model.
func NewModel(cfg Config) (*Model, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Model{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// MustNewModel is NewModel but panics on error.
func MustNewModel(cfg Config) *Model {
	m, err := NewModel(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the model's config with defaults applied.
func (m *Model) Config() Config { return m.cfg }

// Class returns the injected fault class.
func (m *Model) Class() Class { return m.cfg.Class }

// Stats returns the counts of faults injected so far.
func (m *Model) Stats() Stats { return m.stats }

// Bind attaches the model to one machine's DRAM geometry (needed to
// relocate mislanded flips). The machine facade calls it during
// construction; binding twice is an error because the model's random
// stream must belong to exactly one simulated run.
func (m *Model) Bind(geom dram.Config) error {
	if m.bound {
		return fmt.Errorf("fault: model already bound to a machine")
	}
	if err := geom.Validate(); err != nil {
		return err
	}
	m.geom = geom
	m.bound = true
	return nil
}

// Reset recycles the model for the next cohort on the same machine
// (the Reset/Recycle contract): the random stream, the fault counters,
// the decay-burst bookkeeping and — critically — the pair-invalidate
// arming all rewind to the just-built state, while the geometry
// binding stays. A fault armed by one cohort's flips can therefore
// never fire into the next cohort: the armed row, its trigger window
// and the window counter are all cleared, and a recycled model behaves
// bit-identically to a fresh NewModel(cfg).
func (m *Model) Reset() {
	m.rng.Seed(m.cfg.Seed)
	m.stats = Stats{}
	m.primes, m.inBurst = 0, false
	m.armed = false
	m.armedChannel, m.armedRank, m.armedBank = 0, 0, 0
	m.armedRow, m.armedAtWindow, m.currentWindow = 0, 0, 0
}

// PrimeStart is the machine's pre-Prime hook: it advances the decay
// burst cycle and returns the rotation offset the stream should start
// from (0 outside bursts — the stream walks in build order). n is the
// stream length.
//
//pthammer:noalloc
func (m *Model) PrimeStart(n int) int {
	if m.cfg.Class != EvictionDecay || n == 0 {
		return 0
	}
	period := m.cfg.QuietPrimes + m.cfg.BurstPrimes
	m.inBurst = m.primes%period >= m.cfg.QuietPrimes
	m.primes++
	if !m.inBurst {
		return 0
	}
	m.stats.PrimesFaulted++
	return m.rng.Intn(n)
}

// DropMember is the machine's per-member hook: inside a decay burst it
// drops the member with the configured probability.
//
//pthammer:noalloc
func (m *Model) DropMember() bool {
	if m.cfg.Class != EvictionDecay || !m.inBurst {
		return false
	}
	if m.rng.Float64() >= m.cfg.DropRate {
		return false
	}
	m.stats.MembersDropped++
	return true
}

// ProbeJitter is the machine's timed-probe hook: under threshold drift
// it returns the extra cycles to inflate this probe by (0 otherwise).
// The machine charges the spike to the shared clock so the
// clock/latency/PMC agreement invariant holds under drift too.
//
//pthammer:noalloc
func (m *Model) ProbeJitter() timing.Cycles {
	if m.cfg.Class != ThresholdDrift {
		return 0
	}
	if m.rng.Float64() >= m.cfg.DriftProb {
		return 0
	}
	m.stats.ProbesPerturbed++
	return 1 + timing.Cycles(m.rng.Int63n(int64(m.cfg.DriftMax)))
}

// OnWindow is the flip engine's window tick (flip.Injector): it drives
// the pair-invalidate trigger clock.
func (m *Model) OnWindow(window uint64) {
	m.currentWindow = window
	if m.cfg.Class == PairInvalidate && m.armed &&
		m.stats.PairsInvalidated == 0 &&
		window >= m.armedAtWindow+m.cfg.TriggerWindows {
		m.stats.PairsInvalidated = 1
	}
}

// SuppressAttempt is the flip engine's per-attempt hook
// (flip.Injector): it reports whether this disturbance attempt is
// intercepted before it can flip anything. TRR suppression samples
// uniformly; pair invalidation arms on the first victim row reported
// and, once the trigger window count has passed, kills every attempt
// against that row (a replanned pair hammers a different row and is
// unaffected).
func (m *Model) SuppressAttempt(v dram.Victim) bool {
	switch m.cfg.Class {
	case TRRSuppress:
		if m.rng.Float64() < m.cfg.SuppressRate {
			m.stats.AttemptsSuppressed++
			return true
		}
	case PairInvalidate:
		if m.stats.PairsInvalidated > 0 &&
			v.Channel == m.armedChannel && v.Rank == m.armedRank &&
			v.Bank == m.armedBank && v.Row == m.armedRow {
			m.stats.AttemptsSuppressed++
			return true
		}
	}
	return false
}

// ObserveFlip is the flip engine's post-flip hook (flip.Injector):
// pair invalidation arms on the first recorded disturbance error — the
// simulated OS's ECC patrol spotting a corrupted page table — and,
// TriggerWindows windows later, has migrated the table away: every
// further attempt against that row is suppressed. Flips the patrol
// never sees (suppressed or vanished attempts) never arm it.
func (m *Model) ObserveFlip(v dram.Victim) {
	if m.cfg.Class != PairInvalidate || m.armed {
		return
	}
	m.armed = true
	m.armedChannel, m.armedRank, m.armedBank = v.Channel, v.Rank, v.Bank
	m.armedRow = v.Row
	m.armedAtWindow = m.currentWindow
}

// RedirectFlip is the flip engine's cell-address hook (flip.Injector):
// under flip-misland it relocates the candidate cell onto the row
// MislandRows away in the same bank (same column), reflecting off the
// top of the bank when the offset runs out of rows. ok is false when
// the attempt stays where the disturbance put it.
func (m *Model) RedirectFlip(addr phys.Addr, bit uint) (phys.Addr, uint, bool) {
	if m.cfg.Class != FlipMisland || !m.bound {
		return addr, bit, false
	}
	if m.rng.Float64() >= m.cfg.MislandRate {
		return addr, bit, false
	}
	loc := m.geom.Map(addr)
	if loc.Row+m.cfg.MislandRows < m.geom.Rows {
		loc.Row += m.cfg.MislandRows
	} else {
		loc.Row -= m.cfg.MislandRows
	}
	m.stats.FlipsRedirected++
	return m.geom.AddrOf(loc), bit, true
}

// Scenario is one named cell of the robustness matrix: a fault config
// (nil for the fault-free control) plus whether the budgeted escalation
// driver is expected to recover from it. The matrix is shared by the
// cmd/pthammer-flip robustness table and the CI seed-matrix job so they
// can never test different classes.
type Scenario struct {
	Name string
	// Recoverable marks classes the driver must route around (CI
	// asserts a success-rate floor); unrecoverable classes must instead
	// produce a structured abort within budget on every seed.
	Recoverable bool
	// Config is nil for the fault-free control row.
	Config *Config
}

// Matrix returns the standard robustness matrix: the fault-free
// control, every class at its recoverable defaults, and the two
// perfect-mitigation variants no attacker can beat (suppress-all,
// misland-all). Seed is left zero; runners stamp the per-run seed.
func Matrix() []Scenario {
	return []Scenario{
		{Name: "none", Recoverable: true, Config: nil},
		{Name: string(EvictionDecay), Recoverable: true, Config: &Config{Class: EvictionDecay}},
		{Name: string(ThresholdDrift), Recoverable: true, Config: &Config{Class: ThresholdDrift}},
		{Name: string(TRRSuppress), Recoverable: true, Config: &Config{Class: TRRSuppress}},
		{Name: string(FlipMisland), Recoverable: true, Config: &Config{Class: FlipMisland}},
		{Name: string(PairInvalidate), Recoverable: true, Config: &Config{Class: PairInvalidate}},
		{Name: string(TRRSuppress) + "-all", Recoverable: false, Config: &Config{Class: TRRSuppress, SuppressRate: 1}},
		{Name: string(FlipMisland) + "-all", Recoverable: false, Config: &Config{Class: FlipMisland, MislandRate: 1}},
	}
}
