package ptwalk

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/pagetable"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// fakeMem stands in for the cache hierarchy: it records every access
// the walker issues and serves each at a fixed latency from a
// configurable level.
type fakeMem struct {
	clock    *timing.Clock
	lat      timing.Cycles
	source   mem.Level
	accesses []mem.Access
}

func (f *fakeMem) Lookup(a mem.Access) mem.Result {
	f.accesses = append(f.accesses, a)
	f.clock.Advance(f.lat)
	return mem.Result{Latency: f.lat, Hit: false, Source: f.source}
}

type fixture struct {
	w      *Walker
	tables *pagetable.Tables
	pmem   *phys.Memory
	dev    *fakeMem
	clock  *timing.Clock
	ctrs   *perf.Counters
	lat    timing.LatencyTable
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	const size = 16 << 20
	pmem := phys.MustNew(size)
	tables, err := pagetable.New(pmem, phys.Frame(size/phys.FrameSize-64), 64)
	if err != nil {
		t.Fatalf("pagetable.New: %v", err)
	}
	clock := timing.MustNewClock(1_000_000_000)
	ctrs := &perf.Counters{}
	lat := timing.DefaultLatencies()
	dev := &fakeMem{clock: clock, lat: 100, source: mem.LevelDRAM}
	w, err := New(Config{}, tables, dev, pmem, clock, ctrs, lat)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return &fixture{w: w, tables: tables, pmem: pmem, dev: dev, clock: clock, ctrs: ctrs, lat: lat}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config (defaults) rejected: %v", err)
	}
	if err := Defaults().Validate(); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	bad := []Config{
		{PML4E: PSCacheConfig{0, 1}, PDPTE: PSCacheConfig{4, 4}, PDE: PSCacheConfig{32, 4}},
		{PML4E: PSCacheConfig{4, 4}, PDPTE: PSCacheConfig{4, 3}, PDE: PSCacheConfig{32, 4}},
		{PML4E: PSCacheConfig{4, 4}, PDPTE: PSCacheConfig{4, 4}, PDE: PSCacheConfig{24, 4}}, // 6 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFullWalkFetchesEveryLevel(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.Frame(7))

	start := f.clock.Now()
	frame, res := f.w.Translate(mem.Access{Addr: va, Kind: mem.KindLoad})
	if frame != 7 {
		t.Fatalf("frame = %d, want 7", frame)
	}
	if res.Hit || res.Source != mem.LevelPageWalk {
		t.Fatalf("result = %+v, want page-walk miss", res)
	}

	// One KindPTEFetch per level, aimed exactly at the entries the
	// layout says the walk consults, in root-to-leaf order.
	if len(f.dev.accesses) != 4 {
		t.Fatalf("walk issued %d accesses, want 4", len(f.dev.accesses))
	}
	for i, level := range []int{4, 3, 2, 1} {
		want, ok := f.tables.EntryAddr(va, level)
		if !ok {
			t.Fatalf("EntryAddr(level %d) missing", level)
		}
		got := f.dev.accesses[i]
		if got.Addr != want || got.Kind != mem.KindPTEFetch {
			t.Fatalf("access %d = %+v, want pte-fetch at %#x", i, got, uint64(want))
		}
	}

	// Latency: per level the memory fetch plus the fixed step; clock
	// agreement is the Translator contract.
	want := 4 * (f.dev.lat + f.lat.PageWalkStep)
	if res.Latency != want {
		t.Fatalf("latency = %d, want %d", res.Latency, want)
	}
	if got := f.clock.Now() - start; got != want {
		t.Fatalf("clock delta = %d, want %d", got, want)
	}
	for _, c := range []struct {
		ev   perf.Event
		want uint64
	}{
		{perf.WalkStepPML4E, 1}, {perf.WalkStepPDPTE, 1}, {perf.WalkStepPDE, 1},
		{perf.WalkStepPTE, 1}, {perf.PageWalkCompleted, 1},
		{perf.L1PTEMemoryFetch, 1}, {perf.PSCacheHit, 0},
	} {
		if got := f.ctrs.Read(c.ev); got != c.want {
			t.Errorf("%v = %d, want %d", c.ev, got, c.want)
		}
	}
}

func TestPSCacheSkipsUpperLevels(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.Frame(7))
	f.w.Translate(mem.Access{Addr: va})
	if pde, pdpte, pml4e := f.w.PSContains(va); !pde || !pdpte || !pml4e {
		t.Fatalf("PS caches = %v %v %v after full walk, want all true", pde, pdpte, pml4e)
	}

	f.dev.accesses = nil
	start := f.clock.Now()
	frame, res := f.w.Translate(mem.Access{Addr: va})
	if frame != 7 {
		t.Fatalf("frame = %d, want 7", frame)
	}
	// PDE cache hit: only the PT-level entry is fetched.
	if len(f.dev.accesses) != 1 {
		t.Fatalf("partial walk issued %d accesses, want 1", len(f.dev.accesses))
	}
	if pte, _ := f.tables.EntryAddr(va, 1); f.dev.accesses[0].Addr != pte {
		t.Fatalf("partial walk fetched %#x, want the PTE at %#x", uint64(f.dev.accesses[0].Addr), uint64(pte))
	}
	want := f.lat.PSCacheHit + f.dev.lat + f.lat.PageWalkStep
	if res.Latency != want || f.clock.Now()-start != want {
		t.Fatalf("latency = %d (clock %d), want %d", res.Latency, f.clock.Now()-start, want)
	}
	if got := f.ctrs.Read(perf.PSCacheHit); got != 1 {
		t.Fatalf("PSCacheHit = %d, want 1", got)
	}
	if got := f.ctrs.Read(perf.WalkStepPML4E); got != 1 {
		t.Fatalf("WalkStepPML4E = %d, want 1 (second walk must skip it)", got)
	}

	// A different VA in the same 2 MiB region shares the PDE entry.
	va2 := va + phys.FrameSize
	f.tables.Map(va2, phys.Frame(9))
	f.dev.accesses = nil
	if frame, _ := f.w.Translate(mem.Access{Addr: va2}); frame != 9 || len(f.dev.accesses) != 1 {
		t.Fatalf("same-region walk: frame %d, %d accesses", frame, len(f.dev.accesses))
	}
}

func TestInvalidateDropsPSEntries(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.Frame(7))
	f.w.Translate(mem.Access{Addr: va})

	if !f.w.Invalidate(va) {
		t.Fatal("Invalidate found nothing after a walk")
	}
	if pde, pdpte, pml4e := f.w.PSContains(va); pde || pdpte || pml4e {
		t.Fatalf("PS caches = %v %v %v after Invalidate, want all false", pde, pdpte, pml4e)
	}
	if f.w.Invalidate(va) {
		t.Fatal("second Invalidate reported entries")
	}
	f.dev.accesses = nil
	f.w.Translate(mem.Access{Addr: va})
	if len(f.dev.accesses) != 4 {
		t.Fatalf("post-invalidate walk issued %d accesses, want full 4", len(f.dev.accesses))
	}
}

func TestL1PTEMemoryFetchCountsOnlyDRAMServedPTEs(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.Frame(7))
	f.dev.source = mem.LevelL1 // every fetch served by the cache
	f.w.Translate(mem.Access{Addr: va})
	if got := f.ctrs.Read(perf.L1PTEMemoryFetch); got != 0 {
		t.Fatalf("L1PTEMemoryFetch = %d for cache-served walk, want 0", got)
	}
	if got := f.ctrs.Read(perf.WalkStepPTE); got != 1 {
		t.Fatalf("WalkStepPTE = %d, want 1", got)
	}
}

func TestFaultHandlerMapsOnDemand(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	faults := 0
	f.w.Fault = func(fva phys.Addr, level int) {
		faults++
		if fva != va {
			t.Fatalf("fault for %#x, want %#x", uint64(fva), uint64(va))
		}
		f.tables.Map(fva, phys.FrameOf(fva))
	}
	frame, _ := f.w.Translate(mem.Access{Addr: va})
	if frame != phys.FrameOf(va) {
		t.Fatalf("demand-mapped frame = %d, want identity %d", frame, phys.FrameOf(va))
	}
	// The handler maps the whole path on the first (PML4-level) fault.
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
	// Walk again: everything mapped, no further faults.
	f.w.Invalidate(va)
	f.w.Translate(mem.Access{Addr: va})
	if faults != 1 {
		t.Fatalf("faults after remap walk = %d, want still 1", faults)
	}
}

func TestNonPresentWithoutHandlerPanics(t *testing.T) {
	f := newFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped walk without handler did not panic")
		}
	}()
	f.w.Translate(mem.Access{Addr: 0x42000})
}

func TestCorruptedEntryRedirectsWalk(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.FrameOf(va))
	f.w.Translate(mem.Access{Addr: va})

	// Flip the lowest frame bit of the leaf PTE (byte 1, bit 4 = entry
	// bit 12) — the disturbance a hammered PT row suffers.
	pte, _ := f.tables.EntryAddr(va, 1)
	f.pmem.FlipBit(pte+1, 4)

	// PS caches cover only upper levels, so even without invalidation
	// the next walk re-reads the corrupted PTE.
	frame, _ := f.w.Translate(mem.Access{Addr: va})
	if want := phys.FrameOf(va) ^ 1; frame != want {
		t.Fatalf("corrupted walk = %d, want %d", frame, want)
	}
}
