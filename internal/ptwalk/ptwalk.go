// Package ptwalk is the hardware page walker: the mem.Translator the
// TLB chain falls back to on a full miss. It replaces the machine's
// old fixed-cost stub with the mechanism PThammer actually exploits —
// on every walk the MMU issues *implicit*, kernel-privileged memory
// accesses to fetch page-table entries, and those fetches traverse the
// same L1 → L2 → LLC → DRAM path as explicit loads. A user-space load
// whose translation misses the TLB therefore opens DRAM rows and
// increments per-row ACT counters in the banks holding the page
// tables, without the user program ever addressing them.
//
// # Page-table layout and walk
//
// The walker traverses the radix tables owned by internal/pagetable:
// four levels (PML4 → PDPT → PD → PT), one 4 KiB frame per table, 512
// little-endian 8-byte entries per frame. For a virtual address va the
// walk starts at the root (CR3) frame and, per level, issues a
// mem.KindPTEFetch access for the 8-byte entry at
//
//	table.Addr() + Index(va, level)*8
//
// through the cache hierarchy (charging whatever that hop costs — an
// L1 hit if the entry's line is cached, a DRAM row activation if not),
// charges the fixed per-level PageWalkStep on top, and then reads the
// actual entry bytes from phys.Memory. The frame bits of the fetched
// entry select the next level's table, so a bit flipped in a table
// frame (phys.FlipBit — the rowhammer disturbance) redirects every
// later walk through it: translation corruption falls out of the
// layout instead of being simulated.
//
// # Paging-structure caches
//
// Real MMUs short-circuit walks with small caches over the upper
// levels (Intel's PML4E/PDPTE/PDE caches). The walker models all
// three: before walking it probes the PDE cache (tag va>>21, value =
// PT frame), then the PDPTE cache (va>>30 → PD frame), then the PML4E
// cache (va>>39 → PDPT frame). The deepest hit skips every level above
// it, charges timing.PSCacheHit once, and counts perf.PSCacheHit; each
// level actually walked counts its perf.WalkStep* event and installs
// its entry into the matching cache. A PT-level fetch that is served
// from DRAM counts perf.L1PTEMemoryFetch — the paper's implicit
// hammer accesses. Invalidate drops one address's entries from all
// three caches (the paging-structure half of invlpg).
//
// # Demand mapping
//
// A walk that finds a non-present entry raises a fault to the Fault
// handler (the machine installs an identity-mapping handler, playing
// the OS populating tables on first touch), then re-reads the entry.
// The handler's table writes are direct phys stores and charge no
// simulated time: only the hardware walk itself is timed.
package ptwalk

import (
	"fmt"

	"pthammer/internal/mem"
	"pthammer/internal/pagetable"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// PSCacheConfig sizes one paging-structure cache in entries.
type PSCacheConfig struct {
	Entries int
	Ways    int
}

// Config sizes the three paging-structure caches. The zero value
// selects the Defaults.
type Config struct {
	PML4E PSCacheConfig
	PDPTE PSCacheConfig
	PDE   PSCacheConfig
}

// Defaults returns Sandy Bridge-class paging-structure cache shapes:
// tiny fully-associative upper-level caches over a larger PDE cache.
func Defaults() Config {
	return Config{
		PML4E: PSCacheConfig{Entries: 4, Ways: 4},
		PDPTE: PSCacheConfig{Entries: 4, Ways: 4},
		PDE:   PSCacheConfig{Entries: 32, Ways: 4},
	}
}

// withDefaults fills a zero config with Defaults, so machine presets
// need not spell the PS cache shapes out.
func (c Config) withDefaults() Config {
	if c == (Config{}) {
		return Defaults()
	}
	return c
}

// Validate reports an error for degenerate or non-indexable shapes.
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, pc := range []struct {
		name string
		cfg  PSCacheConfig
	}{{"PML4E", c.PML4E}, {"PDPTE", c.PDPTE}, {"PDE", c.PDE}} {
		switch {
		case pc.cfg.Entries <= 0 || pc.cfg.Ways <= 0:
			return fmt.Errorf("ptwalk: %s cache entries/ways must be positive (got %d/%d)",
				pc.name, pc.cfg.Entries, pc.cfg.Ways)
		case pc.cfg.Entries%pc.cfg.Ways != 0:
			return fmt.Errorf("ptwalk: %s cache entries %d not divisible by ways %d",
				pc.name, pc.cfg.Entries, pc.cfg.Ways)
		}
		if sets := pc.cfg.Entries / pc.cfg.Ways; sets&(sets-1) != 0 {
			return fmt.Errorf("ptwalk: %s cache set count %d must be a power of two", pc.name, sets)
		}
	}
	return nil
}

// walkStepEvent[level-1] is the perf event counting entry fetches at
// that level.
var walkStepEvent = [pagetable.Levels]perf.Event{
	perf.WalkStepPTE, perf.WalkStepPDE, perf.WalkStepPDPTE, perf.WalkStepPML4E,
}

// Walker implements mem.Translator over a pagetable.Tables instance.
type Walker struct {
	tables   *pagetable.Tables
	memory   mem.Device // the L1→L2→LLC→DRAM chain PTE fetches traverse
	pmem     *phys.Memory
	clock    *timing.Clock
	counters *perf.Counters

	// psc[level-2] caches entries fetched at that level: index 0 is the
	// PDE cache (tag va>>21), 1 the PDPTE cache (va>>30), 2 the PML4E
	// cache (va>>39). The cached value is the next-level table frame
	// the entry pointed at.
	psc [pagetable.Levels - 1]*mem.SetAssoc

	stepCost timing.Cycles
	pscHit   timing.Cycles

	// Fault is invoked when a walk hits a non-present entry at the
	// given level; it must make the entry present (typically by mapping
	// va). A nil handler makes a non-present entry panic — standalone
	// walkers in tests pre-map their address space.
	Fault func(va phys.Addr, level int)
}

// New builds the walker over the given tables, fetching entries
// through memory (the cache hierarchy).
func New(cfg Config, tables *pagetable.Tables, memory mem.Device, pmem *phys.Memory, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*Walker, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if tables == nil || memory == nil || pmem == nil || clock == nil || counters == nil {
		return nil, fmt.Errorf("ptwalk: tables, memory, pmem, clock and counters must be non-nil")
	}
	cfg = cfg.withDefaults()
	w := &Walker{
		tables:   tables,
		memory:   memory,
		pmem:     pmem,
		clock:    clock,
		counters: counters,
		stepCost: lat.PageWalkStep,
		pscHit:   lat.PSCacheHit,
	}
	for i, pc := range []PSCacheConfig{cfg.PDE, cfg.PDPTE, cfg.PML4E} {
		w.psc[i] = mem.NewSetAssoc(pc.Entries/pc.Ways, pc.Ways)
	}
	return w, nil
}

// pscTag returns the tag the paging-structure cache covering `level`
// uses: the virtual address truncated to that level's span. psc[i]
// covers level i+2.
//
//pthammer:noalloc
func pscTag(va phys.Addr, level int) uint64 {
	return uint64(va) >> (phys.FrameShift + pagetable.IndexBits*(level-1))
}

// Reset empties the paging-structure caches, as a recycled machine's
// fresh address space requires (the Reset/Recycle contract): a stale
// PDE/PDPTE/PML4E entry surviving into the next cohort would short-cut
// walks into the previous tenant's recycled tables. The Tables pointer
// itself stays — tables are recycled in place by pagetable.Reset.
//
//pthammer:noalloc
func (w *Walker) Reset() {
	for _, c := range w.psc {
		c.Reset()
	}
}

// Translate performs the hardware walk for the access and returns the
// frame the leaf PTE maps va to. The reported latency is everything
// the walk charged: an optional PS-cache hit, and per walked level the
// PTE-fetch memory access plus the fixed PageWalkStep.
//
//pthammer:noalloc
func (w *Walker) Translate(a mem.Access) (phys.Frame, mem.Result) {
	va := a.Addr
	table := w.tables.Root()
	start := pagetable.Levels
	var total timing.Cycles

	// Deepest paging-structure cache hit wins: start the walk below it.
	for level := 2; level <= pagetable.Levels; level++ {
		if v, hit := w.psc[level-2].LookupV(pscTag(va, level)); hit {
			table = phys.Frame(v)
			start = level - 1
			w.clock.Advance(w.pscHit)
			w.counters.Inc(perf.PSCacheHit)
			total += w.pscHit
			break
		}
	}

	for level := start; level >= 1; level-- {
		entryAddr := pagetable.EntryAddrIn(table, va, level)
		res := w.memory.Lookup(mem.Access{Addr: entryAddr, Kind: mem.KindPTEFetch}) //pthammer:alloc-ok interface dispatch to the wired cache hierarchy, itself noalloc
		w.clock.Advance(w.stepCost)
		w.counters.Inc(walkStepEvent[level-1])
		if level == 1 && res.Source == mem.LevelDRAM {
			w.counters.Inc(perf.L1PTEMemoryFetch)
		}
		total += res.Latency + w.stepCost

		e := pagetable.Entry(w.pmem.Read64(entryAddr))
		if !e.Present() {
			if w.Fault == nil {
				panic(fmt.Sprintf("ptwalk: non-present level-%d entry for %#x and no fault handler", level, uint64(va)))
			}
			w.Fault(va, level) //pthammer:alloc-ok demand-mapping fault handler, cold path
			e = pagetable.Entry(w.pmem.Read64(entryAddr))
			if !e.Present() {
				panic(fmt.Sprintf("ptwalk: fault handler left level-%d entry for %#x non-present", level, uint64(va)))
			}
		}
		next := e.Frame()
		if level >= 2 {
			w.psc[level-2].InsertV(pscTag(va, level), uint64(next))
		}
		table = next
	}

	w.counters.Inc(perf.PageWalkCompleted)
	return table, mem.Result{Latency: total, Hit: false, Source: mem.LevelPageWalk}
}

// Invalidate drops va's entries from all three paging-structure
// caches — the paging-structure half of invlpg (the TLB half lives in
// internal/tlb). It reports whether any cache held an entry.
//
//pthammer:noalloc
func (w *Walker) Invalidate(va phys.Addr) bool {
	any := false
	for level := 2; level <= pagetable.Levels; level++ {
		if w.psc[level-2].Invalidate(pscTag(va, level)) {
			any = true
		}
	}
	return any
}

// PSContains reports which paging-structure caches currently hold an
// entry covering va, for tests: PDE, PDPTE, PML4E order.
func (w *Walker) PSContains(va phys.Addr) (pde, pdpte, pml4e bool) {
	return w.psc[0].Contains(pscTag(va, 2)),
		w.psc[1].Contains(pscTag(va, 3)),
		w.psc[2].Contains(pscTag(va, 4))
}

// Tables returns the page tables the walker traverses.
func (w *Walker) Tables() *pagetable.Tables { return w.tables }
