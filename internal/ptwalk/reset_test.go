package ptwalk

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/phys"
)

// TestResetColdPagingStructureCaches pins the walker's half of the
// Reset/Recycle contract: Reset empties the paging-structure caches,
// so a translation that had warmed them re-fetches every level —
// byte-for-byte the fresh walker's access trace. A PSC entry leaking
// across a recycle would let the next cohort's first walk skip levels
// and desynchronise its timing from a fresh machine's.
func TestResetColdPagingStructureCaches(t *testing.T) {
	f := newFixture(t)
	va := phys.Addr(0x42000)
	f.tables.Map(va, phys.Frame(7))

	f.w.Translate(mem.Access{Addr: va, Kind: mem.KindLoad})
	coldAccesses := len(f.dev.accesses)

	// Warm walk: the upper levels are served from the PSCs, so fewer
	// memory fetches are issued. (Guards the reset assertion below
	// against vacuity.)
	f.w.Translate(mem.Access{Addr: va, Kind: mem.KindLoad})
	warmAccesses := len(f.dev.accesses) - coldAccesses
	if warmAccesses >= coldAccesses {
		t.Fatalf("warm walk fetched %d levels, cold fetched %d; PSCs not caching", warmAccesses, coldAccesses)
	}

	f.w.Reset()
	f.dev.accesses = f.dev.accesses[:0]
	frame, res := f.w.Translate(mem.Access{Addr: va, Kind: mem.KindLoad})
	if frame != 7 || res.Hit {
		t.Fatalf("post-Reset translate = (%d, %+v), want full-walk miss to frame 7", frame, res)
	}
	if len(f.dev.accesses) != coldAccesses {
		t.Errorf("post-Reset walk fetched %d levels, want the fresh walker's %d", len(f.dev.accesses), coldAccesses)
	}
}
