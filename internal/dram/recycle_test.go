package dram

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/timing"
)

// TestRecycleResetClearsArbitration pins the difference between a
// window discard and a full recycle: ResetWindow deliberately keeps
// per-bank lastCore (the scheduler state survives a refresh), but
// Reset must return it to the fresh-device -1, so the first access of
// the next cohort pays no stale cross-core bank-arbitration charge.
func TestRecycleResetClearsArbitration(t *testing.T) {
	lat := timing.DefaultLatencies()
	build := func() (*DRAM, *Port, *Port) {
		d, _, _ := newTestDRAM(t, testConfig())
		c1 := timing.MustNewClock(1_000_000_000)
		p1, err := d.NewPort(1, c1, &perf.Counters{})
		if err != nil {
			t.Fatal(err)
		}
		return d, d.def, p1
	}
	addr := testConfig().AddrOf(Location{Row: 2})

	// Reference: on a fresh device the very first access is a plain
	// closed-row activation, no arbitration.
	d, p0, p1 := build()
	if got := p0.Lookup(mem.Access{Addr: addr}).Latency; got != lat.DRAMRowClosed {
		t.Fatalf("fresh first access latency = %d, want %d", got, lat.DRAMRowClosed)
	}
	// Hand the bank to core 1 so lastCore is non-zero state to leak.
	if got := p1.Lookup(mem.Access{Addr: addr}).Latency; got != lat.DRAMRowHit+lat.DRAMBankArbitration {
		t.Fatalf("cross-core hit latency = %d, want %d", got, lat.DRAMRowHit+lat.DRAMBankArbitration)
	}

	// After a window discard the arbitration state survives: core 0
	// re-entering the bank still pays for displacing core 1.
	p0.ResetWindow()
	if got := p0.Lookup(mem.Access{Addr: addr}).Latency; got != lat.DRAMRowClosed+lat.DRAMBankArbitration {
		t.Fatalf("post-ResetWindow cross-core latency = %d, want %d", got, lat.DRAMRowClosed+lat.DRAMBankArbitration)
	}

	// After a recycle it must not: the first access matches the fresh
	// device's, whichever core issues it.
	p1.Lookup(mem.Access{Addr: addr})
	p0.Reset()
	if got := p0.Lookup(mem.Access{Addr: addr}).Latency; got != lat.DRAMRowClosed {
		t.Errorf("post-Reset first access latency = %d, want fresh-device %d", got, lat.DRAMRowClosed)
	}
	_ = d
}

// TestDeviceResetDelegatesToDefaultPort pins the device-level recycle
// entry point: DRAM.Reset anchors the rewind at the default port's
// clock, so single-core consumers recycling through the device handle
// get the same fresh-device state as a port-level Reset.
func TestDeviceResetDelegatesToDefaultPort(t *testing.T) {
	lat := timing.DefaultLatencies()
	d, _, _ := newTestDRAM(t, testConfig())
	addr := testConfig().AddrOf(Location{Row: 2})

	for i := 0; i < 3; i++ {
		d.Lookup(mem.Access{Addr: addr})
	}
	d.Reset()
	if got := d.Activations(Location{Row: 2}); got != 0 {
		t.Errorf("activations after device Reset = %d, want 0", got)
	}
	if got := d.Lookup(mem.Access{Addr: addr}).Latency; got != lat.DRAMRowClosed {
		t.Errorf("post device-Reset first access latency = %d, want fresh-device %d", got, lat.DRAMRowClosed)
	}
}

// TestRecycleResetIsEpochLazy pins the O(banks + touched) cost model's
// correctness half: Reset invalidates stale per-row ACT counts by
// epoch bump, not by scrubbing, and those stale counts must read as
// zero and restart from one on the next activation.
func TestRecycleResetIsEpochLazy(t *testing.T) {
	d, _, _ := newTestDRAM(t, testConfig())
	p := d.def
	cfg := testConfig()
	a := cfg.AddrOf(Location{Row: 4})
	b := cfg.AddrOf(Location{Row: 6})
	for i := 0; i < 5; i++ {
		p.Lookup(mem.Access{Addr: a})
		p.Lookup(mem.Access{Addr: b})
	}
	if got := p.Activations(Location{Row: 4}); got != 5 {
		t.Fatalf("pre-recycle activations = %d, want 5", got)
	}

	p.Reset()
	if got := p.Activations(Location{Row: 4}); got != 0 {
		t.Errorf("stale activations visible after recycle: %d", got)
	}
	if st := p.HammerStats(); st.Activations != 0 || len(st.Victims) != 0 {
		t.Errorf("stats leaked across recycle: %+v", st)
	}
	p.Lookup(mem.Access{Addr: a})
	if got := p.Activations(Location{Row: 4}); got != 1 {
		t.Errorf("post-recycle activation count = %d, want 1", got)
	}
}

// TestRecycleResetNoAlloc pins the alloc half of the satellite: a
// recycle on a large-geometry module with a realistic touched set must
// not allocate — cohort turnover calls this once per slice.
func TestRecycleResetNoAlloc(t *testing.T) {
	cfg := Config{
		Channels: 1, RanksPerChannel: 1, BanksPerRank: 8,
		Rows: 1 << 16, RowBytes: 8192,
		HammerThreshold: 100,
	}
	clock := timing.MustNewClock(1_000_000_000)
	d, err := New(cfg, clock, &perf.Counters{}, timing.DefaultLatencies())
	if err != nil {
		t.Fatal(err)
	}
	p := d.def
	touch := func() {
		for r := uint64(0); r < 64; r++ {
			p.Lookup(mem.Access{Addr: cfg.AddrOf(Location{Row: r * 11})})
		}
	}
	touch() // warm the touched-slice capacity once
	if avg := testing.AllocsPerRun(100, func() {
		touch()
		p.Reset()
	}); avg != 0 {
		t.Errorf("recycle reset allocates: %v allocs/op", avg)
	}
}

// BenchmarkRecycleReset is the satellite-6 regression pin behind the
// dram-recycle-reset bench scenario: on a 2^16-row module with ~64
// touched rows, a recycle must stay O(banks + touched). An
// implementation that scrubs the per-row acts/epoch arrays would be
// three orders of magnitude slower here and trip the bench gate.
func BenchmarkRecycleReset(b *testing.B) {
	cfg := Config{
		Channels: 1, RanksPerChannel: 1, BanksPerRank: 8,
		Rows: 1 << 16, RowBytes: 8192,
		HammerThreshold: 100,
	}
	clock := timing.MustNewClock(1_000_000_000)
	d, err := New(cfg, clock, &perf.Counters{}, timing.DefaultLatencies())
	if err != nil {
		b.Fatal(err)
	}
	p := d.def
	addrs := make([]mem.Access, 64)
	for r := range addrs {
		addrs[r] = mem.Access{Addr: cfg.AddrOf(Location{Row: uint64(r) * 11})}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range addrs {
			p.Lookup(a)
		}
		p.Reset()
	}
}
