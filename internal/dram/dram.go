// Package dram models the DRAM subsystem as channels × ranks × banks,
// each bank with one open-row buffer. Every access resolves to a
// (channel, rank, bank, row, column) location; the row-buffer outcome
// (hit, closed, conflict) decides the latency charged and whether a row
// activation (ACT) fires. Activations are counted per bank row within
// the current refresh window — the quantity the rowhammer threshold is
// defined over (paper §2, Blacksmith-style activation budgeting).
package dram

import (
	"fmt"
	"sort"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Config fixes the DRAM geometry, timing window, and hammer threshold
// for one simulated machine.
type Config struct {
	// Geometry. Capacity is Channels*RanksPerChannel*BanksPerRank*
	// Rows*RowBytes and must cover the machine's physical memory.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// Rows is the number of rows per bank.
	Rows uint64
	// RowBytes is the row-buffer size (column span) in bytes.
	RowBytes uint64

	// RefreshWindow is the refresh interval (tREFW, typically 64 ms) in
	// cycles. Activation counts reset and all banks precharge when the
	// clock crosses a window boundary. Zero disables windowing (counts
	// accumulate forever) — useful in tests.
	RefreshWindow timing.Cycles

	// HammerThreshold is the number of aggressor-row activations within
	// one refresh window past which an adjacent victim row is considered
	// hammer-eligible (can be induced to flip bits).
	HammerThreshold uint64
}

// Validate reports an error if the geometry is degenerate.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: channels/ranks/banks must be positive (got %d/%d/%d)",
			c.Channels, c.RanksPerChannel, c.BanksPerRank)
	case c.Rows == 0:
		return fmt.Errorf("dram: rows per bank must be positive")
	case c.RowBytes == 0 || c.RowBytes%phys.FrameSize != 0:
		return fmt.Errorf("dram: row bytes %d must be a positive multiple of the %d-byte frame", c.RowBytes, phys.FrameSize)
	case c.HammerThreshold == 0:
		return fmt.Errorf("dram: hammer threshold must be positive")
	}
	return nil
}

// TotalBanks returns the number of banks across all channels and ranks.
func (c Config) TotalBanks() int {
	return c.Channels * c.RanksPerChannel * c.BanksPerRank
}

// Capacity returns the total DRAM capacity in bytes.
func (c Config) Capacity() uint64 {
	return uint64(c.TotalBanks()) * c.Rows * c.RowBytes
}

// Location is a fully decoded DRAM address.
type Location struct {
	Channel int
	Rank    int
	Bank    int // bank index within the rank
	Row     uint64
	Col     uint64 // byte offset within the row
}

// globalBank flattens (channel, rank, bank) into one index.
func (c Config) globalBank(l Location) int {
	return (l.Bank*c.RanksPerChannel+l.Rank)*c.Channels + l.Channel
}

// locOfGlobalBank is the inverse of globalBank (row/col left zero). It
// is the single source of truth for the bank decode; Map builds on it.
func (c Config) locOfGlobalBank(gb int) Location {
	return Location{
		Channel: gb % c.Channels,
		Rank:    gb / c.Channels % c.RanksPerChannel,
		Bank:    gb / c.Channels / c.RanksPerChannel,
	}
}

// Map decodes a physical address into its DRAM location. Consecutive
// row-sized blocks interleave across channels, then ranks, then banks —
// the simple open-mapping used by the paper's test machines once the
// (reverse-engineered) bank functions are applied. Panics if the
// address is beyond the configured capacity: callers are simulated
// hardware, and an out-of-range access is a simulator bug.
func (c Config) Map(a phys.Addr) Location {
	block := uint64(a) / c.RowBytes
	nb := uint64(c.TotalBanks())
	gb := block % nb
	row := block / nb
	if row >= c.Rows {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", uint64(a), c.Capacity()))
	}
	loc := c.locOfGlobalBank(int(gb))
	loc.Row = row
	loc.Col = uint64(a) % c.RowBytes
	return loc
}

// AddrOf is the inverse of Map: the physical address of a location.
// Tests use it to construct same-bank different-row aggressor pairs.
func (c Config) AddrOf(l Location) phys.Addr {
	block := l.Row*uint64(c.TotalBanks()) + uint64(c.globalBank(l))
	return phys.Addr(block*c.RowBytes + l.Col)
}

// bank is the per-bank state: the open row and this refresh window's
// activation counts.
type bank struct {
	// openRow is the row latched in the row buffer, or -1 when the bank
	// is precharged.
	openRow int64
	// acts maps row -> activations within the current refresh window.
	acts map[uint64]uint64
}

// DRAM is the terminal mem.Device of the hierarchy.
type DRAM struct {
	cfg      Config
	clock    *timing.Clock
	counters *perf.Counters

	rowHit      timing.Cycles
	rowClosed   timing.Cycles
	rowConflict timing.Cycles

	banks       []bank
	windowStart timing.Cycles
}

// New builds the DRAM device. Latencies come from the machine's
// LatencyTable; the clock and counters are the machine-wide shared
// instances every device charges into.
func New(cfg Config, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if clock == nil || counters == nil {
		return nil, fmt.Errorf("dram: clock and counters must be non-nil")
	}
	d := &DRAM{
		cfg:         cfg,
		clock:       clock,
		counters:    counters,
		rowHit:      lat.DRAMRowHit,
		rowClosed:   lat.DRAMRowClosed,
		rowConflict: lat.DRAMRowConflict,
		banks:       make([]bank, cfg.TotalBanks()),
		windowStart: clock.Now(),
	}
	for i := range d.banks {
		d.banks[i] = bank{openRow: -1, acts: make(map[uint64]uint64)}
	}
	return d, nil
}

// Config returns the geometry the device was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Lookup services one memory access at a bank. It charges the
// row-buffer-outcome latency to the shared clock, counts activations
// and conflicts, and reports Hit for row-buffer hits.
func (d *DRAM) Lookup(a mem.Access) mem.Result {
	d.rotateWindow()
	loc := d.cfg.Map(a.Addr)
	b := &d.banks[d.cfg.globalBank(loc)]

	var lat timing.Cycles
	rowHit := false
	switch {
	case b.openRow == int64(loc.Row):
		lat = d.rowHit
		rowHit = true
	case b.openRow < 0:
		lat = d.rowClosed
		d.activate(b, loc.Row)
	default:
		lat = d.rowConflict
		d.counters.Inc(perf.DRAMRowConflicts)
		d.activate(b, loc.Row)
	}
	d.clock.Advance(lat)
	return mem.Result{Latency: lat, Hit: rowHit, Source: mem.LevelDRAM}
}

// activate latches row into the bank's row buffer and counts the ACT.
func (d *DRAM) activate(b *bank, row uint64) {
	b.openRow = int64(row)
	b.acts[row]++
	d.counters.Inc(perf.DRAMActivate)
}

// rotateWindow resets activation bookkeeping when the clock has crossed
// a refresh-window boundary. Refresh also precharges every bank, so
// open rows close.
func (d *DRAM) rotateWindow() {
	w := d.cfg.RefreshWindow
	if w == 0 {
		return
	}
	elapsed := d.clock.Now() - d.windowStart
	if elapsed < w {
		return
	}
	d.windowStart += (elapsed / w) * w
	for i := range d.banks {
		d.banks[i].openRow = -1
		d.banks[i].acts = make(map[uint64]uint64)
	}
}

// Activations returns how many times the given row of the given bank
// location has been activated in the current refresh window.
func (d *DRAM) Activations(l Location) uint64 {
	d.rotateWindow()
	return d.banks[d.cfg.globalBank(l)].acts[l.Row]
}

// Victim is a row whose neighbours have been activated enough this
// refresh window to make disturbance errors plausible.
type Victim struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	// Pressure is the summed activations of the two adjacent rows
	// within the current refresh window.
	Pressure uint64
}

// Stats summarises hammer-relevant DRAM activity in the current
// refresh window.
type Stats struct {
	// WindowStart is the cycle the current refresh window began.
	WindowStart timing.Cycles
	// Activations is the total ACT count across all banks this window.
	Activations uint64
	// Victims lists rows whose adjacent-row activation pressure meets
	// the hammer threshold, most pressured first.
	Victims []Victim
}

// HammerStats computes which rows are hammer-eligible right now. A row
// v is eligible when activations(v-1) + activations(v+1) within the
// current refresh window reach the configured threshold — double-sided
// hammering contributes from both sides, single-sided from one.
func (d *DRAM) HammerStats() Stats {
	d.rotateWindow()
	s := Stats{WindowStart: d.windowStart}
	for gb := range d.banks {
		b := &d.banks[gb]
		pressure := make(map[uint64]uint64)
		for row, n := range b.acts {
			s.Activations += n
			if row > 0 {
				pressure[row-1] += n
			}
			if row+1 < d.cfg.Rows {
				pressure[row+1] += n
			}
		}
		for row, p := range pressure {
			if p < d.cfg.HammerThreshold {
				continue
			}
			loc := d.cfg.locOfGlobalBank(gb)
			s.Victims = append(s.Victims, Victim{
				Channel: loc.Channel, Rank: loc.Rank, Bank: loc.Bank,
				Row: row, Pressure: p,
			})
		}
	}
	// Total order (pressure desc, then location) so victim lists are
	// deterministic despite map-iteration append order.
	sort.Slice(s.Victims, func(i, j int) bool {
		a, b := s.Victims[i], s.Victims[j]
		switch {
		case a.Pressure != b.Pressure:
			return a.Pressure > b.Pressure
		case a.Channel != b.Channel:
			return a.Channel < b.Channel
		case a.Rank != b.Rank:
			return a.Rank < b.Rank
		case a.Bank != b.Bank:
			return a.Bank < b.Bank
		default:
			return a.Row < b.Row
		}
	})
	return s
}
