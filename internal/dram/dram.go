// Package dram models the DRAM subsystem as channels × ranks × banks,
// each bank with one open-row buffer. Every access resolves to a
// (channel, rank, bank, row, column) location; the row-buffer outcome
// (hit, closed, conflict) decides the latency charged and whether a row
// activation (ACT) fires. Activations are counted per bank row within
// the current refresh window — the quantity the rowhammer threshold is
// defined over (paper §2, Blacksmith-style activation budgeting).
//
// Lookup is the terminal hop of every simulated load, so it is written
// to cost a handful of array operations: the address decode is pure
// shift/mask on power-of-two geometries, activation counts live in
// dense per-bank arrays with epoch-tagged lazy reset (no maps, no
// per-window reallocation), and window rotation touches only bank
// headers.
package dram

import (
	"fmt"
	"math/bits"
	"sort"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Config fixes the DRAM geometry, timing window, and hammer threshold
// for one simulated machine.
type Config struct {
	// Geometry. Capacity is Channels*RanksPerChannel*BanksPerRank*
	// Rows*RowBytes and must cover the machine's physical memory.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// Rows is the number of rows per bank.
	Rows uint64
	// RowBytes is the row-buffer size (column span) in bytes.
	RowBytes uint64

	// RefreshWindow is the refresh interval (tREFW, typically 64 ms) in
	// cycles. Activation counts reset and all banks precharge when the
	// clock crosses a window boundary. Zero disables windowing (counts
	// accumulate forever) — useful in tests.
	RefreshWindow timing.Cycles

	// HammerThreshold is the number of aggressor-row activations within
	// one refresh window past which an adjacent victim row is considered
	// hammer-eligible (can be induced to flip bits).
	HammerThreshold uint64
}

// Validate reports an error if the geometry is degenerate.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.RanksPerChannel <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("dram: channels/ranks/banks must be positive (got %d/%d/%d)",
			c.Channels, c.RanksPerChannel, c.BanksPerRank)
	case c.Rows == 0:
		return fmt.Errorf("dram: rows per bank must be positive")
	case c.RowBytes == 0 || c.RowBytes%phys.FrameSize != 0:
		return fmt.Errorf("dram: row bytes %d must be a positive multiple of the %d-byte frame", c.RowBytes, phys.FrameSize)
	case c.HammerThreshold == 0:
		return fmt.Errorf("dram: hammer threshold must be positive")
	}
	return nil
}

// TotalBanks returns the number of banks across all channels and ranks.
func (c Config) TotalBanks() int {
	return c.Channels * c.RanksPerChannel * c.BanksPerRank
}

// Capacity returns the total DRAM capacity in bytes.
func (c Config) Capacity() uint64 {
	return uint64(c.TotalBanks()) * c.Rows * c.RowBytes
}

// Location is a fully decoded DRAM address.
type Location struct {
	Channel int
	Rank    int
	Bank    int // bank index within the rank
	Row     uint64
	Col     uint64 // byte offset within the row
}

// globalBank flattens (channel, rank, bank) into one index.
func (c Config) globalBank(l Location) int {
	return (l.Bank*c.RanksPerChannel+l.Rank)*c.Channels + l.Channel
}

// locOfGlobalBank is the inverse of globalBank (row/col left zero). It
// is the single source of truth for the bank decode; Map builds on it.
func (c Config) locOfGlobalBank(gb int) Location {
	return Location{
		Channel: gb % c.Channels,
		Rank:    gb / c.Channels % c.RanksPerChannel,
		Bank:    gb / c.Channels / c.RanksPerChannel,
	}
}

// decoder holds the precomputed address→(global bank, row, col)
// mapping. When both RowBytes and the total bank count are powers of
// two — true of the SandyBridge preset's 8192-byte rows × 16 banks —
// the decode is three shifts and two masks; otherwise it falls back to
// the generic div/mod path. It also produces the flattened global bank
// index directly, so the per-access path never expands to a Location
// and re-flattens it.
type decoder struct {
	rowBytes uint64
	banks    uint64
	rows     uint64
	capacity uint64

	pow2      bool
	rowShift  uint
	colMask   uint64
	bankShift uint
	bankMask  uint64
}

// newDecoder precomputes the decode constants for the geometry.
func (c Config) newDecoder() decoder {
	d := decoder{
		rowBytes: c.RowBytes,
		banks:    uint64(c.TotalBanks()),
		rows:     c.Rows,
		capacity: c.Capacity(),
	}
	if c.RowBytes&(c.RowBytes-1) == 0 && d.banks&(d.banks-1) == 0 {
		d.pow2 = true
		d.rowShift = uint(bits.TrailingZeros64(c.RowBytes))
		d.colMask = c.RowBytes - 1
		d.bankShift = uint(bits.TrailingZeros64(d.banks))
		d.bankMask = d.banks - 1
	}
	return d
}

// decode splits a physical address into its flattened global bank,
// row, and column. Panics if the address is beyond the configured
// capacity: callers are simulated hardware, and an out-of-range access
// is a simulator bug.
//
//pthammer:noalloc
func (d *decoder) decode(a phys.Addr) (gb int, row, col uint64) {
	if d.pow2 {
		block := uint64(a) >> d.rowShift
		gb = int(block & d.bankMask)
		row = block >> d.bankShift
		col = uint64(a) & d.colMask
	} else {
		block := uint64(a) / d.rowBytes
		gb = int(block % d.banks)
		row = block / d.banks
		col = uint64(a) % d.rowBytes
	}
	if row >= d.rows {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", uint64(a), d.capacity))
	}
	return gb, row, col
}

// Map decodes a physical address into its DRAM location. Consecutive
// row-sized blocks interleave across channels, then ranks, then banks —
// the simple open-mapping used by the paper's test machines once the
// (reverse-engineered) bank functions are applied. Panics if the
// address is beyond the configured capacity. Map builds its decoder on
// the fly; the per-access hot path in Lookup uses the one cached at New.
func (c Config) Map(a phys.Addr) Location {
	dec := c.newDecoder()
	gb, row, col := dec.decode(a)
	loc := c.locOfGlobalBank(gb)
	loc.Row = row
	loc.Col = col
	return loc
}

// AddrOf is the inverse of Map: the physical address of a location.
// Tests use it to construct same-bank different-row aggressor pairs.
func (c Config) AddrOf(l Location) phys.Addr {
	block := l.Row*uint64(c.TotalBanks()) + uint64(c.globalBank(l))
	return phys.Addr(block*c.RowBytes + l.Col)
}

// RowRange enumerates the physical addresses backed by one DRAM row:
// the base address of (channel, rank, bank, row) at column 0 and the
// row-buffer span in bytes. Under the open mapping a row is one
// contiguous RowBytes-sized block, so [start, start+bytes) is exactly
// the cells a disturbance error in that row can corrupt — the range
// the flip engine samples victim bytes from.
func (c Config) RowRange(channel, rank, bank int, row uint64) (start phys.Addr, bytes uint64) {
	loc := Location{Channel: channel, Rank: rank, Bank: bank, Row: row}
	return c.AddrOf(loc), c.RowBytes
}

// bank is the per-bank state: the open row and this refresh window's
// activation counts. Counts live in dense per-row arrays tagged with
// the window epoch they were written in — a stale tag reads as zero —
// so rotating the refresh window never clears or reallocates them.
type bank struct {
	// openRow is the row latched in the row buffer, or -1 when the bank
	// is precharged.
	openRow int64
	// lastCore is the core whose request this bank serviced most
	// recently, -1 before the first. A request from a different core
	// pays the bank-arbitration cost (the scheduler switching request
	// streams), so a single-core machine can never be charged.
	lastCore int
	// acts[row] is the row's ACT count, valid only when epoch[row]
	// matches the DRAM's current window epoch.
	acts []uint64
	// epoch[row] tags which refresh window acts[row] belongs to.
	epoch []uint64
	// touched lists the rows activated in the current window, in
	// first-activation order. Truncated (capacity kept) on rotation.
	touched []uint64
}

// DRAM is the terminal memory device of the hierarchy: the cross-core
// shared state (banks, activation bookkeeping, the refresh window).
// Cores reach it through Port values — DRAM itself is a mem.Device
// only by delegating to its default port (core 0), which keeps the
// single-core wiring unchanged.
type DRAM struct {
	cfg Config
	dec decoder
	// def is the default port (core 0): the device the single-core
	// machine wires into the cache hierarchy, and the clock bookkeeping
	// methods on DRAM itself charge into.
	def *Port

	rowHit      timing.Cycles
	rowClosed   timing.Cycles
	rowConflict timing.Cycles
	bankArb     timing.Cycles

	banks       []bank
	windowStart timing.Cycles
	// windowEpoch is the tag activations written in the current refresh
	// window carry; rotating the window just increments it. Starts at 1
	// so the zero value in bank.epoch always reads as stale.
	windowEpoch uint64
	// hook, when set, receives the ended window's Stats every time the
	// refresh window rotates naturally (the clock crossing a boundary).
	// This is the flip engine's subscription point.
	hook func(Stats)

	// Scratch buffers reused across HammerStats calls so computing
	// victim pressure never allocates proportionally to activity.
	scratchPressure []uint64 // rows long; always all-zero between banks
	scratchRows     []uint64 // candidate victim rows for the bank in hand
	scratchVictims  []Victim // accumulated victims before the caller copy
}

// New builds the DRAM device. Latencies come from the machine's
// LatencyTable; the clock and counters are the machine-wide shared
// instances every device charges into. Activation bookkeeping is
// allocated up front (O(banks × rows) words) so the per-access path
// never allocates.
func New(cfg Config, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if clock == nil || counters == nil {
		return nil, fmt.Errorf("dram: clock and counters must be non-nil")
	}
	d := &DRAM{
		cfg:             cfg,
		dec:             cfg.newDecoder(),
		rowHit:          lat.DRAMRowHit,
		rowClosed:       lat.DRAMRowClosed,
		rowConflict:     lat.DRAMRowConflict,
		bankArb:         lat.DRAMBankArbitration,
		banks:           make([]bank, cfg.TotalBanks()),
		windowStart:     clock.Now(),
		windowEpoch:     1,
		scratchPressure: make([]uint64, cfg.Rows),
	}
	for i := range d.banks {
		d.banks[i] = bank{
			openRow:  -1,
			lastCore: -1,
			acts:     make([]uint64, cfg.Rows),
			epoch:    make([]uint64, cfg.Rows),
		}
	}
	d.def = &Port{d: d, core: 0, clock: clock, counters: counters}
	return d, nil
}

// Port is one core's view of the shared DRAM: it carries the core's
// identity, clock and counters, so every latency the shared banks
// produce — including bank arbitration against another core's request
// stream — is charged to the core that issued the access, keeping the
// clock/Result/PMC agreement per core. A single-core machine uses the
// default port DRAM builds for itself.
type Port struct {
	d        *DRAM
	core     int
	clock    *timing.Clock
	counters *perf.Counters
}

// NewPort attaches a core's front-end to the shared DRAM. The default
// port is core 0; additional cores take distinct indices so the
// per-bank arbitration bookkeeping can tell their request streams
// apart.
func (d *DRAM) NewPort(core int, clock *timing.Clock, counters *perf.Counters) (*Port, error) {
	if clock == nil || counters == nil {
		return nil, fmt.Errorf("dram: port clock and counters must be non-nil")
	}
	if core < 0 {
		return nil, fmt.Errorf("dram: port core index %d must be non-negative", core)
	}
	return &Port{d: d, core: core, clock: clock, counters: counters}, nil
}

// DRAM returns the shared device this port accesses.
func (p *Port) DRAM() *DRAM { return p.d }

// Core returns the port's core index.
func (p *Port) Core() int { return p.core }

// Config returns the geometry the device was built with.
func (d *DRAM) Config() Config { return d.cfg }

// Lookup services one memory access through the default (core 0)
// port; the port's Lookup charges the full latency to that port's
// clock before this method returns.
//
//pthammer:noalloc
func (d *DRAM) Lookup(a mem.Access) mem.Result {
	res := d.def.Lookup(a)
	return res
}

// Lookup services one memory access at a bank. It charges the
// row-buffer-outcome latency — plus the bank-arbitration cost when the
// bank last serviced a different core — to the port's clock, counts
// activations and conflicts against the port's counters, and reports
// Hit for row-buffer hits.
//
//pthammer:noalloc
func (p *Port) Lookup(a mem.Access) mem.Result {
	d := p.d
	d.rotateWindow(p.clock.Now(), p.core)
	gb, row, _ := d.dec.decode(a.Addr)
	b := &d.banks[gb]

	var lat timing.Cycles
	rowHit := false
	switch {
	case b.openRow == int64(row):
		lat = d.rowHit
		rowHit = true
	case b.openRow < 0:
		lat = d.rowClosed
		d.activate(b, row, p.counters)
	default:
		lat = d.rowConflict
		p.counters.Inc(perf.DRAMRowConflicts)
		d.activate(b, row, p.counters)
	}
	if b.lastCore != p.core {
		if b.lastCore >= 0 {
			lat += d.bankArb
		}
		b.lastCore = p.core
	}
	p.clock.Advance(lat)
	return mem.Result{Latency: lat, Hit: rowHit, Source: mem.LevelDRAM}
}

// activate latches row into the bank's row buffer and counts the ACT
// against the accessing core's counters. A row first touched this
// window has its stale count lazily reset.
//
//pthammer:noalloc
func (d *DRAM) activate(b *bank, row uint64, counters *perf.Counters) {
	b.openRow = int64(row)
	if b.epoch[row] == d.windowEpoch {
		b.acts[row]++
	} else {
		b.epoch[row] = d.windowEpoch
		b.acts[row] = 1
		b.touched = append(b.touched, row) //pthammer:alloc-ok amortized: capacity is retained across window rotations
	}
	counters.Inc(perf.DRAMActivate)
}

// SetWindowHook subscribes fn to end-of-refresh-window reports: every
// natural rotation (the clock crossing a window boundary) delivers the
// ended window's Stats, computed just before the counters reset. The
// flip engine is the intended subscriber — victim reports arrive at
// refresh time, which is when accumulated disturbance either flips
// cells or is wiped by the refresh. The hook runs after the window has
// rotated, so it may read the device (Activations, HammerStats) and
// sees the fresh window; it fires only for windows with activity.
// ResetWindow discards a window without firing it. A nil fn
// unsubscribes.
func (d *DRAM) SetWindowHook(fn func(Stats)) { d.hook = fn }

// rotateWindow resets activation bookkeeping when the clock has crossed
// a refresh-window boundary. Refresh also precharges every bank, so
// open rows close. Bumping the window epoch invalidates every count at
// once; per-bank work is just the row-buffer close and truncating the
// touched list (capacity retained), so rotation is O(banks) with zero
// allocation no matter how many rows were hammered — unless a window
// hook is subscribed, in which case the ended window's Stats are
// computed (O(touched rows)) and delivered first. Rotation is lazy:
// everything counted since the previous rotation is attributed to the
// window that just ended, however many boundaries have elapsed.
//
// now is the accessing core's clock and core its index. Under the
// multi-core interleaver grant-time clocks are nondecreasing, but a
// core can still read the device between grants of faster cores whose
// accesses already pushed windowStart past it — the guard below simply
// leaves the window alone until some core's clock catches up, instead
// of letting the unsigned subtraction wrap.
//
//pthammer:noalloc
func (d *DRAM) rotateWindow(now timing.Cycles, core int) {
	w := d.cfg.RefreshWindow
	if w == 0 {
		return
	}
	if now < d.windowStart {
		return
	}
	elapsed := now - d.windowStart
	if elapsed < w {
		return
	}
	var ended Stats
	fire := false
	if d.hook != nil {
		for i := range d.banks {
			if len(d.banks[i].touched) > 0 {
				fire = true
				break
			}
		}
		if fire {
			ended = d.stats() //pthammer:alloc-ok end-of-window report, off the per-access steady state
			ended.Core = core
		}
	}
	d.windowStart += (elapsed / w) * w
	d.windowEpoch++
	for i := range d.banks {
		d.banks[i].openRow = -1
		d.banks[i].touched = d.banks[i].touched[:0]
	}
	if fire {
		d.hook(ended) //pthammer:alloc-ok subscriber callback, fires at most once per refresh window
	}
}

// ResetWindow discards the current refresh window: activation counts
// and victim pressure drop to zero and every bank precharges, exactly
// as if a refresh had just completed — but the window hook does not
// fire, so no flips can result from the discarded activity. Callers
// use it to scrub construction traffic (demand-allocation loads,
// eviction-set build probes) out of the bookkeeping before a measured
// hammer phase starts from a clean window.
func (d *DRAM) ResetWindow() { d.def.ResetWindow() }

// ResetWindow is DRAM.ResetWindow anchored at this port's clock: the
// fresh window starts at the resetting core's current cycle reading.
//
//pthammer:noalloc
func (p *Port) ResetWindow() {
	d := p.d
	d.windowStart = p.clock.Now()
	d.windowEpoch++
	for i := range d.banks {
		d.banks[i].openRow = -1
		d.banks[i].touched = d.banks[i].touched[:0]
	}
}

// Reset recycles the device for the next cohort (the Reset/Recycle
// contract): everything ResetWindow discards, plus the cross-window
// state a fresh device starts with — per-bank lastCore arbitration
// bookkeeping back to -1, so the first access of the next cohort pays
// no stale cross-core bank-arbitration charge. The window hook stays
// subscribed (the flip model is recycled separately, not re-bound).
//
// Cost is O(banks + touched rows), never O(rows): stale per-row ACT
// counts are invalidated by the epoch bump exactly as on a window
// rotation, not scrubbed. The dram-recycle-reset bench scenario pins
// this — a recycle that walks the row arrays would regress it by
// orders of magnitude on a large-geometry module.
func (d *DRAM) Reset() { d.def.Reset() }

// Reset is DRAM.Reset anchored at this port's clock: the recycled
// device's first window starts at the resetting core's current cycle
// reading (a machine recycle rebases that clock to 0 first, matching a
// fresh device's construction-time anchor).
//
//pthammer:noalloc
func (p *Port) Reset() {
	d := p.d
	d.windowStart = p.clock.Now()
	d.windowEpoch++
	for i := range d.banks {
		b := &d.banks[i]
		b.openRow = -1
		b.lastCore = -1
		b.touched = b.touched[:0]
	}
}

// actsOf returns the current-window activation count of a row, reading
// stale epochs as zero.
func (b *bank) actsOf(row, epoch uint64) uint64 {
	if b.epoch[row] != epoch {
		return 0
	}
	return b.acts[row]
}

// Activations returns how many times the given row of the given bank
// location has been activated in the current refresh window, checking
// for rotation against the default port's clock.
func (d *DRAM) Activations(l Location) uint64 { return d.def.Activations(l) }

// Activations is DRAM.Activations with rotation checked against this
// port's clock.
func (p *Port) Activations(l Location) uint64 {
	d := p.d
	d.rotateWindow(p.clock.Now(), p.core)
	return d.banks[d.cfg.globalBank(l)].actsOf(l.Row, d.windowEpoch)
}

// Victim is a row whose neighbours have been activated enough this
// refresh window to make disturbance errors plausible.
type Victim struct {
	Channel int
	Rank    int
	Bank    int
	Row     uint64
	// Pressure is the summed activations of the two adjacent rows
	// within the current refresh window.
	Pressure uint64
}

// Stats summarises hammer-relevant DRAM activity in the current
// refresh window.
type Stats struct {
	// WindowStart is the cycle the current refresh window began.
	WindowStart timing.Cycles
	// Core identifies the request stream the report is attributed to:
	// in end-of-window hook reports, the core whose access crossed the
	// window boundary and triggered the rotation; from Port.HammerStats,
	// the asking port's core. Always 0 on a single-core machine.
	Core int
	// Activations is the total ACT count across all banks this window.
	Activations uint64
	// Victims lists rows whose adjacent-row activation pressure meets
	// the hammer threshold, most pressured first. The slice is owned by
	// the caller: it is freshly allocated on every call and never
	// aliases internal scratch state, so it stays valid across later
	// HammerStats calls.
	Victims []Victim
}

// HammerStats computes which rows are hammer-eligible right now. A row
// v is eligible when activations(v-1) + activations(v+1) within the
// current refresh window reach the configured threshold — double-sided
// hammering contributes from both sides, single-sided from one.
//
// The computation walks only the rows actually activated this window,
// accumulating neighbour pressure in a scratch buffer reused across
// calls, so its cost is O(touched rows), independent of the geometry.
func (d *DRAM) HammerStats() Stats { return d.def.HammerStats() }

// HammerStats is DRAM.HammerStats with rotation checked against this
// port's clock; the returned Stats carry this port's core index.
func (p *Port) HammerStats() Stats {
	d := p.d
	d.rotateWindow(p.clock.Now(), p.core)
	s := d.stats()
	s.Core = p.core
	return s
}

// stats computes the current window's Stats without checking for
// rotation — the shared body of HammerStats and the end-of-window
// report rotateWindow hands the hook.
func (d *DRAM) stats() Stats {
	s := Stats{WindowStart: d.windowStart}
	d.scratchVictims = d.scratchVictims[:0]
	for gb := range d.banks {
		b := &d.banks[gb]
		if len(b.touched) == 0 {
			continue
		}
		press := d.scratchPressure
		cand := d.scratchRows[:0]
		for _, row := range b.touched {
			n := b.acts[row]
			s.Activations += n
			if row > 0 {
				if press[row-1] == 0 {
					cand = append(cand, row-1)
				}
				press[row-1] += n
			}
			if row+1 < d.cfg.Rows {
				if press[row+1] == 0 {
					cand = append(cand, row+1)
				}
				press[row+1] += n
			}
		}
		loc := d.cfg.locOfGlobalBank(gb)
		for _, row := range cand {
			p := press[row]
			press[row] = 0 // restore the all-zero invariant for the next bank
			if p < d.cfg.HammerThreshold {
				continue
			}
			d.scratchVictims = append(d.scratchVictims, Victim{
				Channel: loc.Channel, Rank: loc.Rank, Bank: loc.Bank,
				Row: row, Pressure: p,
			})
		}
		d.scratchRows = cand[:0]
	}
	// Total order (pressure desc, then location) so victim lists are
	// deterministic despite per-bank append order.
	sort.Slice(d.scratchVictims, func(i, j int) bool {
		a, b := d.scratchVictims[i], d.scratchVictims[j]
		switch {
		case a.Pressure != b.Pressure:
			return a.Pressure > b.Pressure
		case a.Channel != b.Channel:
			return a.Channel < b.Channel
		case a.Rank != b.Rank:
			return a.Rank < b.Rank
		case a.Bank != b.Bank:
			return a.Bank < b.Bank
		default:
			return a.Row < b.Row
		}
	})
	// Copy out of scratch: the caller owns Stats.Victims.
	s.Victims = append([]Victim(nil), d.scratchVictims...)
	return s
}
