package dram

import (
	"math/rand"
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// testConfig is a small geometry: 2 channels × 1 rank × 2 banks,
// 16 rows of 8 KiB, no refresh window, threshold 10.
func testConfig() Config {
	return Config{
		Channels:        2,
		RanksPerChannel: 1,
		BanksPerRank:    2,
		Rows:            16,
		RowBytes:        8192,
		HammerThreshold: 10,
	}
}

func newTestDRAM(t *testing.T, cfg Config) (*DRAM, *timing.Clock, *perf.Counters) {
	t.Helper()
	clock := timing.MustNewClock(1_000_000_000)
	counters := &perf.Counters{}
	d, err := New(cfg, clock, counters, timing.DefaultLatencies())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clock, counters
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.RanksPerChannel = -1 },
		func(c *Config) { c.BanksPerRank = 0 },
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.RowBytes = 0 },
		func(c *Config) { c.RowBytes = phys.FrameSize + 1 },
		func(c *Config) { c.HammerThreshold = 0 },
	}
	for i, mutate := range bad {
		c := testConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMapAddrOfRoundTrip(t *testing.T) {
	cfg := testConfig()
	if got := cfg.Capacity(); got != 4*16*8192 {
		t.Fatalf("Capacity = %d", got)
	}
	// Every (bank, row, col) sample round-trips through AddrOf → Map.
	for ch := 0; ch < cfg.Channels; ch++ {
		for bank := 0; bank < cfg.BanksPerRank; bank++ {
			for _, row := range []uint64{0, 7, 15} {
				loc := Location{Channel: ch, Bank: bank, Row: row, Col: 513}
				got := cfg.Map(cfg.AddrOf(loc))
				if got != loc {
					t.Fatalf("round trip %+v -> %+v", loc, got)
				}
			}
		}
	}
	// Consecutive row-sized blocks land in different banks (channel
	// interleaving first).
	a, b := cfg.Map(0), cfg.Map(phys.Addr(cfg.RowBytes))
	if a.Channel == b.Channel && a.Rank == b.Rank && a.Bank == b.Bank {
		t.Fatal("adjacent blocks mapped to the same bank")
	}
}

func TestMapPanicsBeyondCapacity(t *testing.T) {
	cfg := testConfig()
	defer func() {
		if recover() == nil {
			t.Fatal("Map beyond capacity did not panic")
		}
	}()
	cfg.Map(phys.Addr(cfg.Capacity()))
}

func TestRowBufferOutcomes(t *testing.T) {
	d, clock, counters := newTestDRAM(t, testConfig())
	lat := timing.DefaultLatencies()
	cfg := d.Config()

	row0 := cfg.AddrOf(Location{Row: 0})
	row1 := cfg.AddrOf(Location{Row: 1}) // same bank, different row

	// Cold bank: closed-row activation.
	res := d.Lookup(mem.Access{Addr: row0, Kind: mem.KindLoad})
	if res.Latency != lat.DRAMRowClosed || res.Hit || res.Source != mem.LevelDRAM {
		t.Fatalf("cold access = %+v", res)
	}
	if counters.Read(perf.DRAMActivate) != 1 {
		t.Fatalf("activations = %d, want 1", counters.Read(perf.DRAMActivate))
	}

	// Same row again: row-buffer hit, no new activation.
	res = d.Lookup(mem.Access{Addr: row0 + 64, Kind: mem.KindLoad})
	if res.Latency != lat.DRAMRowHit || !res.Hit {
		t.Fatalf("row hit access = %+v", res)
	}
	if counters.Read(perf.DRAMActivate) != 1 {
		t.Fatal("row hit incremented activations")
	}

	// Different row in the same bank: conflict.
	res = d.Lookup(mem.Access{Addr: row1, Kind: mem.KindLoad})
	if res.Latency != lat.DRAMRowConflict || res.Hit {
		t.Fatalf("conflict access = %+v", res)
	}
	if counters.Read(perf.DRAMRowConflicts) != 1 || counters.Read(perf.DRAMActivate) != 2 {
		t.Fatalf("conflict counters: conflicts %d activates %d",
			counters.Read(perf.DRAMRowConflicts), counters.Read(perf.DRAMActivate))
	}

	wantClock := lat.DRAMRowClosed + lat.DRAMRowHit + lat.DRAMRowConflict
	if clock.Now() != wantClock {
		t.Fatalf("clock = %d, want %d", clock.Now(), wantClock)
	}
}

func TestHammerStatsDoubleSided(t *testing.T) {
	cfg := testConfig() // threshold 10
	d, _, _ := newTestDRAM(t, cfg)

	// Double-sided pair around victim row 6 in bank (0,0,0).
	above := cfg.AddrOf(Location{Row: 5})
	below := cfg.AddrOf(Location{Row: 7})

	// 4 alternations = 8 activations total: below threshold.
	for i := 0; i < 4; i++ {
		d.Lookup(mem.Access{Addr: above})
		d.Lookup(mem.Access{Addr: below})
	}
	if s := d.HammerStats(); len(s.Victims) != 0 {
		t.Fatalf("victims before threshold: %+v", s.Victims)
	}

	// One more alternation crosses the threshold for row 6
	// (5 activations each side = 10 combined).
	d.Lookup(mem.Access{Addr: above})
	d.Lookup(mem.Access{Addr: below})
	s := d.HammerStats()
	if s.Activations != 10 {
		t.Fatalf("total activations = %d, want 10", s.Activations)
	}
	if len(s.Victims) != 1 {
		t.Fatalf("victims = %+v, want exactly row 6", s.Victims)
	}
	v := s.Victims[0]
	if v.Row != 6 || v.Pressure != 10 || v.Channel != 0 || v.Rank != 0 || v.Bank != 0 {
		t.Fatalf("victim = %+v", v)
	}

	// Per-row accounting is visible too.
	if got := d.Activations(Location{Row: 5}); got != 5 {
		t.Fatalf("row 5 activations = %d, want 5", got)
	}
}

func TestHammerStatsSingleSidedAndOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.HammerThreshold = 3
	d, _, _ := newTestDRAM(t, cfg)
	other := cfg.AddrOf(Location{Row: 9}) // forces conflicts to re-activate row 2
	aggr := cfg.AddrOf(Location{Row: 2})
	for i := 0; i < 4; i++ {
		d.Lookup(mem.Access{Addr: aggr})
		d.Lookup(mem.Access{Addr: other})
	}
	s := d.HammerStats()
	// Row 2 hammered 4×, row 9 hammered 4×: victims 1,3 (pressure 4)
	// and 8,10 (pressure 4). All ties broken by row number.
	if len(s.Victims) != 4 {
		t.Fatalf("victims = %+v", s.Victims)
	}
	rows := []uint64{s.Victims[0].Row, s.Victims[1].Row, s.Victims[2].Row, s.Victims[3].Row}
	want := []uint64{1, 3, 8, 10}
	for i := range want {
		if rows[i] != want[i] {
			t.Fatalf("victim rows = %v, want %v", rows, want)
		}
	}
}

func TestHammerStatsTiedVictimsDeterministicOrder(t *testing.T) {
	cfg := testConfig()
	cfg.HammerThreshold = 4
	d, _, _ := newTestDRAM(t, cfg)

	// Identical double-sided pattern in two different channels: two
	// victims with equal pressure and row must come back in a fixed
	// location order every time.
	for i := 0; i < 2; i++ {
		for _, ch := range []int{1, 0} {
			d.Lookup(mem.Access{Addr: cfg.AddrOf(Location{Channel: ch, Row: 5})})
			d.Lookup(mem.Access{Addr: cfg.AddrOf(Location{Channel: ch, Row: 7})})
		}
	}
	s := d.HammerStats()
	if len(s.Victims) != 2 {
		t.Fatalf("victims = %+v, want 2", s.Victims)
	}
	for i, v := range s.Victims {
		if v.Row != 6 || v.Pressure != 4 || v.Channel != i {
			t.Fatalf("victim %d = %+v, want row 6 pressure 4 channel %d", i, v, i)
		}
	}
}

func TestRefreshWindowResets(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshWindow = 10_000
	d, clock, _ := newTestDRAM(t, cfg)

	aggr1 := cfg.AddrOf(Location{Row: 5})
	aggr2 := cfg.AddrOf(Location{Row: 7})
	for i := 0; i < 6; i++ {
		d.Lookup(mem.Access{Addr: aggr1})
		d.Lookup(mem.Access{Addr: aggr2})
	}
	if s := d.HammerStats(); len(s.Victims) == 0 {
		t.Fatal("expected victims before refresh")
	}

	// Crossing the refresh boundary precharges banks and clears counts.
	clock.Advance(20_000)
	s := d.HammerStats()
	if len(s.Victims) != 0 || s.Activations != 0 {
		t.Fatalf("stats after refresh = %+v", s)
	}
	if s.WindowStart == 0 {
		t.Fatal("window start did not advance")
	}

	// Banks were precharged: next access is a closed-row activation,
	// not a row hit or conflict.
	res := d.Lookup(mem.Access{Addr: aggr1})
	if res.Latency != timing.DefaultLatencies().DRAMRowClosed {
		t.Fatalf("post-refresh access latency = %d", res.Latency)
	}
}

// refMap is an independent naive div/mod reference for the address
// decode, kept deliberately dumb so the property tests below check the
// optimized decoder (shift/mask or generic) against first principles.
func refMap(c Config, a phys.Addr) Location {
	block := uint64(a) / c.RowBytes
	nb := uint64(c.TotalBanks())
	gb := int(block % nb)
	loc := Location{
		Channel: gb % c.Channels,
		Rank:    gb / c.Channels % c.RanksPerChannel,
		Bank:    gb / c.Channels / c.RanksPerChannel,
		Row:     block / nb,
		Col:     uint64(a) % c.RowBytes,
	}
	return loc
}

// TestDecodeMatchesGenericAcrossGeometries is the shift/mask property
// test: over random geometries (power-of-two and not) and random
// in-range addresses, the decoder agrees with the naive reference.
func TestDecodeMatchesGenericAcrossGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	geoms := []Config{
		testConfig(), // pow2: 4 banks × 8 KiB rows
		{Channels: 2, RanksPerChannel: 1, BanksPerRank: 8, Rows: 8192, RowBytes: 8192, HammerThreshold: 1}, // SandyBridge shape
		{Channels: 3, RanksPerChannel: 1, BanksPerRank: 2, Rows: 64, RowBytes: 8192, HammerThreshold: 1},   // 6 banks: generic path
		{Channels: 1, RanksPerChannel: 3, BanksPerRank: 4, Rows: 32, RowBytes: 12288, HammerThreshold: 1},  // non-pow2 row bytes
		{Channels: 1, RanksPerChannel: 1, BanksPerRank: 1, Rows: 16, RowBytes: 4096, HammerThreshold: 1},   // degenerate single bank
	}
	for gi, cfg := range geoms {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("geometry %d invalid: %v", gi, err)
		}
		dec := cfg.newDecoder()
		wantPow2 := cfg.RowBytes&(cfg.RowBytes-1) == 0 && uint64(cfg.TotalBanks())&(uint64(cfg.TotalBanks())-1) == 0
		if dec.pow2 != wantPow2 {
			t.Fatalf("geometry %d: pow2 = %v, want %v", gi, dec.pow2, wantPow2)
		}
		for i := 0; i < 2000; i++ {
			a := phys.Addr(rng.Uint64() % cfg.Capacity())
			want := refMap(cfg, a)
			if got := cfg.Map(a); got != want {
				t.Fatalf("geometry %d: Map(%#x) = %+v, want %+v", gi, uint64(a), got, want)
			}
			gb, row, col := dec.decode(a)
			if gb != cfg.globalBank(want) || row != want.Row || col != want.Col {
				t.Fatalf("geometry %d: decode(%#x) = (%d, %d, %d), want (%d, %d, %d)",
					gi, uint64(a), gb, row, col, cfg.globalBank(want), want.Row, want.Col)
			}
			if back := cfg.AddrOf(want); back != a {
				t.Fatalf("geometry %d: AddrOf(Map(%#x)) = %#x", gi, uint64(a), uint64(back))
			}
		}
	}
}

// TestHammerStatsVictimsDoNotAliasScratch pins the ownership contract:
// Stats.Victims is a caller-owned copy, so a later HammerStats call
// (with different DRAM state) must not mutate an earlier result.
func TestHammerStatsVictimsDoNotAliasScratch(t *testing.T) {
	cfg := testConfig()
	cfg.HammerThreshold = 2
	d, _, _ := newTestDRAM(t, cfg)

	hammer := func(row uint64, times int) {
		aggr := cfg.AddrOf(Location{Row: row})
		other := cfg.AddrOf(Location{Row: row + 2})
		for i := 0; i < times; i++ {
			d.Lookup(mem.Access{Addr: aggr})
			d.Lookup(mem.Access{Addr: other})
		}
	}
	hammer(5, 3)
	first := d.HammerStats()
	if len(first.Victims) == 0 {
		t.Fatal("no victims after hammering")
	}
	snapshot := append([]Victim(nil), first.Victims...)

	// More hammering at other rows changes the victim set; the first
	// result must be unaffected.
	hammer(12, 5)
	second := d.HammerStats()
	if len(second.Victims) <= len(first.Victims) {
		t.Fatalf("second call found %d victims, want more than %d", len(second.Victims), len(first.Victims))
	}
	for i := range snapshot {
		if first.Victims[i] != snapshot[i] {
			t.Fatalf("victim %d mutated by later HammerStats: %+v != %+v", i, first.Victims[i], snapshot[i])
		}
	}
}

// TestActivationsLazyResetAcrossWindows exercises the epoch tagging:
// counts written in an old window must read as zero after rotation
// without any explicit clearing.
func TestActivationsLazyResetAcrossWindows(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshWindow = 100_000
	d, clock, _ := newTestDRAM(t, cfg)

	aggr := cfg.AddrOf(Location{Row: 3})
	conflict := cfg.AddrOf(Location{Row: 8})
	for i := 0; i < 3; i++ {
		d.Lookup(mem.Access{Addr: aggr})
		d.Lookup(mem.Access{Addr: conflict})
	}
	if got := d.Activations(Location{Row: 3}); got != 3 {
		t.Fatalf("activations = %d, want 3", got)
	}
	clock.Advance(200_000)
	if got := d.Activations(Location{Row: 3}); got != 0 {
		t.Fatalf("activations after rotation = %d, want 0", got)
	}
	// Re-activating in the new window starts counting from scratch.
	d.Lookup(mem.Access{Addr: aggr})
	if got := d.Activations(Location{Row: 3}); got != 1 {
		t.Fatalf("activations in new window = %d, want 1", got)
	}
}

// BenchmarkLookupRowConflict measures the worst-case per-access DRAM
// path: alternating rows in one bank, so every access is a conflict
// plus an activation.
func BenchmarkLookupRowConflict(b *testing.B) {
	cfg := Config{
		Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
		Rows: 8192, RowBytes: 8192,
		RefreshWindow:   timing.Cycles(217_600_000),
		HammerThreshold: 139_000,
	}
	clock := timing.MustNewClock(3_400_000_000)
	d, err := New(cfg, clock, &perf.Counters{}, timing.DefaultLatencies())
	if err != nil {
		b.Fatal(err)
	}
	a1 := cfg.AddrOf(Location{Row: 1})
	a2 := cfg.AddrOf(Location{Row: 3})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Lookup(mem.Access{Addr: a1})
		d.Lookup(mem.Access{Addr: a2})
	}
}

// BenchmarkHammerStats measures the stats pass over a window with many
// touched rows spread across banks.
func BenchmarkHammerStats(b *testing.B) {
	cfg := Config{
		Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
		Rows: 8192, RowBytes: 8192,
		HammerThreshold: 4,
	}
	clock := timing.MustNewClock(3_400_000_000)
	d, err := New(cfg, clock, &perf.Counters{}, timing.DefaultLatencies())
	if err != nil {
		b.Fatal(err)
	}
	// Alternate each aggressor with a far row in the same bank so every
	// access is a conflict that re-activates, spreading 4 ACTs over each
	// of 256 aggressor rows.
	for row := uint64(0); row < 512; row += 2 {
		far := cfg.AddrOf(Location{Row: row + 4096})
		aggr := cfg.AddrOf(Location{Row: row})
		for i := 0; i < 4; i++ {
			d.Lookup(mem.Access{Addr: aggr})
			d.Lookup(mem.Access{Addr: far})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := d.HammerStats()
		if len(s.Victims) == 0 {
			b.Fatal("no victims")
		}
	}
}

// TestRowRangeCoversExactlyOneRow: every address inside the reported
// range decodes to the victim's (channel, rank, bank, row), and the
// addresses one byte either side do not.
func TestRowRangeCoversExactlyOneRow(t *testing.T) {
	for _, cfg := range []Config{
		testConfig(),
		{Channels: 3, RanksPerChannel: 1, BanksPerRank: 2, Rows: 64, RowBytes: 8192, HammerThreshold: 1},
	} {
		loc := Location{Channel: cfg.Channels - 1, Rank: 0, Bank: 1, Row: 3}
		start, bytes := cfg.RowRange(loc.Channel, loc.Rank, loc.Bank, loc.Row)
		if bytes != cfg.RowBytes {
			t.Fatalf("row span = %d bytes, want %d", bytes, cfg.RowBytes)
		}
		for _, off := range []uint64{0, 1, bytes / 2, bytes - 1} {
			got := cfg.Map(start + phys.Addr(off))
			if got.Channel != loc.Channel || got.Rank != loc.Rank || got.Bank != loc.Bank || got.Row != loc.Row {
				t.Fatalf("offset %d decodes to %+v, want row %+v", off, got, loc)
			}
			if got.Col != off {
				t.Fatalf("offset %d decodes to column %d", off, got.Col)
			}
		}
		if start > 0 {
			if got := cfg.Map(start - 1); got == (Location{Channel: loc.Channel, Rank: loc.Rank, Bank: loc.Bank, Row: loc.Row, Col: got.Col}) {
				t.Fatalf("byte before range still in row: %+v", got)
			}
		}
		after := cfg.Map(start + phys.Addr(bytes))
		if after.Channel == loc.Channel && after.Rank == loc.Rank && after.Bank == loc.Bank && after.Row == loc.Row {
			t.Fatalf("byte past range still in row: %+v", after)
		}
	}
}

// TestWindowHookReceivesEndedWindow: a natural rotation hands the hook
// the ended window's stats (victims included), the device has already
// started the fresh window when the hook runs, and idle windows do not
// fire.
func TestWindowHookReceivesEndedWindow(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshWindow = 10_000
	d, clock, _ := newTestDRAM(t, cfg)

	var reports []Stats
	d.SetWindowHook(func(s Stats) {
		// The hook may read the device: it must observe the fresh,
		// already-rotated window, not the one being reported.
		if live := d.HammerStats(); live.Activations != 0 {
			t.Errorf("hook saw %d live activations, want 0 (fresh window)", live.Activations)
		}
		reports = append(reports, s)
	})

	aggr1 := cfg.AddrOf(Location{Row: 5})
	aggr2 := cfg.AddrOf(Location{Row: 7})
	for i := 0; i < 6; i++ {
		d.Lookup(mem.Access{Addr: aggr1})
		d.Lookup(mem.Access{Addr: aggr2})
	}
	clock.Advance(20_000)
	d.Lookup(mem.Access{Addr: aggr1}) // triggers the lazy rotation
	if len(reports) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(reports))
	}
	got := reports[0]
	if got.Activations != 12 {
		t.Fatalf("ended window reported %d activations, want 12", got.Activations)
	}
	found := false
	for _, v := range got.Victims {
		if v.Row == 6 && v.Pressure == 12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ended window victims = %+v, want row 6 at pressure 12", got.Victims)
	}

	// An idle crossing (only the post-rotation probe access in the
	// window) reports once more for that access; a crossing with no
	// activity at all stays silent.
	clock.Advance(20_000)
	d.Lookup(mem.Access{Addr: aggr1})
	if len(reports) != 2 {
		t.Fatalf("hook fired %d times after second crossing, want 2", len(reports))
	}
	clock.Advance(20_000)
	if s := d.HammerStats(); s.Activations != 0 {
		t.Fatalf("live activations = %d, want 0", s.Activations)
	}
	if len(reports) != 3 {
		// The single Lookup above was the third window's only activity.
		t.Fatalf("hook fired %d times, want 3", len(reports))
	}
	clock.Advance(20_000)
	d.HammerStats() // rotation with a completely idle window: no report
	if len(reports) != 3 {
		t.Fatalf("idle window fired the hook (%d reports)", len(reports))
	}
}

// TestResetWindowDiscardsWithoutFiring: ResetWindow zeroes the
// bookkeeping, precharges the banks, and never invokes the hook — the
// discard path construction traffic takes.
func TestResetWindowDiscardsWithoutFiring(t *testing.T) {
	cfg := testConfig()
	cfg.RefreshWindow = 1 << 40 // far away: only ResetWindow rotates
	d, _, _ := newTestDRAM(t, cfg)
	fired := 0
	d.SetWindowHook(func(Stats) { fired++ })

	aggr1 := cfg.AddrOf(Location{Row: 5})
	aggr2 := cfg.AddrOf(Location{Row: 7})
	for i := 0; i < 6; i++ {
		d.Lookup(mem.Access{Addr: aggr1})
		d.Lookup(mem.Access{Addr: aggr2})
	}
	if s := d.HammerStats(); len(s.Victims) == 0 {
		t.Fatal("expected victims before reset")
	}
	d.ResetWindow()
	if fired != 0 {
		t.Fatalf("ResetWindow fired the hook %d times", fired)
	}
	s := d.HammerStats()
	if s.Activations != 0 || len(s.Victims) != 0 {
		t.Fatalf("stats after reset = %+v, want empty", s)
	}
	if got := d.Activations(Location{Row: 5}); got != 0 {
		t.Fatalf("row 5 activations after reset = %d, want 0", got)
	}
	// Banks precharged: the next access is a closed-row activation.
	res := d.Lookup(mem.Access{Addr: aggr1})
	if res.Latency != timing.DefaultLatencies().DRAMRowClosed {
		t.Fatalf("post-reset access latency = %d, want closed-row", res.Latency)
	}
}

// TestResetWindowWorksWithWindowingDisabled: RefreshWindow 0 means no
// natural rotation ever happens, but an explicit reset still discards.
func TestResetWindowWorksWithWindowingDisabled(t *testing.T) {
	cfg := testConfig() // RefreshWindow 0
	d, _, _ := newTestDRAM(t, cfg)
	a := cfg.AddrOf(Location{Row: 2})
	for i := 0; i < 4; i++ {
		d.Lookup(mem.Access{Addr: a})
		d.Lookup(mem.Access{Addr: cfg.AddrOf(Location{Row: 4})})
	}
	if d.Activations(Location{Row: 2}) == 0 {
		t.Fatal("no activations recorded")
	}
	d.ResetWindow()
	if got := d.Activations(Location{Row: 2}); got != 0 {
		t.Fatalf("activations after reset = %d, want 0", got)
	}
}

// TestPortAccessors pins the multi-core port plumbing: each port knows
// its device and core index, and NewPort rejects nil wiring and
// negative cores.
func TestPortAccessors(t *testing.T) {
	d, clock, counters := newTestDRAM(t, testConfig())
	p, err := d.NewPort(2, clock, counters)
	if err != nil {
		t.Fatal(err)
	}
	if p.DRAM() != d || p.Core() != 2 {
		t.Fatalf("port accessors: DRAM match %v, core %d", p.DRAM() == d, p.Core())
	}
	if _, err := d.NewPort(-1, clock, counters); err == nil {
		t.Fatal("NewPort accepted a negative core index")
	}
	if _, err := d.NewPort(0, nil, counters); err == nil {
		t.Fatal("NewPort accepted a nil clock")
	}
}
