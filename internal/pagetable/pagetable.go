// Package pagetable owns the radix page-table layout the hardware page
// walker (internal/ptwalk) traverses. Tables are real bytes in
// phys.Memory — one 4 KiB frame per table, 512 little-endian 8-byte
// entries per frame, four levels (PML4 → PDPT → PD → PT) exactly like
// x86-64 4 KiB paging — so a rowhammer bit flip landing in a table
// frame (phys.FlipBit) changes what later walks resolve to, which is
// PThammer's exploitation step.
//
// Table frames come from a reserved region of physical memory managed
// by a bump allocator (the simulated kernel's page-table pool, placed
// at the top of DRAM by the machine facade). The region is sized by
// FramesToMap so a full identity mapping of the machine can never
// exhaust it.
package pagetable

import (
	"fmt"

	"pthammer/internal/phys"
)

const (
	// EntriesPerTable is the number of entries in one table frame.
	EntriesPerTable = phys.FrameSize / EntryBytes
	// EntryBytes is the size of one table entry.
	EntryBytes = 8
	// Levels is the depth of the radix tree: PML4, PDPT, PD, PT.
	Levels = 4

	// IndexBits is the radix width: how many VA bits each level consumes.
	IndexBits = 9

	indexMask = EntriesPerTable - 1
)

// Entry is one page-table entry in the x86-64 layout subset the
// simulator uses: bit 0 is the present bit and bits 12..51 hold the
// next-level (or final, at the PT level) frame number.
type Entry uint64

const (
	entryPresent   Entry = 1
	entryFrameMask Entry = 0x000F_FFFF_FFFF_F000
)

// NewEntry builds a present entry pointing at the frame.
func NewEntry(f phys.Frame) Entry {
	return Entry(f.Addr())&entryFrameMask | entryPresent
}

// Present reports whether the entry maps anything.
//
//pthammer:noalloc
func (e Entry) Present() bool { return e&entryPresent != 0 }

// Frame returns the frame number the entry points to.
//
//pthammer:noalloc
func (e Entry) Frame() phys.Frame { return phys.FrameOf(phys.Addr(e & entryFrameMask)) }

// Index returns the radix index the given level uses for the virtual
// address: level 4 is the PML4 (bits 39..47) down to level 1, the PT
// (bits 12..20).
//
//pthammer:noalloc
func Index(va phys.Addr, level int) uint64 {
	if level < 1 || level > Levels {
		panic(fmt.Sprintf("pagetable: level %d out of range", level))
	}
	return uint64(va) >> (phys.FrameShift + IndexBits*(level-1)) & indexMask
}

// EntryAddrIn is the physical address of the entry a walk of va
// consults inside the given table frame at the given level. It is the
// single place the entry-position math lives; the hardware walker
// (internal/ptwalk) computes its fetch targets with it as it descends.
//
//pthammer:noalloc
func EntryAddrIn(table phys.Frame, va phys.Addr, level int) phys.Addr {
	return table.Addr() + phys.Addr(Index(va, level)*EntryBytes)
}

// Span returns how many bytes of virtual address space one entry at
// the given level maps: 4 KiB at the PT, 2 MiB at the PD, and so on.
func Span(level int) uint64 {
	if level < 1 || level > Levels {
		panic(fmt.Sprintf("pagetable: level %d out of range", level))
	}
	return uint64(phys.FrameSize) << (IndexBits * (level - 1))
}

// FramesToMap returns how many table frames a full 4 KiB-page mapping
// of memBytes of address space needs: the PTs to hold every PTE, the
// PDs above them, the PDPTs above those, and one PML4.
func FramesToMap(memBytes uint64) uint64 {
	ceil := func(n uint64) uint64 { return (n + EntriesPerTable - 1) / EntriesPerTable }
	pages := (memBytes + phys.FrameSize - 1) / phys.FrameSize
	pts := ceil(pages)
	pds := ceil(pts)
	pdpts := ceil(pds)
	return 1 + pdpts + pds + pts
}

// Tables is one address space: a root (CR3) table plus a bump
// allocator handing out table frames from its pool. The pool is an
// explicit frame list so one machine can host several address spaces
// whose pools interleave (the multi-tenant mode stripes tenants'
// pools across DRAM row indices, putting different tenants' tables in
// physically adjacent rows of the same banks — the cross-tenant attack
// surface); the single-core machine uses the contiguous pool New
// builds, so its layout is unchanged.
type Tables struct {
	mem  *phys.Memory
	pool []phys.Frame
	next int
	root phys.Frame
}

// New creates an address space whose table frames come from the
// contiguous region [base, base+frames). The root table is allocated
// (and zeroed) immediately.
func New(m *phys.Memory, base phys.Frame, frames uint64) (*Tables, error) {
	if m == nil {
		return nil, fmt.Errorf("pagetable: memory must be non-nil")
	}
	end := (uint64(base) + frames) * phys.FrameSize
	if frames > 0 && (end > m.Size() || end < uint64(base)*phys.FrameSize) {
		return nil, fmt.Errorf("pagetable: region [%#x, %#x) outside %d-byte memory",
			base.Addr(), end, m.Size())
	}
	pool := make([]phys.Frame, frames)
	for i := range pool {
		pool[i] = base + phys.Frame(i)
	}
	return NewWithFrames(m, pool)
}

// NewWithFrames creates an address space whose table frames come from
// the given pool, handed out in order. The pool need not be contiguous
// or sorted; it must be non-empty (the root is allocated immediately)
// and every frame must lie inside memory.
func NewWithFrames(m *phys.Memory, pool []phys.Frame) (*Tables, error) {
	if m == nil {
		return nil, fmt.Errorf("pagetable: memory must be non-nil")
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("pagetable: table pool must hold at least the root frame")
	}
	for _, f := range pool {
		if uint64(f.Addr())+phys.FrameSize > m.Size() {
			return nil, fmt.Errorf("pagetable: pool frame %#x outside %d-byte memory", f.Addr(), m.Size())
		}
	}
	t := &Tables{mem: m, pool: pool}
	t.root = t.alloc()
	return t, nil
}

// alloc hands out the next table frame, zeroed. Exhausting the pool
// panics: the machine sizes it with FramesToMap, so running out is a
// simulator bug, not a runtime condition.
func (t *Tables) alloc() phys.Frame {
	if t.next == len(t.pool) {
		panic(fmt.Sprintf("pagetable: pool of %d frames exhausted", len(t.pool)))
	}
	f := t.pool[t.next]
	t.next++
	t.mem.ZeroFrame(f)
	return f
}

// Reset recycles the address space: every handed-out table frame is
// scrubbed (zeroed in place when materialized, left a hole when the
// backing memory was reset first) and returned to the bump allocator,
// then a fresh zeroed root is allocated — the pool is
// re-bump-allocatable exactly as after NewWithFrames. Cost is
// O(allocated frames); frames the previous tenant never allocated are
// not visited. Part of the Reset/Recycle contract: no mapping, and no
// flipped table bit, survives into the next cohort.
func (t *Tables) Reset() {
	for _, f := range t.pool[:t.next] {
		t.mem.ScrubFrame(f)
	}
	t.next = 0
	t.root = t.alloc()
}

// Root returns the root (CR3) table frame.
//
//pthammer:noalloc
func (t *Tables) Root() phys.Frame { return t.root }

// Allocated returns how many table frames have been handed out.
func (t *Tables) Allocated() int { return t.next }

// Frames returns the table frames handed out so far, in allocation
// order (the root first). The slice aliases internal state: read only.
func (t *Tables) Frames() []phys.Frame { return t.pool[:t.next] }

// Region returns the bounding box of the table-frame pool as
// [base, base+frames). For the contiguous pool New builds this is
// exactly the pool; for an interleaved pool it may cover frames that
// belong to other address spaces, which is the conservative direction
// for every current caller (they use it to keep attacker surfaces
// away from table frames).
func (t *Tables) Region() (base phys.Frame, frames uint64) {
	lo, hi := t.pool[0], t.pool[0]
	for _, f := range t.pool[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, uint64(hi-lo) + 1
}

// Map installs va → frame, allocating any missing intermediate tables.
// An existing mapping is overwritten.
func (t *Tables) Map(va phys.Addr, f phys.Frame) {
	table := t.root
	for level := Levels; level > 1; level-- {
		ea := EntryAddrIn(table, va, level)
		e := Entry(t.mem.Read64(ea))
		if !e.Present() {
			e = NewEntry(t.alloc())
			t.mem.Write64(ea, uint64(e))
		}
		table = e.Frame()
	}
	t.mem.Write64(EntryAddrIn(table, va, 1), uint64(NewEntry(f)))
}

// MapRange identity-maps every page of [start, start+bytes).
func (t *Tables) MapRange(start phys.Addr, bytes uint64) {
	for off := uint64(0); off < bytes; off += phys.FrameSize {
		va := start + phys.Addr(off)
		t.Map(va, phys.FrameOf(va))
	}
}

// EntryAddr returns the physical address of the entry consulted at the
// given level when translating va, walking the current table contents.
// ok is false when an intermediate entry on the path is not present.
// Level Levels (the PML4) never fails: its table is the root.
func (t *Tables) EntryAddr(va phys.Addr, level int) (phys.Addr, bool) {
	if level < 1 || level > Levels {
		panic(fmt.Sprintf("pagetable: level %d out of range", level))
	}
	table := t.root
	for l := Levels; l > level; l-- {
		e := Entry(t.mem.Read64(EntryAddrIn(table, va, l)))
		if !e.Present() || !t.inMemory(e.Frame()) {
			return 0, false
		}
		table = e.Frame()
	}
	return EntryAddrIn(table, va, level), true
}

// Resolve walks the tables without charging any simulated time and
// returns the frame va maps to. ok is false when the path is
// incomplete — including when a (possibly flip-corrupted) entry points
// outside physical memory, which on real hardware is a machine-check,
// not something a software walk can follow. This is the reference
// translation tests compare the timed walker (and corrupted tables)
// against.
func (t *Tables) Resolve(va phys.Addr) (phys.Frame, bool) {
	table := t.root
	for level := Levels; level >= 1; level-- {
		e := Entry(t.mem.Read64(EntryAddrIn(table, va, level)))
		if !e.Present() || !t.inMemory(e.Frame()) {
			return 0, false
		}
		table = e.Frame()
	}
	return table, true
}

// inMemory reports whether the frame lies entirely inside physical
// memory. Uncorrupted tables always point inside (Map only installs
// real frames); a rowhammer flip in a high bit of an entry's frame
// number can point anywhere in the 52-bit space.
func (t *Tables) inMemory(f phys.Frame) bool {
	return uint64(f.Addr())+phys.FrameSize <= t.mem.Size()
}
