package pagetable

import (
	"testing"

	"pthammer/internal/phys"
)

// TestResetRecyclesPool pins the page-table half of the Reset/Recycle
// contract: Reset returns every handed-out table frame to the pool
// scrubbed, rebuilds an empty root, and leaves the address space with
// no mapping — so a recycled Tables maps the next cohort's pages using
// exactly the frames (and allocation count) a fresh instance would.
func TestResetRecyclesPool(t *testing.T) {
	const size = 16 << 20
	m := phys.MustNew(size)
	tbl, err := New(m, phys.Frame(size/phys.FrameSize-64), 64)
	if err != nil {
		t.Fatal(err)
	}

	va := phys.Addr(0x42000)
	tbl.Map(va, phys.Frame(7))
	tbl.Map(va+phys.Addr(Span(3)), phys.Frame(9)) // force a second PDPT subtree
	allocated := tbl.Allocated()
	if allocated <= 1 {
		t.Fatalf("setup allocated %d frames, want a multi-level tree", allocated)
	}

	tbl.Reset()
	if tbl.Allocated() != 1 {
		t.Errorf("post-Reset Allocated = %d, want 1 (root only)", tbl.Allocated())
	}
	if _, ok := tbl.Resolve(va); ok {
		t.Error("mapping survived Reset")
	}
	root := tbl.Root()
	for off := phys.Addr(0); off < phys.FrameSize; off += 8 {
		if v := m.Read64(root.Addr() + off); v != 0 {
			t.Fatalf("root entry at +%#x = %#x after Reset, want scrubbed 0", off, v)
		}
	}

	// The pool is fully reusable: remapping the same pages consumes the
	// same number of frames as the first pass did.
	tbl.Map(va, phys.Frame(7))
	tbl.Map(va+phys.Addr(Span(3)), phys.Frame(9))
	if tbl.Allocated() != allocated {
		t.Errorf("remap allocated %d frames, fresh pass used %d", tbl.Allocated(), allocated)
	}
	if f, ok := tbl.Resolve(va); !ok || f != 7 {
		t.Errorf("remapped Resolve = (%d, %v), want (7, true)", f, ok)
	}
}
