package pagetable

import (
	"testing"

	"pthammer/internal/phys"
)

// newTables builds a 16 MiB memory with a 64-frame table pool at the
// top, the same placement the machine facade uses.
func newTables(t *testing.T) (*Tables, *phys.Memory) {
	t.Helper()
	const size = 16 << 20
	m := phys.MustNew(size)
	frames := uint64(64)
	tb, err := New(m, phys.Frame(size/phys.FrameSize-frames), frames)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tb, m
}

func TestEntryRoundTrip(t *testing.T) {
	e := NewEntry(phys.Frame(0x1234))
	if !e.Present() {
		t.Fatal("new entry not present")
	}
	if got := e.Frame(); got != 0x1234 {
		t.Fatalf("frame = %#x, want 0x1234", uint64(got))
	}
	if Entry(0).Present() {
		t.Fatal("zero entry present")
	}
}

func TestIndexAndSpan(t *testing.T) {
	// va = PML4 idx 1, PDPT idx 2, PD idx 3, PT idx 4.
	va := phys.Addr(1<<39 | 2<<30 | 3<<21 | 4<<12)
	for level, want := range map[int]uint64{4: 1, 3: 2, 2: 3, 1: 4} {
		if got := Index(va, level); got != want {
			t.Errorf("Index(level %d) = %d, want %d", level, got, want)
		}
	}
	if Span(1) != 4096 || Span(2) != 2<<20 || Span(3) != 1<<30 {
		t.Fatalf("spans = %d %d %d", Span(1), Span(2), Span(3))
	}
}

func TestFramesToMap(t *testing.T) {
	// 1 GiB: 262144 pages → 512 PTs + 1 PD + 1 PDPT + 1 PML4.
	if got := FramesToMap(1 << 30); got != 515 {
		t.Fatalf("FramesToMap(1 GiB) = %d, want 515", got)
	}
	// 2 MiB: 512 pages → 1 PT + 1 PD + 1 PDPT + 1 PML4.
	if got := FramesToMap(2 << 20); got != 4 {
		t.Fatalf("FramesToMap(2 MiB) = %d, want 4", got)
	}
}

func TestMapResolveAndEntryAddr(t *testing.T) {
	tb, m := newTables(t)
	va := phys.Addr(0x42000)
	if _, ok := tb.Resolve(va); ok {
		t.Fatal("unmapped va resolved")
	}
	if _, ok := tb.EntryAddr(va, 1); ok {
		t.Fatal("EntryAddr found a PT on an unmapped path")
	}
	// The PML4 level never fails: its table is the root.
	if ea, ok := tb.EntryAddr(va, Levels); !ok || phys.FrameOf(ea) != tb.Root() {
		t.Fatalf("PML4 EntryAddr = %#x/%v, want inside root", uint64(ea), ok)
	}

	tb.Map(va, phys.Frame(7))
	frame, ok := tb.Resolve(va)
	if !ok || frame != 7 {
		t.Fatalf("Resolve = %d/%v, want 7", frame, ok)
	}
	// Root + PDPT + PD + PT.
	if got := tb.Allocated(); got != 4 {
		t.Fatalf("allocated %d table frames, want 4", got)
	}

	// The PTE really lives at EntryAddr(va, 1): rewriting those bytes
	// changes what Resolve returns.
	pte, ok := tb.EntryAddr(va, 1)
	if !ok {
		t.Fatal("EntryAddr(va, 1) not found after Map")
	}
	m.Write64(pte, uint64(NewEntry(phys.Frame(9))))
	if frame, _ := tb.Resolve(va); frame != 9 {
		t.Fatalf("Resolve after direct PTE rewrite = %d, want 9", frame)
	}

	// Remapping overwrites.
	tb.Map(va, phys.Frame(11))
	if frame, _ := tb.Resolve(va); frame != 11 {
		t.Fatalf("Resolve after remap = %d, want 11", frame)
	}

	// A second page in the same 2 MiB region reuses the whole path.
	tb.Map(va+phys.FrameSize, phys.Frame(8))
	if got := tb.Allocated(); got != 4 {
		t.Fatalf("same-region map allocated new tables: %d", got)
	}
}

func TestMapRangeIdentity(t *testing.T) {
	tb, _ := newTables(t)
	tb.MapRange(0, 4<<20) // 1024 pages across two PTs
	for _, va := range []phys.Addr{0, 0x1000, 0x200000, 0x3ff000} {
		frame, ok := tb.Resolve(va)
		if !ok || frame != phys.FrameOf(va) {
			t.Fatalf("Resolve(%#x) = %d/%v, want identity %d", uint64(va), frame, ok, phys.FrameOf(va))
		}
	}
	// Root, PDPT, PD, 2 PTs.
	if got := tb.Allocated(); got != 5 {
		t.Fatalf("allocated %d, want 5", got)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	const size = 16 << 20
	m := phys.MustNew(size)
	// Room for root + PDPT + PD only: the first Map must blow up on the
	// PT allocation.
	tb, err := New(m, phys.Frame(size/phys.FrameSize-3), 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted pool did not panic")
		}
	}()
	tb.Map(0, 0)
}

func TestNewRejectsBadRegions(t *testing.T) {
	m := phys.MustNew(1 << 20)
	if _, err := New(nil, 0, 1); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(m, 0, 0); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := New(m, phys.Frame(250), 10); err == nil {
		t.Error("region past end of memory accepted")
	}
}

// TestFramesAndRegion: the allocated-frame listing starts with the
// root, and Region bounds the whole pool.
func TestFramesAndRegion(t *testing.T) {
	const size, frames = 1 << 22, 64
	m := phys.MustNew(size)
	base := phys.Frame(size/phys.FrameSize - frames)
	tb, err := New(m, base, frames)
	if err != nil {
		t.Fatal(err)
	}
	fs := tb.Frames()
	if len(fs) == 0 || fs[0] != base {
		t.Fatalf("Frames() = %v..., want the root %v first", fs[:1], base)
	}
	rbase, rframes := tb.Region()
	if rbase != base || rframes != frames {
		t.Fatalf("Region() = (%v, %d), want (%v, %d)", rbase, rframes, base, frames)
	}
}
