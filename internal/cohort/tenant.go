// Per-tenant simulation: the micro machine every cohort unit runs, the
// fixed tenant geometry probed from it, and the attacker/victim stream
// bodies one tenant's time slice executes.
//
// Every tenant is one attacker/victim pair on a two-core, two-tenant
// machine.Config scaled down ~1000× from the SandyBridge preset, so a
// full population of thousands of tenants stays a few seconds of wall
// clock. The attack is the cross-tenant chain of
// bench.RunCrossTenantEscalation in miniature: with interleaved table
// striping, two of the attacker's own leaf-PT bank-rows sandwich a
// bank-row of the victim's tables, and the attacker hammers them with
// nothing but loads — a PTE-line ring larger than the LLC's ways keeps
// every page walk's leaf fetch missing to DRAM. With blocked striping
// the same search can only find adjacent attacker rows, no victim row
// is sandwiched, and the population's breach rate collapses — the
// defensive contrast the mt-population tables exist to show.
//
// The victim keeps a small page set TLB-resident and streams loads
// through it, so its traffic dilutes the attacker's pressure (bank
// arbitration plus row closures on the shared banks) without ever
// walking its own tables mid-run — a flipped victim entry is therefore
// only ever read through the bounds-guarded pagetable.Resolve, never
// followed by the hardware walker.
package cohort

import (
	"fmt"

	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

const (
	// tenantMemBytes must equal the micro DRAM geometry's capacity:
	// 1 channel × 1 rank × 4 banks × 1024 rows × 8 KiB.
	tenantMemBytes = 32 << 20
	tenantFreq     = 3_400_000_000

	// tenantWindow is the micro refresh window: long enough for the
	// attacker to land ~130 aggressor activations per window, short
	// enough that a whole tenant slice is a few hundred microseconds.
	tenantWindow = timing.Cycles(60_000)

	// tenantThreshold sits inside the attacker's pressure band
	// (calibrated: per-window aggressor-pair pressure runs ~156 against
	// an idle victim down to ~143 against one streaming constantly): an
	// undisturbed double-sided tenant crosses it, a tenant whose victim
	// streams hard does not — which is what makes the population's
	// dilution rate a distribution rather than a constant, and ties
	// dilution to flip eligibility, since the flip model gates on the
	// same threshold.
	tenantThreshold = 149

	// attackerRegions is how many 2 MiB regions the attacker touches at
	// setup. Ten leaf PTs push allocations into the attacker pool's
	// second row index, which is what creates same-bank PT pairs two
	// rows apart under interleaved striping.
	attackerRegions = 10

	// The victim premaps two regions (the sprayed surface whose PTEs a
	// cross-tenant flip can land in) and streams over a third.
	victimSprayRegion  = 10
	victimSprayRegions = 2
	victimStreamRegion = 12

	// ringPagesPerRegion × 2 PTE lines cycle through the LLC's sets at
	// 6 lines per 4-way set, so under LRU every leaf-PTE fetch misses
	// the whole hierarchy and activates its PT's DRAM row.
	ringPagesPerRegion = 48
	ringPageStride     = 8

	// The victim's stream set: 4 pages, 9 pages apart so their dTLB
	// sets don't alias, giving 256 cache lines — past the micro LLC's
	// 64 — that cycle as pure TLB-hit loads.
	victimStreamPages      = 4
	victimStreamPageStride = 9

	// Quantum shapes: the attacker hammers attackerQuantum loads per
	// interleaver grant — small, so a busy victim's accesses interleave
	// between hammer iterations and steal bank-arbitration slots per
	// iteration, not per quantum. The victim's activity is two-tiered
	// randomness: each tenant draws an intensity level (how
	// memory-hungry this victim process is, 0..victimLevels-1) that
	// sets its duty cycle — each quantum it either issues a burst of
	// victimBurst loads (probability level/(victimLevels-1)) or idles
	// for victimIdleStep cycles. A busy victim dilutes the attacker's
	// per-window pressure below the threshold; a quiet one leaves it at
	// full rate. The level draw is what spreads dilution across the
	// population instead of saturating it.
	attackerQuantum = 1
	victimLevels    = 5
	victimBurst     = 2
	// victimIdleStep advances an idle victim's clock in lieu of loads,
	// so a quiet tenant cannot livelock the lowest-clock-first
	// interleaver.
	victimIdleStep = timing.Cycles(600)
)

// tenantConfig is the micro machine one cohort unit is built from.
// Caches and TLBs are scaled with the memory so the attack's working
// set behaves as on the full preset: the ring overflows every level.
func tenantConfig(model *flip.Model) machine.Config {
	return machine.Config{
		MemBytes: tenantMemBytes,
		FreqHz:   tenantFreq,
		Lat:      timing.DefaultLatencies(),
		DRAM: dram.Config{
			Channels:        1,
			RanksPerChannel: 1,
			BanksPerRank:    4,
			Rows:            1024,
			RowBytes:        8192,
			RefreshWindow:   tenantWindow,
			HammerThreshold: tenantThreshold,
		},
		L1:        cache.Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64},
		L2:        cache.Config{SizeBytes: 2 << 10, Ways: 4, LineBytes: 64},
		LLC:       cache.Config{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64},
		TLB:       tlb.Config{L1Entries: 8, L1Ways: 4, L2Entries: 16, L2Ways: 4},
		FlipModel: model,
	}
}

// regionBase returns the base virtual address of 2 MiB region r.
func regionBase(r int) phys.Addr {
	return phys.Addr(uint64(r) * pagetable.Span(2))
}

// geometry is the tenant-invariant shape of the attack, probed once
// per pool from a scratch tenant: because every tenant performs the
// same setup in the same order, the table pools allocate identically
// and the pair search lands on the same rows for all of them. Only the
// flip-model seed and the victim's jitter differ between tenants.
type geometry struct {
	// ring is the attacker's hammer ring: loads alternating between
	// the two pair regions, each walk's leaf-PTE fetch activating one
	// of the two aggressor rows.
	ring []phys.Addr
	// locA/locB are the aggressor rows (the pair PTs' bank-rows).
	locA, locB dram.Location
	// sandwiched reports whether a victim table bank-row lies between
	// the aggressor rows; victimRow is its row index when it does.
	// Blocked striping yields no sandwich — the defensive case.
	sandwiched bool
	victimRow  uint64
	// spray is every page of the victim's premapped regions, the
	// surface scanned for breached translations after the slice.
	spray []phys.Addr
	// stream is the victim's TLB-resident load set.
	stream []phys.Addr
}

// setupTenant performs the deterministic per-tenant construction on a
// freshly reset unit: the attacker touches its regions in a fixed
// order (fixing the table pool's allocation order, and with it the
// pair geometry), the victim premaps its spray and warms its stream
// pages into the TLB. Must be followed by alignTenant before the
// measured slice.
func setupTenant(mm *machine.MultiMachine) {
	attacker, victim := mm.Core(0), mm.Core(1)
	for r := 0; r < attackerRegions; r++ {
		attacker.Load(regionBase(r))
	}
	victim.Premap(regionBase(victimSprayRegion), uint64(victimSprayRegions)*pagetable.Span(2))
	for k := 0; k < victimStreamPages; k++ {
		victim.Load(streamPage(k))
	}
}

// streamPage returns the k-th page of the victim's stream set.
func streamPage(k int) phys.Addr {
	return regionBase(victimStreamRegion) + phys.Addr(uint64(k)*victimStreamPageStride*phys.FrameSize)
}

// alignTenant advances both cores to the later of the two clocks and
// opens a fresh refresh window there, so construction skew never leaks
// into the measured slice.
func alignTenant(mm *machine.MultiMachine) {
	a, v := mm.Core(0).Clock(), mm.Core(1).Clock()
	max := a.Now()
	if v.Now() > max {
		max = v.Now()
	}
	a.Advance(max - a.Now())
	v.Advance(max - v.Now())
	mm.Core(0).ResetRefreshWindow()
}

// sameBank reports whether two locations name the same physical bank.
func sameBank(a, b dram.Location) bool {
	return a.Channel == b.Channel && a.Rank == b.Rank && a.Bank == b.Bank
}

// probeGeometry derives the tenant geometry from a set-up scratch
// tenant. It searches the attacker's leaf-PT bank-rows for the
// closest same-bank pair, preferring one exactly two rows apart with a
// victim table bank-row sandwiched between (the attack surface
// interleaved striping creates); blocked striping falls back to an
// adjacent own-row pair, which pressures no victim row at all.
func probeGeometry(mm *machine.MultiMachine) (geometry, error) {
	var g geometry
	geom := mm.DRAM().Config()
	attacker := mm.Core(0)

	type ptCand struct {
		region int
		loc    dram.Location
	}
	cands := make([]ptCand, 0, attackerRegions)
	for r := 0; r < attackerRegions; r++ {
		pte, ok := attacker.PTEAddr(regionBase(r), 1)
		if !ok {
			return g, fmt.Errorf("cohort: attacker region %d has no leaf PTE after setup", r)
		}
		cands = append(cands, ptCand{region: r, loc: geom.Map(pte)})
	}
	victimHolds := func(bank dram.Location, row uint64) bool {
		for _, f := range mm.Tables(1).Frames() {
			l := geom.Map(f.Addr())
			if sameBank(l, bank) && l.Row == row {
				return true
			}
		}
		return false
	}

	// Best pair: sandwiching a victim row beats everything; then the
	// smallest same-bank row distance; ties resolve to the first
	// candidate pair in region order, keeping the probe deterministic.
	best := -1
	var bestA, bestB ptCand
	bestSandwich := false
	for i := range cands {
		for j := i + 1; j < len(cands); j++ {
			lo, hi := cands[i], cands[j]
			if lo.loc.Row > hi.loc.Row {
				lo, hi = hi, lo
			}
			if !sameBank(lo.loc, hi.loc) || lo.loc.Row == hi.loc.Row {
				continue
			}
			dist := int(hi.loc.Row - lo.loc.Row)
			sandwich := dist == 2 && victimHolds(lo.loc, lo.loc.Row+1)
			better := best < 0 ||
				(sandwich && !bestSandwich) ||
				(sandwich == bestSandwich && dist < best)
			if better {
				best, bestA, bestB, bestSandwich = dist, lo, hi, sandwich
			}
		}
	}
	if best < 0 {
		return g, fmt.Errorf("cohort: no same-bank attacker PT pair among %d regions", attackerRegions)
	}
	g.locA, g.locB = bestA.loc, bestB.loc
	g.sandwiched = bestSandwich
	if bestSandwich {
		g.victimRow = bestA.loc.Row + 1
	}

	// The hammer ring: pages of the two pair regions interleaved, PTE
	// lines 64 bytes apart so they cycle the LLC's sets.
	g.ring = make([]phys.Addr, 0, 2*ringPagesPerRegion)
	for i := 0; i < ringPagesPerRegion; i++ {
		off := phys.Addr(uint64(i) * ringPageStride * phys.FrameSize)
		g.ring = append(g.ring, regionBase(bestA.region)+off, regionBase(bestB.region)+off)
	}

	pages := int(victimSprayRegions * pagetable.Span(2) / phys.FrameSize)
	g.spray = make([]phys.Addr, 0, pages)
	for p := 0; p < pages; p++ {
		g.spray = append(g.spray, regionBase(victimSprayRegion)+phys.Addr(uint64(p)*phys.FrameSize))
	}
	g.stream = make([]phys.Addr, 0, victimStreamPages*linesPerPage)
	for k := 0; k < victimStreamPages; k++ {
		for l := 0; l < linesPerPage; l++ {
			g.stream = append(g.stream, streamPage(k)+phys.Addr(uint64(l)*64))
		}
	}
	return g, nil
}

const linesPerPage = int(phys.FrameSize / 64)

// attackerBody returns the attacker's stream body for one slice: ring
// loads in quanta of attackerQuantum, sampling the sandwiched victim
// row's live pressure after each quantum.
func (u *unit) attackerBody(budget timing.Cycles) func(yield func()) {
	return func(yield func()) {
		m := u.attacker
		d := m.DRAM()
		start := m.Clock().Now()
		i := 0
		for m.Clock().Now()-start < budget {
			for k := 0; k < attackerQuantum; k++ {
				m.Load(u.geo.ring[i])
				if i++; i == len(u.geo.ring) {
					i = 0
				}
			}
			u.out.Iterations += attackerQuantum
			if u.geo.sandwiched {
				if p := d.Activations(u.geo.locA) + d.Activations(u.geo.locB); p > u.out.PeakPressure {
					u.out.PeakPressure = p
				}
			}
			yield()
		}
	}
}

// victimBody returns the victim's stream body: duty-cycled bursts of
// TLB-hit loads over its resident page set — DRAM traffic that closes
// the attacker's open rows and steals bank-arbitration slots without
// ever walking the victim's (flippable) tables. The tenant's intensity
// level sets the burst probability per quantum, so a level-0 victim is
// genuinely idle and a level-(victimLevels-1) one streams constantly.
func (u *unit) victimBody(budget timing.Cycles) func(yield func()) {
	return func(yield func()) {
		m := u.victim
		start := m.Clock().Now()
		cursor := 0
		for m.Clock().Now()-start < budget {
			if u.nextJitter()%uint64(victimLevels-1) < u.level {
				for k := 0; k < victimBurst; k++ {
					m.Load(u.geo.stream[cursor])
					if cursor++; cursor == len(u.geo.stream) {
						cursor = 0
					}
				}
			} else {
				m.Clock().Advance(victimIdleStep)
			}
			yield()
		}
	}
}
