package cohort

import (
	"testing"

	"pthammer/internal/flip"
	"pthammer/internal/machine"
)

// TestPoolValidation pins the constructor and spec guards.
func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(1, machine.LayoutInterleaved); err == nil {
		t.Error("NewPool(1) accepted a pool too small for one attacker/victim unit")
	}
	p, err := NewPool(2, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	if p.Units() != 1 || p.FrontEnds() != 2 {
		t.Errorf("2-front-end pool has %d units / %d front-ends, want 1 / 2", p.Units(), p.FrontEnds())
	}
	if p.Layout() != machine.LayoutInterleaved {
		t.Errorf("pool layout = %v, want interleaved", p.Layout())
	}
	for _, spec := range []Spec{
		{Profile: flip.ClassA(), Tenants: 0, Windows: 1},
		{Profile: flip.ClassA(), Tenants: 1, Windows: 0},
		{Profile: flip.Profile{Name: "bogus"}, Tenants: 1, Windows: 1},
	} {
		if _, err := p.Run(spec); err == nil {
			t.Errorf("spec %+v validated", spec)
		}
	}
	if _, err := NewPool(7, machine.LayoutBlocked); err != nil {
		t.Errorf("odd front-end count rejected: %v", err)
	}
}

// TestPoolSizeInvariance is the scheduling half of the determinism
// contract: tenants are observationally independent, so regrouping the
// same population into narrower or wider slices — a 2-front-end pool
// against an 8-front-end one, with a tenant count that divides neither
// evenly — must reproduce every tenant's outcome bit for bit.
func TestPoolSizeInvariance(t *testing.T) {
	spec := Spec{Profile: flip.ClassA(), Tenants: 23, Seed: 7, Windows: 2}
	narrow, err := NewPool(2, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewPool(8, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	popN, outsN, err := narrow.RunDetailed(spec)
	if err != nil {
		t.Fatal(err)
	}
	popW, outsW, err := wide.RunDetailed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(outsN) != spec.Tenants || len(outsW) != spec.Tenants {
		t.Fatalf("outcome counts %d / %d, want %d", len(outsN), len(outsW), spec.Tenants)
	}
	for i := range outsN {
		if outsN[i] != outsW[i] {
			t.Errorf("tenant %d diverges across pool sizes:\n  narrow: %+v\n  wide:   %+v", i, outsN[i], outsW[i])
		}
	}
	if popN != popW {
		t.Errorf("merged populations diverge:\n  narrow: %+v\n  wide:   %+v", popN, popW)
	}
	// Guard against a vacuous pass where nothing ever happened.
	if popN.MeanIterations == 0 || popN.MaxPeakPressure == 0 {
		t.Errorf("population is vacuous: %+v", popN)
	}
}

// TestRecycleDeterminism is the lifecycle half: the same pool run twice
// back to back — every unit recycled through dozens of tenants in
// between — must reproduce the population exactly. Any cross-tenant
// leak through a machine, flip model, or jitter stream shows up here.
func TestRecycleDeterminism(t *testing.T) {
	p, err := NewPool(4, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Profile: flip.ClassB(), Tenants: 30, Seed: 3, Windows: 2}
	_, first, err := p.RunDetailed(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := p.RunDetailed(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("tenant %d diverges across pool reuse:\n  first:  %+v\n  second: %+v", i, first[i], second[i])
		}
	}
}

// TestTenantSeedReplay pins per-tenant replayability: a tenant's seed
// depends only on the population seed and its index, so running a
// shorter prefix of the population reproduces the prefix outcomes.
func TestTenantSeedReplay(t *testing.T) {
	p, err := NewPool(4, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	full := Spec{Profile: flip.ClassA(), Tenants: 12, Seed: 11, Windows: 2}
	_, outs, err := p.RunDetailed(full)
	if err != nil {
		t.Fatal(err)
	}
	prefix := full
	prefix.Tenants = 5
	_, pre, err := p.RunDetailed(prefix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pre {
		if pre[i] != outs[i] {
			t.Errorf("tenant %d differs between full run and prefix replay:\n  full:   %+v\n  prefix: %+v", i, outs[i], pre[i])
		}
	}
	if tenantSeed(11, 0) == tenantSeed(11, 1) || tenantSeed(11, 0) == tenantSeed(12, 0) {
		t.Error("tenantSeed does not separate tenants or populations")
	}
}

// TestLayoutContrast pins the population-level story the mt-population
// tables tell: interleaved striping sandwiches a victim table row and
// yields a non-degenerate population — some tenants breach, some
// dilute, neither all nor none — while blocked striping exposes no
// victim row and is fully defensive.
func TestLayoutContrast(t *testing.T) {
	spec := Spec{Profile: flip.ClassA(), Tenants: 200, Seed: 1, Windows: 3}

	inter, err := NewPool(8, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	if !inter.Sandwiched() {
		t.Fatal("interleaved pool sandwiches no victim row")
	}
	pi, err := inter.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pi.Breached == 0 || pi.TableFlips == 0 {
		t.Errorf("interleaved population never breached: %+v", pi)
	}
	if pi.Diluted == 0 || pi.Diluted == pi.Tenants {
		t.Errorf("interleaved dilution is degenerate (%d of %d): co-tenant traffic should split the population", pi.Diluted, pi.Tenants)
	}
	if pi.MaxPeakPressure < uint64(tenantThreshold) {
		t.Errorf("no tenant reached the hammer threshold: max pressure %d < %d", pi.MaxPeakPressure, tenantThreshold)
	}

	blocked, err := NewPool(8, machine.LayoutBlocked)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Sandwiched() {
		t.Fatal("blocked pool claims a sandwiched victim row")
	}
	pb, err := blocked.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Breached != 0 || pb.TableFlips != 0 {
		t.Errorf("blocked striping leaked a breach: %+v", pb)
	}
	if pb.Diluted != pb.Tenants {
		t.Errorf("blocked population not fully diluted: %d of %d", pb.Diluted, pb.Tenants)
	}
	if pb.MeanIterations == 0 {
		t.Errorf("blocked attacker never ran: %+v", pb)
	}
}

// TestClassMonotonicity pins that weaker module classes flip and breach
// less over the identical tenant schedule: the class is the only thing
// that differs between the runs — seeds, geometry, and interference are
// identical — so flips must be ordered A ≥ B ≥ C, strictly at the ends.
func TestClassMonotonicity(t *testing.T) {
	p, err := NewPool(8, machine.LayoutInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	flips := map[string]int{}
	breaches := map[string]int{}
	for _, class := range []flip.Profile{flip.ClassA(), flip.ClassB(), flip.ClassC()} {
		pop, err := p.Run(Spec{Profile: class, Tenants: 200, Seed: 1, Windows: 3})
		if err != nil {
			t.Fatal(err)
		}
		flips[class.Name] = pop.TableFlips
		breaches[class.Name] = pop.Breached
	}
	if !(flips["A"] >= flips["B"] && flips["B"] >= flips["C"] && flips["A"] > flips["C"]) {
		t.Errorf("table flips not monotone across classes: %v", flips)
	}
	if breaches["A"] < breaches["C"] || breaches["A"] == 0 {
		t.Errorf("breaches not monotone across classes: %v", breaches)
	}
}

// TestPerMillionRates pins the integer rate arithmetic the population
// tables print.
func TestPerMillionRates(t *testing.T) {
	p := Population{Tenants: 2000, Breached: 3, Diluted: 900, TableFlips: 17}
	if got := p.BreachedPerM(); got != 1500 {
		t.Errorf("BreachedPerM = %d, want 1500", got)
	}
	if got := p.DilutedPerM(); got != 450_000 {
		t.Errorf("DilutedPerM = %d, want 450000", got)
	}
	if got := p.TableFlipsPerM(); got != 8500 {
		t.Errorf("TableFlipsPerM = %d, want 8500", got)
	}
	if got := (Population{}).BreachedPerM(); got != 0 {
		t.Errorf("empty population rate = %d, want 0", got)
	}
}
