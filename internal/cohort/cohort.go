// Package cohort schedules large tenant populations over a bounded
// pool of per-core front-ends. It is the consumer the machine stack's
// Reset/Recycle contract exists for: a Pool constructs its machines
// once, then recycles them for every tenant — machine.MultiMachine
// Reset between tenants, flip.Model ResetTo re-stamping the module
// class and per-tenant seed — so simulating 10⁴+ tenants allocates
// like simulating a handful.
//
// Determinism is the package's load-bearing property, and it is
// layered:
//
//   - within a slice, every active unit's two cores run under one
//     internal/core interleaver, so the schedule is bit-identical for
//     any GOMAXPROCS value;
//   - across pool sizes, tenants are observationally independent —
//     each runs on a freshly recycled unit whose post-Reset state is
//     bit-identical to construction (the reset-equivalence difftest in
//     internal/machine) and units share no simulated state — so
//     regrouping tenants into wider or narrower slices cannot change
//     any tenant's outcome;
//   - per-tenant randomness (the flip model's sampling, the victim's
//     load jitter) derives from a seed mixed from the population seed
//     and the tenant index alone.
//
// CI pins all three: population tables must be byte-identical across
// GOMAXPROCS {1,2,4} and across two pool sizes.
package cohort

import (
	"fmt"

	"pthammer/internal/core"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Spec describes one population run: how many tenants of one module
// class to push through the pool, and the per-tenant slice budget.
type Spec struct {
	// Profile is the flip-model module class every tenant's DRAM is
	// drawn from (flip.ClassA/B/C).
	Profile flip.Profile
	// Tenants is the population size.
	Tenants int
	// Seed is the population seed; per-tenant seeds are mixed from it
	// and the tenant index, so any single tenant can be replayed.
	Seed int64
	// Windows is each tenant's hammer budget in refresh windows.
	Windows int
}

func (s Spec) validate() error {
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	if s.Tenants < 1 {
		return fmt.Errorf("cohort: population needs at least one tenant (got %d)", s.Tenants)
	}
	if s.Windows < 1 {
		return fmt.Errorf("cohort: tenants need at least one refresh window (got %d)", s.Windows)
	}
	return nil
}

// Outcome is one tenant's result.
type Outcome struct {
	// Tenant is the population index; Seed the per-tenant seed its
	// randomness derived from.
	Tenant int
	Seed   int64
	// PeakPressure is the highest per-window activation pressure the
	// sandwiched victim table row saw (0 when the layout sandwiches no
	// victim row); Iterations counts the attacker's completed loads.
	PeakPressure uint64
	Iterations   uint64
	// TableFlips counts disturbance flips that landed in the victim
	// tenant's table frames.
	TableFlips int
	// Breached reports that at least one premapped victim page now
	// resolves to a different in-memory frame — the isolation breach.
	Breached bool
	// Diluted reports the tenant never pressured a victim table row to
	// the hammer threshold, whether because co-tenant traffic slowed
	// the attacker down or because the layout exposes no victim row.
	Diluted bool
}

// Population is the merged statistics of one Spec's run.
type Population struct {
	Class   string
	Layout  machine.TableLayout
	Tenants int
	// Breached/Diluted count tenants; TableFlips sums flips in victim
	// table frames across the population.
	Breached   int
	Diluted    int
	TableFlips int
	// MeanPeakPressure and MaxPeakPressure summarise the per-tenant
	// peak pressures (integer mean, so reports stay byte-stable).
	MeanPeakPressure uint64
	MaxPeakPressure  uint64
	// MeanIterations is the integer mean of attacker iterations.
	MeanIterations uint64
}

// perMillion scales a tenant count to a rate per 10⁶ tenants in
// integer arithmetic.
func (p Population) perMillion(n int) uint64 {
	if p.Tenants == 0 {
		return 0
	}
	return uint64(n) * 1_000_000 / uint64(p.Tenants)
}

// BreachedPerM returns the breach rate per 10⁶ tenants.
func (p Population) BreachedPerM() uint64 { return p.perMillion(p.Breached) }

// DilutedPerM returns the dilution rate per 10⁶ tenants.
func (p Population) DilutedPerM() uint64 { return p.perMillion(p.Diluted) }

// TableFlipsPerM returns victim-table flips per 10⁶ tenants.
func (p Population) TableFlipsPerM() uint64 { return p.perMillion(p.TableFlips) }

// unit is one slot of the pool: a two-core machine (core 0 the
// attacker tenant, core 1 the victim tenant) plus its once-constructed
// flip model, recycled for every tenant scheduled onto it.
type unit struct {
	mm       *machine.MultiMachine
	model    *flip.Model
	attacker *machine.Machine
	victim   *machine.Machine
	geo      geometry

	// Per-tenant slice state.
	out   Outcome
	jit   uint64
	level uint64
}

// Pool is a bounded set of units tenants are time-sliced over. All
// units are identical, so a population's outcomes are a pure function
// of the Spec and the pool's layout — never of its size.
type Pool struct {
	layout machine.TableLayout
	units  []*unit
}

// NewPool builds a pool of frontEnds/2 attacker/victim units (each
// unit consumes two core front-ends) with the given table striping.
// frontEnds must be at least 2; odd counts round down.
func NewPool(frontEnds int, layout machine.TableLayout) (*Pool, error) {
	if frontEnds < 2 {
		return nil, fmt.Errorf("cohort: a pool needs at least 2 front-ends (got %d)", frontEnds)
	}
	p := &Pool{layout: layout}
	for k := 0; k < frontEnds/2; k++ {
		model, err := flip.NewModel(flip.ClassA(), 0)
		if err != nil {
			return nil, err
		}
		mm, err := machine.NewMulti(machine.MultiConfig{
			Config:  tenantConfig(model),
			Cores:   2,
			Tenants: []int{0, 1},
			Layout:  layout,
		})
		if err != nil {
			return nil, err
		}
		p.units = append(p.units, &unit{
			mm:       mm,
			model:    model,
			attacker: mm.Core(0),
			victim:   mm.Core(1),
		})
	}
	// Probe the tenant geometry once on a scratch tenant: every tenant
	// of every unit performs the identical setup, so the pair rows and
	// address sets are population invariants.
	u := p.units[0]
	setupTenant(u.mm)
	geo, err := probeGeometry(u.mm)
	if err != nil {
		return nil, err
	}
	u.mm.Reset()
	for _, u := range p.units {
		u.geo = geo
	}
	return p, nil
}

// Units returns how many tenant slots a slice runs concurrently.
func (p *Pool) Units() int { return len(p.units) }

// FrontEnds returns how many core front-ends the pool drives.
func (p *Pool) FrontEnds() int { return 2 * len(p.units) }

// Layout returns the table striping the pool's machines were built
// with.
func (p *Pool) Layout() machine.TableLayout { return p.layout }

// Sandwiched reports whether the pool's layout exposes a victim table
// row between the attacker's aggressor rows.
func (p *Pool) Sandwiched() bool { return p.units[0].geo.sandwiched }

// tenantSeed mixes the population seed and tenant index through
// splitmix64, so per-tenant randomness is reproducible in isolation.
func tenantSeed(pop int64, tenant int) int64 {
	z := uint64(pop) + (uint64(tenant)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// nextJitter advances the unit's per-tenant jitter stream (splitmix64
// over a counter seeded from the tenant seed).
func (u *unit) nextJitter() uint64 {
	u.jit += 0x9E3779B97F4A7C15
	z := u.jit
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// prepare recycles the unit for one tenant: machine Reset, flip model
// re-stamped to the population's class and the tenant's seed, the
// deterministic setup, clock alignment, and a fresh refresh window.
func (u *unit) prepare(spec Spec, tenant int) error {
	seed := tenantSeed(spec.Seed, tenant)
	u.mm.Reset()
	if err := u.model.ResetTo(spec.Profile, seed); err != nil {
		return err
	}
	setupTenant(u.mm)
	alignTenant(u.mm)
	u.out = Outcome{Tenant: tenant, Seed: seed}
	u.jit = uint64(seed)
	// The tenant's victim-intensity level is the jitter stream's first
	// draw: how memory-hungry this tenant's co-resident victim is.
	u.level = u.nextJitter() % victimLevels
	return nil
}

// collect finishes one tenant's slice: count the flips that landed in
// victim table frames, scan the sprayed surface for breached
// translations (only when a table flip makes one possible), and judge
// dilution against the hammer threshold.
func (u *unit) collect() Outcome {
	victimFrames := u.mm.Tables(1).Frames()
	owns := func(f phys.Frame) bool {
		for _, vf := range victimFrames {
			if vf == f {
				return true
			}
		}
		return false
	}
	for _, fl := range u.model.Flips() {
		if owns(phys.FrameOf(fl.Addr)) {
			u.out.TableFlips++
		}
	}
	if u.out.TableFlips > 0 {
		tables := u.mm.Tables(1)
		for _, va := range u.geo.spray {
			if f, ok := tables.Resolve(va); ok && f != phys.FrameOf(va) {
				u.out.Breached = true
				break
			}
		}
	}
	u.out.Diluted = u.out.PeakPressure < u.mm.Config().DRAM.HammerThreshold
	return u.out
}

// RunDetailed pushes a population through the pool and returns both
// the merged statistics and every tenant's outcome, in tenant order.
// Tenants are scheduled in index order, len(units) per slice; each
// slice's active cores run under one deterministic interleaver.
func (p *Pool) RunDetailed(spec Spec) (Population, []Outcome, error) {
	if err := spec.validate(); err != nil {
		return Population{}, nil, err
	}
	budget := timing.Cycles(spec.Windows) * tenantWindow
	outs := make([]Outcome, 0, spec.Tenants)
	for base := 0; base < spec.Tenants; base += len(p.units) {
		active := min(len(p.units), spec.Tenants-base)
		streams := make([]core.Stream, 0, 2*active)
		for k := 0; k < active; k++ {
			u := p.units[k]
			if err := u.prepare(spec, base+k); err != nil {
				return Population{}, nil, err
			}
			streams = append(streams,
				core.Stream{Now: u.attacker.Clock().Now, Run: u.attackerBody(budget)},
				core.Stream{Now: u.victim.Clock().Now, Run: u.victimBody(budget)},
			)
		}
		core.Run(streams)
		for k := 0; k < active; k++ {
			outs = append(outs, p.units[k].collect())
		}
	}
	return merge(spec, p.layout, outs), outs, nil
}

// Run is RunDetailed without the per-tenant outcomes.
func (p *Pool) Run(spec Spec) (Population, error) {
	pop, _, err := p.RunDetailed(spec)
	return pop, err
}

// merge folds per-tenant outcomes into population statistics.
func merge(spec Spec, layout machine.TableLayout, outs []Outcome) Population {
	pop := Population{
		Class:   spec.Profile.Name,
		Layout:  layout,
		Tenants: len(outs),
	}
	var pressureSum, iterSum uint64
	for _, o := range outs {
		if o.Breached {
			pop.Breached++
		}
		if o.Diluted {
			pop.Diluted++
		}
		pop.TableFlips += o.TableFlips
		pressureSum += o.PeakPressure
		iterSum += o.Iterations
		if o.PeakPressure > pop.MaxPeakPressure {
			pop.MaxPeakPressure = o.PeakPressure
		}
	}
	if n := uint64(len(outs)); n > 0 {
		pop.MeanPeakPressure = pressureSum / n
		pop.MeanIterations = iterSum / n
	}
	return pop
}
