// Package evset implements the paper's Algorithm 1: constructing
// minimal eviction sets from user space, verified purely through
// timing and performance-counter side channels. An unprivileged
// attacker can execute neither invlpg (to drop a TLB entry) nor
// clflush on a kernel line (to drop the cache line holding a PTE), so
// PThammer substitutes measured access streams for both:
//
//   - a TLB eviction set — virtual pages that, walked in order, push
//     the target page's translation out of the dTLB and the sTLB, so
//     the next load of the target must take a hardware page walk; and
//   - an LLC eviction set — addresses whose cache lines conflict with
//     the line holding the target's leaf PTE in the inclusive LLC, so
//     the walk's implicit PTE fetch must go all the way to DRAM.
//
// Construction follows Algorithm 1's shape: over-provision a candidate
// pool of conflicting addresses, confirm the pool evicts the target
// (dtlb_load_misses.miss_causes_a_walk / page_walker.* PMC deltas plus
// load-latency thresholding against a calibrated boundary), then
// minimize by group reduction — repeatedly discard one of
// associativity+1 chunks whose removal keeps the set evicting — and
// finish with an element-wise prune to a fixpoint, so removing any
// single member stops the set from evicting the target.
//
// Everything here issues only demand loads (machine.Prime) and timed
// probes (machine.Probe); the machine's privileged-operation counters
// stay untouched, which the end-to-end tests assert.
package evset

import (
	"fmt"

	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Options tunes construction. The zero value selects the defaults.
type Options struct {
	// Trials is how many times each eviction verdict is re-measured; the
	// verdict is the majority outcome, which rides out latency-noise
	// spikes on noisy machines (the PMC half of the verdict is exact).
	// Default 3.
	Trials int
	// PoolScale over-provisions the candidate pool as
	// PoolScale × associativity + 2 addresses, giving group reduction
	// room to work with. Default 3.
	PoolScale int
}

func (o Options) withDefaults() Options {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.PoolScale <= 0 {
		o.PoolScale = 3
	}
	return o
}

// Calibration records the measured latency boundary an eviction verdict
// thresholds against. Algorithm 1 separates two latency populations —
// target loads with the attacked state still cached versus evicted —
// and places the decision threshold between them. Both anchors are the
// minimum observed in their population, so a noise spike landing on a
// calibration sample widens neither anchor: spikes only ever add
// cycles, and the PMC half of each verdict is exact regardless.
type Calibration struct {
	// Lo is the smallest latency observed while the attacked state was
	// still cached (translation in the TLB; leaf PTE line in the cache
	// hierarchy).
	Lo timing.Cycles
	// Hi is the smallest latency observed with the state evicted (full
	// walk; leaf PTE fetched from DRAM), PMC-confirmed.
	Hi timing.Cycles
	// Threshold is the midpoint: a timed probe at or above it agrees
	// with the PMC signal that the eviction happened.
	Threshold timing.Cycles
}

// TLBSet is a minimized TLB eviction set for one target page: walking
// Pages evicts the target's translation from both TLB levels, forcing
// the next load of Target to take a hardware page walk.
type TLBSet struct {
	Target phys.Addr
	Pages  []phys.Addr
	Cal    Calibration

	trials int
}

// Evict walks the set — the unprivileged invlpg — returning the cycles
// charged. Allocation-free; this is the hammer loop's hot path.
//
//pthammer:noalloc
func (s *TLBSet) Evict(m *machine.Machine) timing.Cycles {
	return m.Prime(s.Pages)
}

// Evicts reports whether the given page stream evicts the target's
// translation, using the set's calibrated verdict — the measurement
// the reduction step queries. Exposed so tests can check minimality.
func (s *TLBSet) Evicts(m *machine.Machine, pages []phys.Addr) bool {
	return evictsTLB(m, s.Target, pages, s.Cal.Threshold, s.trials)
}

// LLCSet is a minimized LLC eviction set for the cache line holding a
// page's leaf PTE: walking Addrs evicts that line from the inclusive
// LLC (and, by back-invalidation, from L1 and L2), so the next walk of
// Target fetches its PTE from DRAM — the implicit hammer access.
type LLCSet struct {
	// Target is the page whose leaf PTE is attacked; PTE is the
	// physical address of that entry (the line the set conflicts with).
	Target phys.Addr
	PTE    phys.Addr
	Addrs  []phys.Addr
	Cal    Calibration

	// tlbPages force the probe load to walk; verdicts need a walk to
	// observe where the leaf PTE was served from.
	tlbPages []phys.Addr
	trials   int
}

// Evict walks the set — the unprivileged clflush of the PTE line —
// returning the cycles charged. Allocation-free.
//
//pthammer:noalloc
func (s *LLCSet) Evict(m *machine.Machine) timing.Cycles {
	return m.Prime(s.Addrs)
}

// Evicts reports whether the given address stream evicts the target's
// leaf-PTE line, using the set's calibrated verdict.
func (s *LLCSet) Evicts(m *machine.Machine, addrs []phys.Addr) bool {
	return evictsLLC(m, s.Target, s.tlbPages, addrs, s.Cal.Threshold, s.trials)
}

// userLimit returns the first address past the attacker-reachable
// region: the machine's page-table pool sits at the top of physical
// memory and candidates must never be drawn from it (those are kernel
// addresses — and loading them would disturb the very rows being
// hammered).
func userLimit(m *machine.Machine) phys.Addr {
	base, _ := m.PageTables().Region()
	return base.Addr()
}

// tlbCandidates generates the candidate pool for a TLB eviction set:
// pages whose virtual page numbers are congruent with the target's
// modulo both TLB levels' set counts (both powers of two, so one
// stride covers both), at the target's page offset, skipping the
// excluded pages, any page whose leaf PTE shares a cache line (eight
// entries, vpn>>3) with the target's or an excluded page's PTE — the
// attacker knows this from the same linear VA→PTE layout the paper
// exploits — and everything at or above the kernel region.
func tlbCandidates(m *machine.Machine, target phys.Addr, exclude map[phys.Frame]bool, pteBlocks map[uint64]bool, pool int) []phys.Addr {
	cfg := m.Config().TLB
	dSets := uint64(cfg.L1Entries / cfg.L1Ways)
	sSets := uint64(cfg.L2Entries / cfg.L2Ways)
	stride := dSets
	if sSets > stride {
		stride = sSets
	}
	tvpn := uint64(target) >> phys.FrameShift
	off := phys.Addr(phys.Offset(target))
	limit := userLimit(m)

	out := make([]phys.Addr, 0, pool)
	for vpn := tvpn % stride; len(out) < pool; vpn += stride {
		a := phys.Addr(vpn << phys.FrameShift)
		if a >= limit {
			break
		}
		if pteBlocks[vpn>>3] || exclude[phys.FrameOf(a)] {
			continue
		}
		out = append(out, a+off)
	}
	return out
}

// llcCandidates generates the candidate pool for the PTE-line LLC
// eviction set: user addresses mapping to the same LLC set (and line
// offset) as the PTE's line, skipping excluded pages, any page whose
// own leaf PTE shares a cache line with the target's or an excluded
// page's PTE, and the kernel region.
func llcCandidates(m *machine.Machine, pte phys.Addr, exclude map[phys.Frame]bool, pteBlocks map[uint64]bool, pool int) []phys.Addr {
	llc := m.Config().LLC
	stride := llc.Sets() * llc.LineBytes
	limit := userLimit(m)

	out := make([]phys.Addr, 0, pool)
	for a := phys.Addr(uint64(pte) % stride); len(out) < pool; a += phys.Addr(stride) {
		if a >= limit {
			break
		}
		vpn := uint64(a) >> phys.FrameShift
		if pteBlocks[vpn>>3] || exclude[phys.FrameOf(a)] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// evictsTLB is the TLB eviction verdict: re-install the target's
// translation, walk the candidate stream, then probe the target. The
// stream evicts when the probe walked (PMC ground truth) and — once a
// threshold is calibrated — the probe latency lands in the walked
// population. Majority over trials.
func evictsTLB(m *machine.Machine, target phys.Addr, pages []phys.Addr, thr timing.Cycles, trials int) bool {
	yes := 0
	for t := 0; t < trials; t++ {
		m.Load(target)
		m.Prime(pages)
		p := m.Probe(target)
		if p.Walked && p.Latency >= thr {
			yes++
		}
	}
	return 2*yes > trials
}

// evictsLLC is the PTE-line eviction verdict: force a walk so the PTE
// line is (re)cached, walk the candidate stream, evict the translation
// again, then probe. The stream evicts when the probe's walk fetched
// the leaf PTE from DRAM (page_walker.l1pte_memory_fetch) and the
// latency clears the calibrated threshold. Majority over trials.
func evictsLLC(m *machine.Machine, target phys.Addr, tlbPages, addrs []phys.Addr, thr timing.Cycles, trials int) bool {
	yes := 0
	for t := 0; t < trials; t++ {
		m.Prime(tlbPages)
		m.Load(target) // the walk refetches the PTE line into the caches
		m.Prime(addrs)
		m.Prime(tlbPages)
		p := m.Probe(target)
		if p.Walked && p.LeafFromDRAM && p.Latency >= thr {
			yes++
		}
	}
	return 2*yes > trials
}

// calibrate separates the cached and evicted latency populations over
// the given samplers, each run trials times. Each sampler reports
// whether its sample is valid (the PMCs agreed the state really was
// cached / evicted); the minimum valid latency anchors each side. An
// inverted boundary means the side channel cannot distinguish the two
// states on this machine, which is a construction failure, not a
// latent one.
func calibrate(trials int, cached, evicted func() (timing.Cycles, bool)) (Calibration, error) {
	min := func(sample func() (timing.Cycles, bool)) (timing.Cycles, bool) {
		var best timing.Cycles
		any := false
		for t := 0; t < trials; t++ {
			lat, ok := sample()
			if !ok {
				continue
			}
			if !any || lat < best {
				best = lat
			}
			any = true
		}
		return best, any
	}
	var cal Calibration
	var ok bool
	if cal.Lo, ok = min(cached); !ok {
		return cal, fmt.Errorf("evset: no valid cached-state calibration sample (target state never stayed resident)")
	}
	if cal.Hi, ok = min(evicted); !ok {
		return cal, fmt.Errorf("evset: candidate pool never evicted during calibration")
	}
	if cal.Lo >= cal.Hi {
		return cal, fmt.Errorf("evset: latency populations overlap (cached %d ≥ evicted %d)", cal.Lo, cal.Hi)
	}
	cal.Threshold = (cal.Lo + cal.Hi) / 2
	return cal, nil
}

// minimize is Algorithm 1's reduction: group reduction while the set
// is larger than the associativity (split into assoc+1 chunks and drop
// any chunk whose removal keeps the set evicting), then an
// element-wise prune to a fixpoint. The fixpoint is what the
// minimality property tests rely on: for every member, the set minus
// that member was measured not to evict.
func minimize(set []phys.Addr, assoc int, evicts func([]phys.Addr) bool) []phys.Addr {
	scratch := make([]phys.Addr, 0, len(set))
	without := func(lo, hi int) []phys.Addr {
		scratch = scratch[:0]
		scratch = append(scratch, set[:lo]...)
		return append(scratch, set[hi:]...)
	}
	for len(set) > assoc {
		chunks := assoc + 1
		size := (len(set) + chunks - 1) / chunks
		reduced := false
		for lo := 0; lo < len(set); lo += size {
			hi := lo + size
			if hi > len(set) {
				hi = len(set)
			}
			if evicts(without(lo, hi)) {
				set = append(set[:lo], set[hi:]...)
				reduced = true
				break
			}
		}
		if !reduced {
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(set); i++ {
			if evicts(without(i, i+1)) {
				set = append(set[:i], set[i+1:]...)
				changed = true
				i--
			}
		}
	}
	return set
}

// excludeSets turns the target and the caller's exclude list into the
// two sets candidate generation skips: the pages themselves, and the
// leaf-PTE-line blocks (vpn>>3) of every one of them. The second set
// is what keeps multi-target setups sound: a candidate sharing a PTE
// line with any excluded page would refetch that line on its own
// walks, silently undoing the eviction another set is maintaining for
// it.
func excludeSets(target phys.Addr, exclude []phys.Addr) (frames map[phys.Frame]bool, pteBlocks map[uint64]bool) {
	frames = make(map[phys.Frame]bool, len(exclude)+1)
	pteBlocks = make(map[uint64]bool, len(exclude)+1)
	for _, a := range append([]phys.Addr{target}, exclude...) {
		frames[phys.FrameOf(a)] = true
		pteBlocks[uint64(phys.FrameOf(a))>>3] = true
	}
	return frames, pteBlocks
}

// BuildTLB constructs a minimized TLB eviction set for the target page.
// Pages listed in exclude are never used as candidates (the hammer
// pair excludes both aggressors from each other's sets). The target is
// demand-mapped by construction; only loads and timed probes are
// issued — no privileged operations.
func BuildTLB(m *machine.Machine, target phys.Addr, exclude []phys.Addr, opt Options) (*TLBSet, error) {
	opt = opt.withDefaults()
	cfg := m.Config().TLB
	assoc := cfg.L1Ways
	if cfg.L2Ways > assoc {
		assoc = cfg.L2Ways
	}
	frames, pteBlocks := excludeSets(target, exclude)
	pool := tlbCandidates(m, target, frames, pteBlocks, opt.PoolScale*assoc+2)
	if len(pool) < assoc {
		return nil, fmt.Errorf("evset: only %d TLB candidates below the kernel region, need ≥ %d", len(pool), assoc)
	}

	m.Load(target) // map the target and warm its translation
	m.Prime(pool)  // demand-map every candidate before measuring

	// Calibrate: the cached population is a re-probed resident
	// translation; the evicted population is a probe after walking the
	// full pool, PMC-confirmed.
	cal, err := calibrate(opt.Trials,
		func() (timing.Cycles, bool) {
			m.Load(target)
			p := m.Probe(target)
			return p.Latency, !p.Walked
		},
		func() (timing.Cycles, bool) {
			m.Load(target)
			m.Prime(pool)
			p := m.Probe(target)
			return p.Latency, p.Walked
		})
	if err != nil {
		return nil, fmt.Errorf("evset: TLB set for %#x: %w", uint64(target), err)
	}

	evicts := func(pages []phys.Addr) bool {
		return evictsTLB(m, target, pages, cal.Threshold, opt.Trials)
	}
	if !evicts(pool) {
		return nil, fmt.Errorf("evset: TLB candidate pool (%d pages) does not evict %#x", len(pool), uint64(target))
	}
	return &TLBSet{
		Target: target,
		Pages:  minimize(pool, assoc, evicts),
		Cal:    cal,
		trials: opt.Trials,
	}, nil
}

// BuildLLCPTE constructs a minimized LLC eviction set for the cache
// line holding the target page's leaf PTE, using the already-built TLB
// set to force walks during verification. The candidate seed is the
// linear VA→PTE layout (the same structure the paper's attacker
// exploits); every verdict is measurement: PMC deltas plus latency
// thresholding, no clflush.
func BuildLLCPTE(m *machine.Machine, target phys.Addr, tlb *TLBSet, exclude []phys.Addr, opt Options) (*LLCSet, error) {
	opt = opt.withDefaults()
	if tlb == nil {
		return nil, fmt.Errorf("evset: LLC construction needs a TLB eviction set to force walks")
	}
	m.Load(target) // ensure the leaf PTE exists
	pte, ok := m.PTEAddr(target, 1)
	if !ok {
		return nil, fmt.Errorf("evset: no leaf PTE for %#x after load", uint64(target))
	}
	assoc := m.Config().LLC.Ways
	frames, pteBlocks := excludeSets(target, exclude)
	pool := llcCandidates(m, pte, frames, pteBlocks, opt.PoolScale*assoc+2)
	if len(pool) < assoc {
		return nil, fmt.Errorf("evset: only %d LLC candidates below the kernel region, need ≥ %d", len(pool), assoc)
	}
	m.Prime(pool) // demand-map every candidate before measuring

	// Calibrate: cached population = walk with the PTE line still in
	// the hierarchy; evicted population = walk after the full pool,
	// PMC-confirmed to have fetched the leaf from DRAM.
	cal, err := calibrate(opt.Trials,
		func() (timing.Cycles, bool) {
			m.Prime(tlb.Pages)
			m.Load(target) // walk caches the PTE line
			m.Prime(tlb.Pages)
			p := m.Probe(target)
			return p.Latency, p.Walked && !p.LeafFromDRAM
		},
		func() (timing.Cycles, bool) {
			m.Prime(tlb.Pages)
			m.Load(target)
			m.Prime(pool)
			m.Prime(tlb.Pages)
			p := m.Probe(target)
			return p.Latency, p.Walked && p.LeafFromDRAM
		})
	if err != nil {
		return nil, fmt.Errorf("evset: LLC set for PTE %#x: %w", uint64(pte), err)
	}

	evicts := func(addrs []phys.Addr) bool {
		return evictsLLC(m, target, tlb.Pages, addrs, cal.Threshold, opt.Trials)
	}
	if !evicts(pool) {
		return nil, fmt.Errorf("evset: LLC candidate pool (%d lines) does not evict PTE %#x", len(pool), uint64(pte))
	}
	return &LLCSet{
		Target:   target,
		PTE:      pte,
		Addrs:    minimize(pool, assoc, evicts),
		Cal:      cal,
		tlbPages: tlb.Pages,
		trials:   opt.Trials,
	}, nil
}
