package evset

import (
	"math/rand"
	"testing"

	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

// randomConfig draws a small but valid machine: power-of-two DRAM
// geometry (so the decode stays shift/mask), caches sized well under
// the SandyBridge preset so construction stays fast, and TLB shapes
// varied enough to exercise both the dTLB-bound and sTLB-bound cases.
func randomConfig(r *rand.Rand) machine.Config {
	rowBytes := uint64(4096 << r.Intn(2))
	channels := 1 << r.Intn(2)
	banks := 1 << r.Intn(3)
	rows := uint64(1024)
	d := dram.Config{
		Channels:        channels,
		RanksPerChannel: 1,
		BanksPerRank:    banks,
		Rows:            rows,
		RowBytes:        rowBytes,
		RefreshWindow:   0,
		HammerThreshold: 1 << 20, // victims are irrelevant here
	}
	return machine.Config{
		MemBytes: d.Capacity(),
		FreqHz:   3_000_000_000,
		Lat:      timing.DefaultLatencies(),
		DRAM:     d,
		L1:       cache.Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: 64},
		L2:       cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		LLC:      cache.Config{SizeBytes: uint64(64<<10) << r.Intn(2), Ways: 4 << r.Intn(2), LineBytes: 64},
		TLB: tlb.Config{
			L1Entries: 8 << r.Intn(2), L1Ways: 2,
			L2Entries: 64 << r.Intn(2), L2Ways: 4,
		},
	}
}

// TestMinimizedSetsLoseEvictionWithoutAnyElement is the Algorithm 1
// minimality property over seeded random machines: the built sets
// evict, and removing any single element stops them evicting — for
// both the TLB set and the leaf-PTE LLC set.
func TestMinimizedSetsLoseEvictionWithoutAnyElement(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// A target somewhere in the low quarter of memory, page 2+, at a
		// non-zero page offset so offset handling is exercised too.
		pages := cfg.MemBytes / phys.FrameSize
		target := phys.Addr((2 + r.Uint64()%(pages/4)) << phys.FrameShift)
		target += phys.Addr(uint64(r.Intn(64)) * 64)

		tlbSet, err := BuildTLB(m, target, nil, Options{})
		if err != nil {
			t.Fatalf("seed %d: BuildTLB: %v", seed, err)
		}
		if !tlbSet.Evicts(m, tlbSet.Pages) {
			t.Fatalf("seed %d: minimized TLB set does not evict", seed)
		}
		checkMinimal(t, seed, "TLB", tlbSet.Pages, func(sub []phys.Addr) bool {
			return tlbSet.Evicts(m, sub)
		})

		llcSet, err := BuildLLCPTE(m, target, tlbSet, nil, Options{})
		if err != nil {
			t.Fatalf("seed %d: BuildLLCPTE: %v", seed, err)
		}
		if !llcSet.Evicts(m, llcSet.Addrs) {
			t.Fatalf("seed %d: minimized LLC set does not evict", seed)
		}
		checkMinimal(t, seed, "LLC", llcSet.Addrs, func(sub []phys.Addr) bool {
			return llcSet.Evicts(m, sub)
		})
	}
}

// checkMinimal asserts that dropping any single element of the set
// breaks eviction.
func checkMinimal(t *testing.T, seed int64, kind string, set []phys.Addr, evicts func([]phys.Addr) bool) {
	t.Helper()
	sub := make([]phys.Addr, 0, len(set))
	for i := range set {
		sub = append(sub[:0], set[:i]...)
		sub = append(sub, set[i+1:]...)
		if evicts(sub) {
			t.Fatalf("seed %d: %s set of %d still evicts without element %d (%#x)",
				seed, kind, len(set), i, uint64(set[i]))
		}
	}
}
