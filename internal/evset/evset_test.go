package evset

import (
	"testing"

	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// newQuiet builds the deterministic SandyBridge preset.
func newQuiet(t *testing.T) *machine.Machine {
	t.Helper()
	return machine.MustNew(machine.SandyBridge())
}

// TestBuildTLBEvictsWithoutPrivilege: the constructed set forces the
// target's next load to walk, and the whole construction plus use never
// issues a privileged operation.
func TestBuildTLBEvictsWithoutPrivilege(t *testing.T) {
	m := newQuiet(t)
	target := phys.Addr(0x200040)
	f0, i0 := m.PrivilegedOps()

	set, err := BuildTLB(m, target, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Pages) == 0 {
		t.Fatal("empty eviction set")
	}
	maxWays := m.Config().TLB.L1Ways
	if w := m.Config().TLB.L2Ways; w > maxWays {
		maxWays = w
	}
	if len(set.Pages) < maxWays {
		t.Fatalf("set of %d pages cannot fill a %d-way TLB set", len(set.Pages), maxWays)
	}
	for _, p := range set.Pages {
		if phys.FrameOf(p) == phys.FrameOf(target) {
			t.Fatalf("target page %#x in its own eviction set", uint64(p))
		}
	}

	// Use it: a resident translation, then Evict, then a probe that
	// must walk and clear the calibrated threshold.
	m.Load(target)
	if p := m.Probe(target); p.Walked {
		t.Fatal("target not resident before eviction")
	}
	set.Evict(m)
	p := m.Probe(target)
	if !p.Walked {
		t.Fatal("probe after Evict did not walk")
	}
	if p.Latency < set.Cal.Threshold {
		t.Fatalf("walked probe latency %d below threshold %d", p.Latency, set.Cal.Threshold)
	}

	if f1, i1 := m.PrivilegedOps(); f1 != f0 || i1 != i0 {
		t.Fatalf("privileged ops used: flushes %d→%d invlpg %d→%d", f0, f1, i0, i1)
	}
}

// TestBuildLLCPTEEvictsLeafLine: after evicting translation and PTE
// line via the two sets, the target's walk fetches its leaf PTE from
// DRAM — the implicit access PThammer hammers with — flush-free.
func TestBuildLLCPTEEvictsLeafLine(t *testing.T) {
	m := newQuiet(t)
	target := phys.Addr(0x400000)
	f0, i0 := m.PrivilegedOps()

	tlb, err := BuildTLB(m, target, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	llc, err := BuildLLCPTE(m, target, tlb, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(llc.Addrs) == 0 {
		t.Fatal("empty LLC eviction set")
	}
	limit := userLimit(m)
	for _, a := range llc.Addrs {
		if a >= limit {
			t.Fatalf("LLC candidate %#x inside the kernel page-table region", uint64(a))
		}
	}
	if llc.PTE < limit {
		t.Fatalf("leaf PTE %#x not in the page-table region", uint64(llc.PTE))
	}

	// Warm walk with a cached PTE line, then evict the line and the
	// translation: the probe's leaf fetch must reach DRAM.
	tlb.Evict(m)
	m.Load(target)
	tlb.Evict(m)
	if p := m.Probe(target); !p.Walked || p.LeafFromDRAM {
		t.Fatalf("control probe = %+v, want walk with cached leaf", p)
	}
	tlb.Evict(m)
	m.Load(target)
	llc.Evict(m)
	tlb.Evict(m)
	p := m.Probe(target)
	if !p.Walked || !p.LeafFromDRAM {
		t.Fatalf("post-eviction probe = %+v, want walk with DRAM leaf fetch", p)
	}
	if p.Latency < llc.Cal.Threshold {
		t.Fatalf("DRAM-walk latency %d below threshold %d", p.Latency, llc.Cal.Threshold)
	}

	if f1, i1 := m.PrivilegedOps(); f1 != f0 || i1 != i0 {
		t.Fatalf("privileged ops used: flushes %d→%d invlpg %d→%d", f0, f1, i0, i1)
	}
}

// TestCalibrationSeparates pins the threshold layout both builders rely
// on: cached anchor strictly below the evicted anchor with the
// threshold in between.
func TestCalibrationSeparates(t *testing.T) {
	m := newQuiet(t)
	target := phys.Addr(0x600000)
	tlb, err := BuildTLB(m, target, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	llc, err := BuildLLCPTE(m, target, tlb, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, cal := range map[string]Calibration{"tlb": tlb.Cal, "llc": llc.Cal} {
		if !(cal.Lo < cal.Threshold && cal.Threshold <= cal.Hi) {
			t.Errorf("%s calibration %+v not ordered Lo < Threshold ≤ Hi", name, cal)
		}
	}
	// The LLC verdict measures a DRAM-serviced walk, which costs more
	// than the cached-leaf walk the TLB verdict thresholds.
	if llc.Cal.Hi <= tlb.Cal.Lo {
		t.Errorf("LLC evicted anchor %d not above TLB cached anchor %d", llc.Cal.Hi, tlb.Cal.Lo)
	}
}

// TestBuildTLBExcludesPages: excluded pages never appear in the set —
// the hammer pair keeps each aggressor out of the other's streams.
func TestBuildTLBExcludesPages(t *testing.T) {
	m := newQuiet(t)
	target := phys.Addr(0x200000)
	// Exclude the first few pages that would otherwise be candidates
	// (same sTLB set: stride of sTLB-set-count pages).
	sSets := uint64(m.Config().TLB.L2Entries / m.Config().TLB.L2Ways)
	excl := []phys.Addr{0, phys.Addr(sSets << phys.FrameShift)}
	set, err := BuildTLB(m, target, excl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range set.Pages {
		for _, e := range excl {
			if phys.FrameOf(p) == phys.FrameOf(e) {
				t.Fatalf("excluded page %#x in eviction set", uint64(e))
			}
		}
	}
}

// TestBuildLLCPTERequiresTLBSet: the LLC builder cannot verify
// evictions without a way to force walks.
func TestBuildLLCPTERequiresTLBSet(t *testing.T) {
	m := newQuiet(t)
	if _, err := BuildLLCPTE(m, 0x1000, nil, nil, Options{}); err == nil {
		t.Fatal("nil TLB set accepted")
	}
}

// TestMinimizeFixpoint drives minimize with a synthetic oracle: any
// superset of a hidden core evicts. The result must be exactly the
// core, regardless of where it hides in the pool.
func TestMinimizeFixpoint(t *testing.T) {
	pool := make([]phys.Addr, 24)
	for i := range pool {
		pool[i] = phys.Addr(i * 0x1000)
	}
	core := map[phys.Addr]bool{pool[1]: true, pool[7]: true, pool[13]: true, pool[22]: true}
	oracle := func(set []phys.Addr) bool {
		have := 0
		for _, a := range set {
			if core[a] {
				have++
			}
		}
		return have == len(core)
	}
	got := minimize(append([]phys.Addr(nil), pool...), 4, oracle)
	if len(got) != len(core) {
		t.Fatalf("minimized to %d elements, want %d: %v", len(got), len(core), got)
	}
	for _, a := range got {
		if !core[a] {
			t.Fatalf("non-core element %#x survived minimization", uint64(a))
		}
	}
}

// TestCandidatesAvoidExcludedPTELines is the multi-target regression
// guard: a candidate whose leaf PTE shares a cache line (vpn>>3 block,
// eight entries per 64-byte line) with ANY excluded page would refetch
// that page's PTE line on its own walks, silently undoing the eviction
// another set maintains for it. With SandyBridge's geometry, vpn 1
// (addr 0x1000) shares excluded page 0x0's PTE line and lies on
// 0x200000's LLC candidate stride — it must be skipped from both pool
// kinds.
func TestCandidatesAvoidExcludedPTELines(t *testing.T) {
	m := newQuiet(t)
	target := phys.Addr(0x200000)
	excl := []phys.Addr{0x0}
	m.Load(target)
	pte, ok := m.PTEAddr(target, 1)
	if !ok {
		t.Fatal("no leaf PTE for target")
	}
	frames, pteBlocks := excludeSets(target, excl)
	if !pteBlocks[0] || !pteBlocks[uint64(phys.FrameOf(target))>>3] {
		t.Fatalf("exclude blocks missing: %v", pteBlocks)
	}
	for kind, pool := range map[string][]phys.Addr{
		"tlb": tlbCandidates(m, target, frames, pteBlocks, 64),
		"llc": llcCandidates(m, pte, frames, pteBlocks, 64),
	} {
		if len(pool) == 0 {
			t.Fatalf("%s pool empty", kind)
		}
		for _, a := range pool {
			if block := uint64(phys.FrameOf(a)) >> 3; pteBlocks[block] {
				t.Fatalf("%s candidate %#x shares a PTE line with an excluded page", kind, uint64(a))
			}
		}
	}
}

// TestCalibrateRejectsOverlappingPopulations is the regression test
// for the threshold-inversion bug: on a noisy machine the evicted
// population's minimum can undercut the cached minimum (a noise spike
// landing on every cached calibration sample), which would silently
// invert the threshold. calibrate must refuse with a diagnostic error
// instead of handing back an unusable boundary.
func TestCalibrateRejectsOverlappingPopulations(t *testing.T) {
	sampler := func(lat timing.Cycles) func() (timing.Cycles, bool) {
		return func() (timing.Cycles, bool) { return lat, true }
	}
	// Inverted: the evicted minimum (90) undercuts the cached one (120).
	if _, err := calibrate(3, sampler(120), sampler(90)); err == nil {
		t.Fatal("inverted populations accepted")
	}
	// Exactly equal anchors are just as undecidable.
	if _, err := calibrate(3, sampler(100), sampler(100)); err == nil {
		t.Fatal("coincident populations accepted")
	}
	// Control: separated populations calibrate to the midpoint.
	cal, err := calibrate(3, sampler(100), sampler(300))
	if err != nil {
		t.Fatalf("separated populations rejected: %v", err)
	}
	if cal.Lo != 100 || cal.Hi != 300 || cal.Threshold != 200 {
		t.Fatalf("calibration = %+v, want Lo 100 Hi 300 Threshold 200", cal)
	}

	// Noisy-machine shape: the cached side sees occasional spikes above
	// the evicted side's floor; per-population minima must still anchor
	// below, so the boundary survives the noise.
	cachedSeq := []timing.Cycles{900, 80, 950}
	i := 0
	noisyCached := func() (timing.Cycles, bool) { lat := cachedSeq[i%len(cachedSeq)]; i++; return lat, true }
	cal, err = calibrate(3, noisyCached, sampler(400))
	if err != nil {
		t.Fatalf("noisy cached population rejected: %v", err)
	}
	if cal.Lo != 80 || cal.Hi != 400 {
		t.Fatalf("noisy calibration anchors = %+v, want minima 80/400", cal)
	}

	// Samplers that never produce a valid sample are construction
	// failures with their own diagnostics.
	never := func() (timing.Cycles, bool) { return 0, false }
	if _, err := calibrate(3, never, sampler(300)); err == nil {
		t.Fatal("calibrate accepted a cached population with no valid sample")
	}
	if _, err := calibrate(3, sampler(100), never); err == nil {
		t.Fatal("calibrate accepted an evicted population with no valid sample")
	}
}
