// Package tlb models the two-level data-TLB over 4 KiB pages: a small
// first-level dTLB backed by the larger shared sTLB. Entries map a
// virtual page number to the physical frame the page tables resolved
// it to. A full miss is forwarded to the walker (internal/ptwalk's
// hardware page walker, a mem.Translator) and the translation it
// returns is installed in both levels on the way back. The
// dTLB/sTLB/walk split is what Figure 5's three latency plateaus and
// the dtlb_load_misses.* counters measure.
package tlb

import (
	"fmt"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Config sizes the two TLB levels in 4 KiB-page entries.
type Config struct {
	L1Entries int
	L1Ways    int
	L2Entries int
	L2Ways    int
}

// Validate reports an error for degenerate or non-indexable geometry.
func (c Config) Validate() error {
	check := func(name string, entries, ways int) error {
		switch {
		case entries <= 0 || ways <= 0:
			return fmt.Errorf("tlb: %s entries/ways must be positive (got %d/%d)", name, entries, ways)
		case entries%ways != 0:
			return fmt.Errorf("tlb: %s entries %d not divisible by ways %d", name, entries, ways)
		}
		if sets := entries / ways; sets&(sets-1) != 0 {
			return fmt.Errorf("tlb: %s set count %d must be a power of two", name, sets)
		}
		return nil
	}
	if err := check("L1", c.L1Entries, c.L1Ways); err != nil {
		return err
	}
	if err := check("L2", c.L2Entries, c.L2Ways); err != nil {
		return err
	}
	if c.L1Entries >= c.L2Entries {
		return fmt.Errorf("tlb: sTLB (%d entries) must be larger than dTLB (%d)", c.L2Entries, c.L1Entries)
	}
	return nil
}

// newLevel builds one TLB level as a mem.SetAssoc tagged by virtual
// page number.
func newLevel(entries, ways int) *mem.SetAssoc {
	return mem.NewSetAssoc(entries/ways, ways)
}

// TLB is the dTLB + sTLB chain. It implements mem.Translator:
// Translate answers the translation side of an access, forwarding
// full misses to the walker.
type TLB struct {
	l1, l2   *mem.SetAssoc
	walker   mem.Translator
	clock    *timing.Clock
	counters *perf.Counters

	l1Hit, l2Hit timing.Cycles
}

// New builds the TLB chain in front of the given walker.
func New(cfg Config, walker mem.Translator, clock *timing.Clock, counters *perf.Counters, lat timing.LatencyTable) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	if walker == nil || clock == nil || counters == nil {
		return nil, fmt.Errorf("tlb: walker, clock and counters must be non-nil")
	}
	return &TLB{
		l1:       newLevel(cfg.L1Entries, cfg.L1Ways),
		l2:       newLevel(cfg.L2Entries, cfg.L2Ways),
		walker:   walker,
		clock:    clock,
		counters: counters,
		l1Hit:    lat.TLBL1Hit,
		l2Hit:    lat.TLBL2Hit,
	}, nil
}

// vpnOf returns the 4 KiB virtual page number of the access.
//
//pthammer:noalloc
func vpnOf(a phys.Addr) uint64 { return uint64(a) >> phys.FrameShift }

// Translate resolves the access's page to its physical frame. A dTLB
// hit charges TLBL1Hit; an sTLB hit charges TLBL2Hit, refills the
// dTLB, and counts dtlb_load_misses.stlb_hit; a full miss counts
// dtlb_load_misses.miss_causes_a_walk, forwards to the walker, and
// installs the frame the walk resolved in both levels. The hit paths
// are a single LookupV scan; the miss path's extra insert scan is
// noise next to the walk it just paid for.
//
//pthammer:noalloc
func (t *TLB) Translate(a mem.Access) (phys.Frame, mem.Result) {
	vpn := vpnOf(a.Addr)
	if v, hit := t.l1.LookupV(vpn); hit {
		t.clock.Advance(t.l1Hit)
		return phys.Frame(v), mem.Result{Latency: t.l1Hit, Hit: true, Source: mem.LevelTLB1}
	}
	if v, hit := t.l2.LookupV(vpn); hit {
		t.counters.Inc(perf.DTLBLoadMissesL1)
		t.clock.Advance(t.l2Hit)
		t.l1.InsertV(vpn, v)
		return phys.Frame(v), mem.Result{Latency: t.l2Hit, Hit: true, Source: mem.LevelTLB2}
	}
	t.counters.Inc(perf.DTLBLoadMissesWalk)
	frame, res := t.walker.Translate(a) //pthammer:alloc-ok interface dispatch to the wired page walker, itself noalloc
	t.l1.InsertV(vpn, uint64(frame))
	t.l2.InsertV(vpn, uint64(frame))
	return frame, mem.Result{Latency: res.Latency, Hit: false, Source: mem.LevelPageWalk}
}

// Reset empties both TLB levels, as a recycled machine's fresh address
// space requires (the Reset/Recycle contract): a stale translation
// surviving into the next cohort would resolve against the previous
// tenant's recycled page tables.
//
//pthammer:noalloc
func (t *TLB) Reset() {
	t.l1.Reset()
	t.l2.Reset()
}

// Invalidate drops the page's translation from both levels (the
// simulated invlpg), reporting whether any level held it.
//
//pthammer:noalloc
func (t *TLB) Invalidate(a phys.Addr) bool {
	vpn := vpnOf(a)
	in1 := t.l1.Invalidate(vpn)
	in2 := t.l2.Invalidate(vpn)
	return in1 || in2
}

// Contains reports which levels currently hold the page's translation.
func (t *TLB) Contains(a phys.Addr) (inL1, inL2 bool) {
	vpn := vpnOf(a)
	return t.l1.Contains(vpn), t.l2.Contains(vpn)
}
