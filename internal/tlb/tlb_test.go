package tlb

import (
	"testing"

	"pthammer/internal/mem"
	"pthammer/internal/perf"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// fakeWalker is a fixed-cost stand-in for the page walker. It
// "translates" a page to a frame derived from its vpn so tests can
// check the TLB caches and returns the walker's frame, not something
// it made up.
type fakeWalker struct {
	clock *timing.Clock
	cost  timing.Cycles
	walks int
}

// frameFor is the fake translation: an offset identity map, so frame
// != vpn and value plumbing bugs show up.
func frameFor(vpn uint64) phys.Frame { return phys.Frame(vpn + 1000) }

func (w *fakeWalker) Translate(a mem.Access) (phys.Frame, mem.Result) {
	w.walks++
	w.clock.Advance(w.cost)
	vpn := uint64(a.Addr) >> phys.FrameShift
	return frameFor(vpn), mem.Result{Latency: w.cost, Hit: false, Source: mem.LevelPageWalk}
}

// tinyConfig: dTLB 4 entries 2-way (2 sets), sTLB 16 entries 2-way
// (8 sets).
func tinyConfig() Config {
	return Config{L1Entries: 4, L1Ways: 2, L2Entries: 16, L2Ways: 2}
}

func newTestTLB(t *testing.T) (*TLB, *fakeWalker, *timing.Clock, *perf.Counters) {
	t.Helper()
	clock := timing.MustNewClock(1_000_000_000)
	counters := &perf.Counters{}
	w := &fakeWalker{clock: clock, cost: 50}
	tl, err := New(tinyConfig(), w, clock, counters, timing.DefaultLatencies())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tl, w, clock, counters
}

func pageAddr(vpn uint64) phys.Addr { return phys.Addr(vpn << phys.FrameShift) }

func TestConfigValidate(t *testing.T) {
	if err := tinyConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{L1Entries: 0, L1Ways: 2, L2Entries: 16, L2Ways: 2},
		{L1Entries: 4, L1Ways: 0, L2Entries: 16, L2Ways: 2},
		{L1Entries: 4, L1Ways: 3, L2Entries: 16, L2Ways: 2},  // not divisible
		{L1Entries: 12, L1Ways: 2, L2Entries: 16, L2Ways: 2}, // 6 sets
		{L1Entries: 16, L1Ways: 2, L2Entries: 16, L2Ways: 2}, // sTLB not larger
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestMissWalkThenHits(t *testing.T) {
	tl, w, clock, counters := newTestTLB(t)
	lat := timing.DefaultLatencies()
	a := pageAddr(5)

	// Cold: full miss, walk, install.
	frame, res := tl.Translate(mem.Access{Addr: a})
	if res.Hit || res.Source != mem.LevelPageWalk || res.Latency != 50 {
		t.Fatalf("cold translate = %+v", res)
	}
	if frame != frameFor(5) {
		t.Fatalf("cold frame = %d, want %d", frame, frameFor(5))
	}
	if w.walks != 1 || counters.Read(perf.DTLBLoadMissesWalk) != 1 {
		t.Fatal("walk not counted")
	}

	// Warm: dTLB hit, same page different offset, same frame.
	frame, res = tl.Translate(mem.Access{Addr: a + 123})
	if !res.Hit || res.Source != mem.LevelTLB1 || res.Latency != lat.TLBL1Hit {
		t.Fatalf("warm translate = %+v", res)
	}
	if frame != frameFor(5) {
		t.Fatalf("warm frame = %d, want %d", frame, frameFor(5))
	}
	if w.walks != 1 {
		t.Fatal("dTLB hit walked")
	}

	wantClock := timing.Cycles(50) + lat.TLBL1Hit
	if clock.Now() != wantClock {
		t.Fatalf("clock = %d, want %d", clock.Now(), wantClock)
	}
}

func TestSTLBHitRefillsDTLB(t *testing.T) {
	tl, w, _, counters := newTestTLB(t)
	lat := timing.DefaultLatencies()

	// dTLB set 0 holds vpns ≡ 0 (mod 2); three such pages overflow its
	// 2 ways, evicting vpn 0 from the dTLB while the 8-set sTLB still
	// holds all three.
	for _, vpn := range []uint64{0, 2, 4} {
		tl.Translate(mem.Access{Addr: pageAddr(vpn)})
	}
	if in1, in2 := tl.Contains(pageAddr(0)); in1 || !in2 {
		t.Fatalf("expected sTLB-only residence, got dTLB %v sTLB %v", in1, in2)
	}

	frame, res := tl.Translate(mem.Access{Addr: pageAddr(0)})
	if !res.Hit || res.Source != mem.LevelTLB2 || res.Latency != lat.TLBL2Hit {
		t.Fatalf("sTLB translate = %+v", res)
	}
	if frame != frameFor(0) {
		t.Fatalf("sTLB frame = %d, want %d: refill lost the mapping", frame, frameFor(0))
	}
	if counters.Read(perf.DTLBLoadMissesL1) != 1 {
		t.Fatalf("stlb_hit counter = %d, want 1", counters.Read(perf.DTLBLoadMissesL1))
	}
	if w.walks != 3 {
		t.Fatalf("walks = %d, want 3", w.walks)
	}
	// Refilled: now a dTLB hit, frame preserved through the refill.
	if frame, res := tl.Translate(mem.Access{Addr: pageAddr(0)}); res.Source != mem.LevelTLB1 || frame != frameFor(0) {
		t.Fatalf("after refill, source = %v frame = %d", res.Source, frame)
	}
}

func TestInvalidate(t *testing.T) {
	tl, w, _, _ := newTestTLB(t)
	a := pageAddr(9)
	tl.Translate(mem.Access{Addr: a})
	if !tl.Invalidate(a) {
		t.Fatal("Invalidate missed a cached translation")
	}
	if in1, in2 := tl.Contains(a); in1 || in2 {
		t.Fatal("translation survived Invalidate")
	}
	if tl.Invalidate(a) {
		t.Fatal("second Invalidate reported a hit")
	}
	// Next lookup walks again.
	before := w.walks
	if _, res := tl.Translate(mem.Access{Addr: a}); res.Hit || w.walks != before+1 {
		t.Fatal("invalidated page did not re-walk")
	}
}

func TestSTLBEvictionForcesRewalk(t *testing.T) {
	tl, w, _, counters := newTestTLB(t)
	// sTLB set 0 (2 ways) holds vpns ≡ 0 (mod 8): 0, 8, 16 overflow it.
	for _, vpn := range []uint64{0, 8, 16} {
		tl.Translate(mem.Access{Addr: pageAddr(vpn)})
	}
	before := counters.Read(perf.DTLBLoadMissesWalk)
	// vpn 0 was LRU in sTLB set 0; its dTLB copy was also evicted by
	// the dTLB set-0 overflow (0, 8, 16 share dTLB set 0 as well).
	_, res := tl.Translate(mem.Access{Addr: pageAddr(0)})
	if res.Hit {
		t.Fatalf("expected full miss, got %+v", res)
	}
	if counters.Read(perf.DTLBLoadMissesWalk) != before+1 || w.walks != 4 {
		t.Fatal("eviction did not force a re-walk")
	}
}
