package tlb

import (
	"testing"

	"pthammer/internal/mem"
)

// TestResetEmptiesBothLevels pins the TLB half of the Reset/Recycle
// contract: after Reset no stale translation survives in either level,
// so the next access re-walks — the load-bearing property for a
// recycled machine, whose fresh address space must not resolve through
// a previous cohort's mappings.
func TestResetEmptiesBothLevels(t *testing.T) {
	tl, w, _, _ := newTestTLB(t)
	a := pageAddr(5)

	tl.Translate(mem.Access{Addr: a})
	if frame, res := tl.Translate(mem.Access{Addr: a}); !res.Hit || frame != frameFor(5) || w.walks != 1 {
		t.Fatalf("warm translate = (%d, %+v), walks %d; want dTLB hit after 1 walk", frame, res, w.walks)
	}

	tl.Reset()
	if in1, in2 := tl.Contains(a); in1 || in2 {
		t.Fatalf("translation survived Reset: L1 %v, L2 %v", in1, in2)
	}
	frame, res := tl.Translate(mem.Access{Addr: a})
	if res.Hit || frame != frameFor(5) || w.walks != 2 {
		t.Fatalf("post-Reset translate = (%d, %+v), walks %d; want a fresh full walk", frame, res, w.walks)
	}
}
