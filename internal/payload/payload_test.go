package payload

import (
	"reflect"
	"strings"
	"testing"

	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/machine"
	"pthammer/internal/phys"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

// testConfig is a small, fully deterministic machine: 16 MiB of DRAM
// under modest caches, enough for page-stride streams without the
// SandyBridge preset's construction cost.
func testConfig() machine.Config {
	d := dram.Config{
		Channels:        1,
		RanksPerChannel: 1,
		BanksPerRank:    8,
		Rows:            512,
		RowBytes:        4096,
		HammerThreshold: 1 << 20,
	}
	return machine.Config{
		MemBytes: d.Capacity(),
		FreqHz:   2_100_000_000,
		Lat:      timing.DefaultLatencies(),
		DRAM:     d,
		L1:       cache.Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: 64},
		L2:       cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		LLC:      cache.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64},
		TLB:      tlb.Config{L1Entries: 16, L1Ways: 4, L2Entries: 64, L2Ways: 4},
	}
}

func testMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(testConfig())
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	return m
}

// pages returns n page-stride addresses starting at page `start`.
func pages(start, n int) []phys.Addr {
	out := make([]phys.Addr, n)
	for i := range out {
		out[i] = phys.Addr(uint64(start+i) << phys.FrameShift)
	}
	return out
}

func TestValidateErrors(t *testing.T) {
	const mem = 1 << 24
	addr := []phys.Addr{0x1000, 0x2008}
	cases := []struct {
		name string
		prog Program
		want string // substring of the error, "" for valid
	}{
		{"empty ok", Program{}, ""},
		{"addr out of memory", Program{Addrs: []phys.Addr{mem}}, "outside"},
		{"unknown opcode", Program{Ops: []Op{{Code: opCount}}}, "unknown opcode"},
		{"load index oob", Program{Ops: []Op{{Code: OpLoad, A: 2}}, Addrs: addr}, "addr index 2 out of range"},
		{"store64 unaligned", Program{Ops: []Op{{Code: OpStore64, A: 1, B: 0}}, Addrs: []phys.Addr{0, 0x2004}, Vals: []uint64{7}}, "unaligned"},
		{"store64 val oob", Program{Ops: []Op{{Code: OpStore64, A: 0, B: 1}}, Addrs: addr, Vals: []uint64{7}}, "value index 1 out of range"},
		{"prime range oob", Program{Ops: []Op{{Code: OpPrime, A: 1, B: 2}}, Addrs: addr}, "addr range"},
		{"range wraps", Program{Ops: []Op{{Code: OpLoadRec, A: ^uint32(0), B: 2}}, Addrs: addr}, "addr range"},
		{"advance val oob", Program{Ops: []Op{{Code: OpAdvance, A: 0}}}, "advance value index"},
		{"loop zero trips", Program{Ops: []Op{{Code: OpNop}, {Code: OpLoop, A: 0, B: 0}}}, "trip count"},
		{"loop forward target", Program{Ops: []Op{{Code: OpLoop, A: 5, B: 2}}}, "forward"},
		// Targets >= 2^31 must fail the backward check on 32-bit hosts
		// too, where int(op.A) wraps negative — a wrapped target would
		// validate and then drive the executor's pc negative.
		{"loop target wraps 32-bit int", Program{Ops: []Op{{Code: OpNop}, {Code: OpLoop, A: 1 << 31, B: 2}}}, "forward"},
		{"loops interleave", Program{Ops: []Op{
			{Code: OpNop},              // 0
			{Code: OpNop},              // 1
			{Code: OpLoop, A: 0, B: 2}, // 2: spans [0,2]
			{Code: OpLoop, A: 1, B: 2}, // 3: spans [1,3] — straddles op 2
		}}, "interleave"},
		{"nested loops ok", Program{Ops: []Op{
			{Code: OpNop},
			{Code: OpNop},
			{Code: OpLoop, A: 1, B: 4},
			{Code: OpLoop, A: 0, B: 4},
		}}, ""},
		{"step bound", Program{Ops: []Op{
			{Code: OpNop},
			{Code: OpLoop, A: 0, B: 1 << 10},
			{Code: OpLoop, A: 0, B: 1 << 10},
			{Code: OpLoop, A: 0, B: 1 << 10},
		}}, "step bound"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.prog.Validate(mem)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate: unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestPrivileged(t *testing.T) {
	c := NewCompiler()
	c.Prime(pages(2, 4))
	c.Probe(pages(2, 1)[0])
	p, err := c.Compile(1 << 24)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if p.Privileged() {
		t.Fatal("implicit program reported privileged")
	}
	c = NewCompiler()
	c.Invlpg(0x1000)
	c.Flush(0x1000)
	c.Load(0x1000)
	p, err = c.Compile(1 << 24)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if !p.Privileged() {
		t.Fatal("invlpg+clflush program reported unprivileged")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := NewCompiler()
	c.Store64(0x2000, 0xdeadbeefcafe)
	c.Loop(3, func(c *Compiler) {
		c.Prime(pages(4, 5))
		c.Probe(0x7008)
		c.Loop(2, func(c *Compiler) { c.Advance(17) })
	})
	c.LoadRec(pages(20, 3))
	c.Fence()
	c.ResetWindow()
	p, err := c.Compile(1 << 24)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	enc, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(normalize(p), normalize(got)) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	re, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !reflect.DeepEqual(enc, re) {
		t.Fatal("Encode∘Decode is not the identity on the encoding")
	}
}

// normalize maps empty slices to nil so DeepEqual compares content.
func normalize(p *Program) Program {
	q := *p
	if len(q.Ops) == 0 {
		q.Ops = nil
	}
	if len(q.Addrs) == 0 {
		q.Addrs = nil
	}
	if len(q.Vals) == 0 {
		q.Vals = nil
	}
	return q
}

func TestDecodeRejectsMalformed(t *testing.T) {
	p := &Program{Ops: []Op{{Code: OpLoad, A: 0}}, Addrs: []phys.Addr{0x1000}}
	enc, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), enc...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"short", enc[:encHeaderLen-1], "shorter"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"bad version", mutate(func(b []byte) []byte { b[4] = 99; return b }), "version"},
		{"reserved nonzero", mutate(func(b []byte) []byte { b[6] = 1; return b }), "reserved"},
		{"truncated body", enc[:len(enc)-1], "want"},
		{"trailing garbage", mutate(func(b []byte) []byte { return append(b, 0) }), "want"},
		{"unknown opcode", mutate(func(b []byte) []byte { b[encHeaderLen] = byte(opCount); return b }), "unknown opcode"},
		{"oversized counts", mutate(func(b []byte) []byte { putU32(b[8:], encMaxEntries+1); return b }), "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Decode = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestRunMatchesHandLoop replays a compiled program and the equivalent
// hand-written machine calls on identically-configured machines and
// demands bit-identical clocks, counters and reported cycles.
func TestRunMatchesHandLoop(t *testing.T) {
	prime := pages(8, 6)
	thrash := pages(32, 4)
	recs := pages(64, 3)
	target := phys.Addr(0x7008)

	c := NewCompiler()
	c.Store64(0x4000, 42)
	c.Loop(5, func(c *Compiler) {
		c.Prime(prime)
		c.TLBThrash(thrash)
		c.Probe(target)
		c.Advance(13)
	})
	c.LoadRec(recs)
	c.ResetWindow()
	prog, err := c.Compile(testConfig().MemBytes)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	ex, err := NewExecutor(prog)
	if err != nil {
		t.Fatalf("NewExecutor: %v", err)
	}

	mc := testMachine(t) // compiled
	mh := testMachine(t) // hand loop
	tr := ex.Run(mc)

	var want Trace
	want.Walked, want.LeafFromDRAM = true, true
	var wantRec []timing.Cycles
	want.Cycles += mh.Store64(0x4000, 42).Latency
	for range 5 {
		want.Cycles += mh.Prime(prime)
		for _, a := range thrash {
			want.Cycles += mh.Load(a).Latency
		}
		pr := mh.Probe(target)
		want.Cycles += pr.Latency
		want.Probes++
		want.Walked = want.Walked && pr.Walked
		want.LeafFromDRAM = want.LeafFromDRAM && pr.LeafFromDRAM
		mh.Clock().Advance(13)
		want.Cycles += 13
	}
	for _, a := range recs {
		lat := mh.Load(a).Latency
		want.Cycles += lat
		wantRec = append(wantRec, lat)
	}
	mh.ResetRefreshWindow()

	if tr != want {
		t.Fatalf("trace mismatch:\n got %+v\nwant %+v", tr, want)
	}
	if got, wantNow := mc.Clock().Now(), mh.Clock().Now(); got != wantNow {
		t.Fatalf("clock mismatch: compiled %d, hand %d", got, wantNow)
	}
	if got, wantSnap := mc.Counters().Snapshot(), mh.Counters().Snapshot(); got != wantSnap {
		t.Fatalf("PMC mismatch:\n got %+v\nwant %+v", got, wantSnap)
	}
	if !reflect.DeepEqual(ex.Records(), wantRec) {
		t.Fatalf("records mismatch:\n got %v\nwant %v", ex.Records(), wantRec)
	}
}

// TestRunClockAgreement checks the executor invariant directly: the
// reported Trace.Cycles equals the machine clock's delta, including on
// a privileged program (invlpg charges nothing, clflush charges its
// fixed cost).
func TestRunClockAgreement(t *testing.T) {
	c := NewCompiler()
	c.Invlpg(0x3000)
	c.Flush(0x3000)
	c.Load(0x3000)
	c.Loop(4, func(c *Compiler) {
		c.Prime(pages(16, 4))
		c.Probe(0x3000)
	})
	prog, err := c.Compile(testConfig().MemBytes)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := testMachine(t)
	ex := MustExecutor(prog)
	start := m.Clock().Now()
	tr := ex.Run(m)
	if delta := m.Clock().Now() - start; delta != tr.Cycles {
		t.Fatalf("clock advanced %d cycles but trace reports %d", delta, tr.Cycles)
	}
	flushes, invlpgs := m.PrivilegedOps()
	if flushes != 1 || invlpgs != 1 {
		t.Fatalf("PrivilegedOps = (%d, %d), want (1, 1)", flushes, invlpgs)
	}
}

// TestRunTwiceReestablishesState checks that loop counters reset on
// completion: a second Run executes the full trip count again, and the
// record buffer is rewritten from the start.
func TestRunTwiceReestablishesState(t *testing.T) {
	c := NewCompiler()
	c.Loop(7, func(c *Compiler) { c.Advance(11) })
	c.LoadRec(pages(40, 2))
	prog, err := c.Compile(testConfig().MemBytes)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := testMachine(t)
	ex := MustExecutor(prog)
	tr1 := ex.Run(m)
	rec1 := append([]timing.Cycles(nil), ex.Records()...)
	tr2 := ex.Run(m)
	if tr1.Cycles < 7*11 || tr2.Cycles < 7*11 {
		t.Fatalf("loop under-executed: run1 %d, run2 %d cycles (want ≥ %d)", tr1.Cycles, tr2.Cycles, 7*11)
	}
	if len(rec1) != 2 || len(ex.Records()) != 2 {
		t.Fatalf("record counts = %d then %d, want 2 and 2", len(rec1), len(ex.Records()))
	}
	// The second run's loads hit the cache, so only the padding cycles
	// repeat exactly.
	if tr2.Cycles >= tr1.Cycles {
		t.Fatalf("second run (%d cycles) not faster than cold first run (%d)", tr2.Cycles, tr1.Cycles)
	}
}

func TestCompilerElidesDegenerateLoops(t *testing.T) {
	c := NewCompiler()
	c.Loop(0, func(c *Compiler) { c.Load(0x1000) })
	c.Loop(3, func(c *Compiler) {})
	p, err := c.Compile(1 << 24)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(p.Ops) != 0 {
		t.Fatalf("degenerate loops emitted %d ops, want 0", len(p.Ops))
	}
}

func TestCompiledProgramIsSelfContained(t *testing.T) {
	stream := pages(8, 4)
	c := NewCompiler()
	c.Prime(stream)
	p, err := c.Compile(1 << 24)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	stream[0] = 0xdead000
	if p.Addrs[0] == 0xdead000 {
		t.Fatal("compiled program aliases the caller's stream slice")
	}
	if MustExecutor(p).Program() != p {
		t.Fatal("Executor.Program does not return the program it was built from")
	}
}

func TestOpCodeString(t *testing.T) {
	if OpPrime.String() != "prime" || OpLoop.String() != "loop" {
		t.Fatalf("mnemonics wrong: %v %v", OpPrime, OpLoop)
	}
	if got := OpCode(200).String(); got != "op(200)" {
		t.Fatalf("out-of-range opcode renders %q", got)
	}
}

// TestRunAllocs is the dynamic half of the noalloc contract: steady-state
// replay allocates nothing.
func TestRunAllocs(t *testing.T) {
	c := NewCompiler()
	c.Loop(3, func(c *Compiler) {
		c.Prime(pages(8, 4))
		c.Probe(0x5000)
	})
	c.LoadRec(pages(30, 2))
	prog, err := c.Compile(testConfig().MemBytes)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := testMachine(t)
	ex := MustExecutor(prog)
	ex.Run(m) // warm demand mappings
	if n := testing.AllocsPerRun(10, func() { ex.Run(m) }); n != 0 {
		t.Fatalf("Executor.Run allocates %.1f times per run, want 0", n)
	}
}
