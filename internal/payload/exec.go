// The payload executor: one flat dispatch loop replaying a compiled
// Program against a machine front-end. Everything the loop calls is
// itself //pthammer:noalloc, and the executor's own scratch (loop
// counters, the latency record buffer) is sized once at construction,
// so steady-state replay allocates nothing — the property the noalloc
// analyzer enforces structurally and the fuzzer re-checks dynamically.
package payload

import (
	"fmt"

	"pthammer/internal/machine"
	"pthammer/internal/timing"
)

// Trace summarises one program run, mirroring bench.HammerIter so the
// compiled implicit-hammer loop reports exactly what the closure path
// reports: total cycles charged, and the PMC verdicts ANDed over every
// probe the program issued.
type Trace struct {
	// Cycles is the total clock advance the run charged: every load,
	// store, prime, probe and flush latency plus every OpAdvance. The
	// executor's invariant — fuzz-checked — is that Cycles equals the
	// machine clock's delta across the run exactly.
	Cycles timing.Cycles
	// Probes counts OpProbe ops executed.
	Probes int
	// Walked is true when every probe missed all TLB levels (vacuously
	// true with no probes), matching HammerIter.Walked for the two-probe
	// hammer program.
	Walked bool
	// LeafFromDRAM is true when every probe's walk fetched its leaf PTE
	// from DRAM — the implicit hammer accesses.
	LeafFromDRAM bool
}

// Executor replays one Program. It owns the program's run-time scratch
// — per-loop trip counters and the latency record buffer — so a single
// Executor may not be shared across goroutines, but replaying it is
// allocation-free. Build one per (program, core) pairing.
type Executor struct {
	prog *Program
	// counters[pc] counts how many times the OpLoop at pc has fired in
	// the current run; a completed loop resets its counter, so the
	// zeroed state is re-established by every full run.
	counters []uint32
	// rec holds the latencies recorded by OpLoadRec ops, valid up to
	// nrec after a run.
	rec  []timing.Cycles
	nrec int
}

// NewExecutor builds the executor for a program, preallocating all
// run-time scratch. The program's loop structure must be valid (the
// Compiler emits only valid structures; hand-built or decoded programs
// should pass Validate first).
func NewExecutor(p *Program) (*Executor, error) {
	slots, err := p.recordSlots()
	if err != nil {
		return nil, err
	}
	return &Executor{
		prog:     p,
		counters: make([]uint32, len(p.Ops)),
		rec:      make([]timing.Cycles, slots),
	}, nil
}

// MustExecutor is NewExecutor but panics on error; for compiled
// programs whose structure is valid by construction.
func MustExecutor(p *Program) *Executor {
	e, err := NewExecutor(p)
	if err != nil {
		panic(fmt.Sprintf("payload: %v", err))
	}
	return e
}

// Program returns the program this executor replays.
func (e *Executor) Program() *Program { return e.prog }

// Records returns the latencies the last Run recorded (OpLoadRec), in
// execution order. The slice is the executor's scratch: valid until
// the next Run, not to be mutated.
func (e *Executor) Records() []timing.Cycles { return e.rec[:e.nrec] }

// Run replays the program against the machine and returns the trace.
// This is the engine the steady-state scenarios dispatch through: one
// flat loop, no per-op interfaces or closures, nothing allocated. The
// machine work is identical to the closure path's — the same demand
// loads in the same order through the same entry points — which is
// what keeps compiled and closure paths bit-equivalent.
//
//pthammer:noalloc
func (e *Executor) Run(m *machine.Machine) Trace {
	ops := e.prog.Ops
	addrs := e.prog.Addrs
	vals := e.prog.Vals
	counters := e.counters
	rec := e.rec
	nrec := 0
	tr := Trace{Walked: true, LeafFromDRAM: true}
	// pc is int64 so the OpLoop jump below cannot wrap on 32-bit hosts
	// even for a program that skipped validation.
	for pc := int64(0); pc < int64(len(ops)); pc++ {
		op := ops[pc]
		switch op.Code {
		case OpLoad:
			tr.Cycles += m.Load(addrs[op.A]).Latency
		case OpStore64:
			tr.Cycles += m.Store64(addrs[op.A], vals[op.B]).Latency
		case OpPrime:
			tr.Cycles += m.Prime(addrs[op.A : uint64(op.A)+uint64(op.B)])
		case OpTLBThrash:
			for _, a := range addrs[op.A : uint64(op.A)+uint64(op.B)] {
				tr.Cycles += m.Load(a).Latency
			}
		case OpProbe:
			pr := m.Probe(addrs[op.A])
			tr.Cycles += pr.Latency
			tr.Probes++
			tr.Walked = tr.Walked && pr.Walked
			tr.LeafFromDRAM = tr.LeafFromDRAM && pr.LeafFromDRAM
		case OpLoadRec:
			for _, a := range addrs[op.A : uint64(op.A)+uint64(op.B)] {
				lat := m.Load(a).Latency
				tr.Cycles += lat
				rec[nrec] = lat
				nrec++
			}
		case OpAdvance:
			c := timing.Cycles(vals[op.A])
			m.Clock().Advance(c)
			tr.Cycles += c
		case OpResetWindow:
			m.ResetRefreshWindow()
		case OpInvlpg:
			m.InvalidatePage(addrs[op.A])
		case OpFlush:
			tr.Cycles += m.Flush(addrs[op.A])
		case OpLoop:
			counters[pc]++
			if counters[pc] < op.B {
				pc = int64(op.A) - 1
			} else {
				counters[pc] = 0
			}
		}
	}
	e.nrec = nrec
	return tr
}
