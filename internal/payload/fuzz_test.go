package payload

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"pthammer/internal/machine"
)

// corpusPrograms returns the seed programs both fuzzers start from:
// the three shapes the engine actually runs (implicit-hammer style,
// privileged baseline, sweep replay) plus degenerate edges.
func corpusPrograms() []*Program {
	hammer := NewCompiler()
	hammer.Prime(pages(4, 6))
	hammer.Prime(pages(16, 4))
	hammer.Probe(0x3000)
	hammer.Prime(pages(24, 6))
	hammer.Prime(pages(40, 4))
	hammer.Probe(0x5000)

	priv := NewCompiler()
	priv.Invlpg(0x3000)
	priv.Flush(0x3100)
	priv.Load(0x3000)
	priv.Invlpg(0x5000)
	priv.Flush(0x5100)
	priv.Load(0x5000)

	replay := NewCompiler()
	replay.Loop(3, func(c *Compiler) {
		c.Flush(0x1000)
		c.Advance(40)
		c.LoadRec(pages(8, 4))
	})

	edges := NewCompiler()
	edges.Fence()
	edges.Store64(0x2000, 0xfeed)
	edges.TLBThrash(pages(60, 2))
	edges.ResetWindow()

	var out []*Program
	for _, c := range []*Compiler{hammer, priv, replay, edges} {
		p, err := c.Compile(testConfig().MemBytes)
		if err != nil {
			panic(err)
		}
		out = append(out, p)
	}
	out = append(out, &Program{}) // empty program is valid
	return out
}

// FuzzOpRoundTrip drives the serialization contract: any input Decode
// accepts must re-Encode to the identical byte string (Decode rejects
// every non-canonical shape, so Encode∘Decode is the identity).
func FuzzOpRoundTrip(f *testing.F) {
	for _, p := range corpusPrograms() {
		enc, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte("pthp"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded program failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("Encode∘Decode not the identity:\n in  %x\n out %x", data, enc)
		}
	})
}

// FuzzExecutor drives the execution contract: any program Validate
// accepts must run without panicking, report Trace.Cycles exactly equal
// to the machine clock's delta, and allocate nothing in dispatch. The
// harness skips programs that store into the machine's page-table pool
// — the simulator's kernel region, which a user payload cannot write —
// because corrupting a PTE can legitimately panic a later walk.
func FuzzExecutor(f *testing.F) {
	for _, p := range corpusPrograms() {
		enc, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		cfg := testConfig()
		if p.Validate(cfg.MemBytes) != nil {
			return
		}
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		poolBase, _ := m.PageTables().Region()
		kernel := poolBase.Addr()
		for _, op := range p.Ops {
			if op.Code == OpStore64 && p.Addrs[op.A] >= kernel {
				return
			}
		}
		ex, err := NewExecutor(p)
		if err != nil {
			t.Fatalf("Validate accepted but NewExecutor rejected: %v", err)
		}
		start := m.Clock().Now()
		tr := ex.Run(m)
		if delta := m.Clock().Now() - start; delta != tr.Cycles {
			t.Fatalf("clock advanced %d cycles but trace reports %d", delta, tr.Cycles)
		}
		if n := testing.AllocsPerRun(3, func() { ex.Run(m) }); n != 0 {
			t.Fatalf("dispatch allocates %.1f times per run, want 0", n)
		}
	})
}

// TestRegenFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz from corpusPrograms. Run with PTHAMMER_REGEN_CORPUS=1
// after changing the encoding or the seed set; it is a no-op otherwise.
func TestRegenFuzzCorpus(t *testing.T) {
	if os.Getenv("PTHAMMER_REGEN_CORPUS") == "" {
		t.Skip("set PTHAMMER_REGEN_CORPUS=1 to rewrite testdata/fuzz")
	}
	seeds := corpusPrograms()
	for _, target := range []string{"FuzzOpRoundTrip", "FuzzExecutor"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, p := range seeds {
			enc, err := p.Encode()
			if err != nil {
				t.Fatal(err)
			}
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(enc)))
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSeedCorpusDecodes pins the committed corpus files to the current
// encoding: every seed must parse as a fuzz input and Decode cleanly,
// so an encoding change that forgets to regenerate the corpus fails
// here rather than silently fuzzing dead inputs.
func TestSeedCorpusDecodes(t *testing.T) {
	for _, target := range []string{"FuzzOpRoundTrip", "FuzzExecutor"} {
		files, err := filepath.Glob(filepath.Join("testdata", "fuzz", target, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			t.Fatalf("no committed seeds for %s", target)
		}
		for _, name := range files {
			raw, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			lines := bytes.SplitN(raw, []byte("\n"), 2)
			if len(lines) != 2 || string(lines[0]) != "go test fuzz v1" {
				t.Fatalf("%s: not a go fuzz v1 corpus file", name)
			}
			body := string(bytes.TrimSpace(lines[1]))
			const pre, post = "[]byte(", ")"
			if len(body) < len(pre)+len(post) || body[:len(pre)] != pre || body[len(body)-1:] != post {
				t.Fatalf("%s: unexpected corpus body %q", name, body)
			}
			data, err := strconv.Unquote(body[len(pre) : len(body)-1])
			if err != nil {
				t.Fatalf("%s: unquote: %v", name, err)
			}
			if _, err := Decode([]byte(data)); err != nil && data != "pthp" {
				t.Fatalf("%s: seed no longer decodes: %v", name, err)
			}
		}
	}
}
