// Package payload makes hammer scenarios data: a scenario body is
// compiled once into a flat op-stream Program — dense arrays of
// opcodes, addresses and values, no per-op interfaces or closures —
// and then replayed by one tight Executor dispatch loop
// (//pthammer:noalloc) over a machine front-end. The split mirrors
// litex-rowhammer-tester's Encoder/OpCode payload executor: the
// expensive part of a steady-state scenario is the simulated memory
// system, so the host-side harness around it (method dispatch through
// eviction-set objects, per-iteration closure plumbing) is lowered to
// an array walk.
//
// Programs are pure data, so they can be validated, fuzzed, serialized
// and diffed. The contract that makes swapping the execution engine
// safe under the repo's calibrated tables is differential equivalence:
// a compiled program must drive the machine through the exact same
// state transitions as the closure path it replaces — same loads in
// the same order, same clock charges, same PMC deltas, same privileged
// operations (none, on the implicit path). internal/payload/difftest
// pins that bit-for-bit; no engine change merges without it green.
package payload

import (
	"fmt"

	"pthammer/internal/phys"
)

// OpCode selects one executor operation. The zero value is OpNop so a
// zeroed Op is harmless.
type OpCode uint8

// The payload ISA. Operand meaning per opcode:
//
//	OpNop        —
//	OpLoad       demand load Addrs[A]
//	OpStore64    demand store of Vals[B] at Addrs[A] (8-byte aligned)
//	OpPrime      machine.Prime over Addrs[A : A+B] (eviction-set walk;
//	             under a fault model the stream may be rotated/dropped,
//	             exactly like the closure path's Evict)
//	OpTLBThrash  individual demand loads over Addrs[A : A+B] (a plain
//	             page-stride stream: no fault-model Prime hooks)
//	OpProbe      timed+PMC-decoded load of Addrs[A]; folds into Trace
//	OpLoadRec    demand loads over Addrs[A : A+B], recording each
//	             latency into the executor's record buffer (the sweep
//	             engine's histogram feed)
//	OpAdvance    advance the core clock by Vals[A] cycles (NOP padding)
//	OpResetWindow discard the DRAM refresh window
//	OpInvlpg     privileged invlpg of Addrs[A] (baseline programs only)
//	OpFlush      privileged clflush of Addrs[A] (baseline programs only)
//	OpFence      serialization marker; no machine effect
//	OpLoop       jump back to op index A until this op has executed B
//	             times (loops must be backward and well-nested)
const (
	OpNop OpCode = iota
	OpLoad
	OpStore64
	OpPrime
	OpTLBThrash
	OpProbe
	OpLoadRec
	OpAdvance
	OpResetWindow
	OpInvlpg
	OpFlush
	OpFence
	OpLoop
	opCount // sentinel, not encodable
)

var opNames = [...]string{
	OpNop:         "nop",
	OpLoad:        "load",
	OpStore64:     "store64",
	OpPrime:       "prime",
	OpTLBThrash:   "tlbthrash",
	OpProbe:       "probe",
	OpLoadRec:     "loadrec",
	OpAdvance:     "advance",
	OpResetWindow: "resetwindow",
	OpInvlpg:      "invlpg",
	OpFlush:       "flush",
	OpFence:       "fence",
	OpLoop:        "loop",
}

// String renders the opcode mnemonic.
func (c OpCode) String() string {
	if int(c) < len(opNames) {
		return opNames[c]
	}
	return fmt.Sprintf("op(%d)", uint8(c))
}

// Op is one instruction: an opcode and two 32-bit operands whose
// meaning depends on the opcode (indices into the program's Addrs/Vals
// tables, stream lengths, jump targets, trip counts).
type Op struct {
	Code OpCode
	A, B uint32
}

// Program is a compiled scenario body in structure-of-arrays layout:
// the instruction stream plus the address and value tables it indexes.
// A Program holds no machine state and no host pointers, so it can be
// serialized, fuzzed and replayed on any machine whose memory it fits
// (Validate).
type Program struct {
	Ops   []Op
	Addrs []phys.Addr
	Vals  []uint64
}

// maxSteps bounds the dynamic instruction count of a valid program
// (loop trip counts multiply), so every valid program provably
// terminates and the fuzzer cannot construct a spin.
const maxSteps = 1 << 20

// rangeOps marks the opcodes whose (A, B) operands denote the address
// range Addrs[A : A+B].
func (c OpCode) rangeOp() bool {
	switch c {
	case OpPrime, OpTLBThrash, OpLoadRec:
		return true
	}
	return false
}

// addrOp marks the opcodes whose A operand is a single Addrs index.
func (c OpCode) addrOp() bool {
	switch c {
	case OpLoad, OpStore64, OpProbe, OpInvlpg, OpFlush:
		return true
	}
	return false
}

// Privileged reports whether the program contains a privileged
// operation (invlpg or clflush). Implicit-hammer programs must not —
// the paper's attacker has neither — and the difftest harness asserts
// the machine's PrivilegedOps counters agree.
func (p *Program) Privileged() bool {
	for _, op := range p.Ops {
		if op.Code == OpInvlpg || op.Code == OpFlush {
			return true
		}
	}
	return false
}

// loopWeights returns, per op index, how many times that op executes in
// one run (the product of the trip counts of every loop enclosing it),
// after checking that loops are backward and well-nested. The weights
// saturate at maxSteps+1 so callers can bound totals without overflow.
func (p *Program) loopWeights() ([]uint64, error) {
	type span struct{ lo, hi int } // [lo, hi] inclusive, hi is the OpLoop
	var spans []span
	var trips []uint64
	for pc, op := range p.Ops {
		if op.Code != OpLoop {
			continue
		}
		if op.B == 0 {
			return nil, fmt.Errorf("payload: op %d: loop trip count must be ≥ 1", pc)
		}
		// Compare in uint64: on 32-bit platforms int(op.A) wraps
		// negative for targets >= 2^31 and would slip past this check,
		// then panic the executor with a negative pc.
		if uint64(op.A) > uint64(pc) {
			return nil, fmt.Errorf("payload: op %d: loop target %d is forward (loops must jump backward)", pc, op.A)
		}
		spans = append(spans, span{lo: int(op.A), hi: pc})
		trips = append(trips, uint64(op.B))
	}
	// Well-nesting: any two loop spans must be disjoint or one must
	// contain the other. O(n²) is fine at validation time.
	for i := range spans {
		for j := range spans {
			si, sj := spans[i], spans[j]
			if si.hi < sj.hi && sj.lo <= si.hi && sj.lo > si.lo {
				return nil, fmt.Errorf("payload: loops at ops %d and %d interleave (target %d lands inside [%d, %d])",
					si.hi, sj.hi, sj.lo, si.lo, si.hi)
			}
		}
	}
	w := make([]uint64, len(p.Ops))
	for pc := range w {
		w[pc] = 1
		for i, s := range spans {
			if s.lo <= pc && pc <= s.hi {
				w[pc] *= trips[i]
				if w[pc] > maxSteps {
					w[pc] = maxSteps + 1
				}
			}
		}
	}
	return w, nil
}

// Validate reports the first reason the program is not well-formed for
// a machine with memBytes of physical memory. A valid program never
// panics the executor, terminates within a bounded step count, and
// touches only in-range addresses. This is the contract the fuzzers
// drive: any program Validate accepts must execute cleanly.
func (p *Program) Validate(memBytes uint64) error {
	for i, a := range p.Addrs {
		if uint64(a) >= memBytes {
			return fmt.Errorf("payload: addr %d (%#x) outside %d-byte memory", i, uint64(a), memBytes)
		}
	}
	nAddrs, nVals := uint64(len(p.Addrs)), uint64(len(p.Vals))
	for pc, op := range p.Ops {
		switch {
		case op.Code >= opCount:
			return fmt.Errorf("payload: op %d: unknown opcode %d", pc, uint8(op.Code))
		case op.Code.addrOp():
			if uint64(op.A) >= nAddrs {
				return fmt.Errorf("payload: op %d (%v): addr index %d out of range (%d addrs)", pc, op.Code, op.A, nAddrs)
			}
			if op.Code == OpStore64 {
				if uint64(p.Addrs[op.A])&7 != 0 {
					return fmt.Errorf("payload: op %d: store64 at unaligned address %#x", pc, uint64(p.Addrs[op.A]))
				}
				if uint64(op.B) >= nVals {
					return fmt.Errorf("payload: op %d: value index %d out of range (%d vals)", pc, op.B, nVals)
				}
			}
		case op.Code.rangeOp():
			if uint64(op.A)+uint64(op.B) > nAddrs {
				return fmt.Errorf("payload: op %d (%v): addr range [%d, %d) out of range (%d addrs)", pc, op.Code, op.A, uint64(op.A)+uint64(op.B), nAddrs)
			}
		case op.Code == OpAdvance:
			if uint64(op.A) >= nVals {
				return fmt.Errorf("payload: op %d: advance value index %d out of range (%d vals)", pc, op.A, nVals)
			}
		}
	}
	w, err := p.loopWeights()
	if err != nil {
		return err
	}
	var steps uint64
	for pc, op := range p.Ops {
		cost := uint64(1)
		if op.Code.rangeOp() {
			cost += uint64(op.B)
		}
		steps += cost * w[pc]
		if steps > maxSteps {
			return fmt.Errorf("payload: program exceeds the %d-step bound", maxSteps)
		}
	}
	return nil
}

// recordSlots returns the number of latency records one run produces
// (OpLoadRec stream lengths times their loop weights). Call only on a
// program whose loops validated.
func (p *Program) recordSlots() (uint64, error) {
	w, err := p.loopWeights()
	if err != nil {
		return 0, err
	}
	var n uint64
	for pc, op := range p.Ops {
		if op.Code == OpLoadRec {
			n += uint64(op.B) * w[pc]
		}
	}
	if n > maxSteps {
		return 0, fmt.Errorf("payload: %d latency records exceed the %d-step bound", n, maxSteps)
	}
	return n, nil
}

// The serialized layout (little-endian throughout):
//
//	magic "pthp", version byte, 3 reserved zero bytes
//	u32 ops, u32 addrs, u32 vals
//	per op: u8 code, u32 A, u32 B
//	per addr: u64; per val: u64
//
// Decode rejects anything but this exact shape, so Encode∘Decode is
// the identity on valid encodings — the fuzzed round-trip property.
const (
	encVersion    = 1
	encHeaderLen  = 8 + 12
	encOpLen      = 9
	encMaxEntries = 1 << 20
)

var encMagic = [4]byte{'p', 't', 'h', 'p'}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// Encode serializes the program. Programs with more than encMaxEntries
// ops, addrs or vals are not encodable (nor decodable).
func (p *Program) Encode() ([]byte, error) {
	if len(p.Ops) > encMaxEntries || len(p.Addrs) > encMaxEntries || len(p.Vals) > encMaxEntries {
		return nil, fmt.Errorf("payload: program too large to encode (%d/%d/%d entries, max %d)",
			len(p.Ops), len(p.Addrs), len(p.Vals), encMaxEntries)
	}
	out := make([]byte, encHeaderLen+encOpLen*len(p.Ops)+8*len(p.Addrs)+8*len(p.Vals))
	copy(out, encMagic[:])
	out[4] = encVersion
	putU32(out[8:], uint32(len(p.Ops)))
	putU32(out[12:], uint32(len(p.Addrs)))
	putU32(out[16:], uint32(len(p.Vals)))
	o := encHeaderLen
	for _, op := range p.Ops {
		out[o] = byte(op.Code)
		putU32(out[o+1:], op.A)
		putU32(out[o+5:], op.B)
		o += encOpLen
	}
	for _, a := range p.Addrs {
		putU64(out[o:], uint64(a))
		o += 8
	}
	for _, v := range p.Vals {
		putU64(out[o:], v)
		o += 8
	}
	return out, nil
}

// Decode parses a serialized program, rejecting malformed input:
// wrong magic or version, nonzero reserved bytes, truncated or
// oversized bodies, and opcodes outside the ISA. Decoding performs no
// semantic validation — run Validate before executing.
func Decode(data []byte) (*Program, error) {
	if len(data) < encHeaderLen {
		return nil, fmt.Errorf("payload: %d-byte input shorter than the %d-byte header", len(data), encHeaderLen)
	}
	if [4]byte(data[:4]) != encMagic {
		return nil, fmt.Errorf("payload: bad magic %q", data[:4])
	}
	if data[4] != encVersion {
		return nil, fmt.Errorf("payload: unsupported version %d", data[4])
	}
	if data[5] != 0 || data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("payload: nonzero reserved bytes")
	}
	nOps := uint64(getU32(data[8:]))
	nAddrs := uint64(getU32(data[12:]))
	nVals := uint64(getU32(data[16:]))
	if nOps > encMaxEntries || nAddrs > encMaxEntries || nVals > encMaxEntries {
		return nil, fmt.Errorf("payload: entry counts %d/%d/%d exceed the %d cap", nOps, nAddrs, nVals, encMaxEntries)
	}
	want := uint64(encHeaderLen) + encOpLen*nOps + 8*nAddrs + 8*nVals
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("payload: %d-byte input, want %d for %d/%d/%d entries", len(data), want, nOps, nAddrs, nVals)
	}
	p := &Program{
		Ops:   make([]Op, nOps),
		Addrs: make([]phys.Addr, nAddrs),
		Vals:  make([]uint64, nVals),
	}
	o := encHeaderLen
	for i := range p.Ops {
		code := OpCode(data[o])
		if code >= opCount {
			return nil, fmt.Errorf("payload: op %d: unknown opcode %d", i, data[o])
		}
		p.Ops[i] = Op{Code: code, A: getU32(data[o+1:]), B: getU32(data[o+5:])}
		o += encOpLen
	}
	for i := range p.Addrs {
		p.Addrs[i] = phys.Addr(getU64(data[o:]))
		o += 8
	}
	for i := range p.Vals {
		p.Vals[i] = getU64(data[o:])
		o += 8
	}
	return p, nil
}
