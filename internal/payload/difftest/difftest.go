// Package difftest is the differential equivalence harness between the
// closure scenario bodies and their compiled payload programs. The
// engine-swap contract it enforces: a compiled program must drive the
// machine through the exact same state transitions as the closure path
// it lowers — bit-identical clock deltas, PMC banks, hammer stats,
// recorded flips and privileged-operation counts, on identically
// seeded machines. No engine change merges without this harness green
// (see CONTRIBUTING.md).
//
// The helpers build machine *pairs* from a caller-supplied factory —
// never one shared machine — because a flip or fault model binds to
// the machine it is constructed with; the factory is called once per
// arm so each arm owns identical-but-independent state.
package difftest

import (
	"fmt"
	"reflect"

	"pthammer/internal/bench"
	"pthammer/internal/evset"
	"pthammer/internal/machine"
	"pthammer/internal/payload"
	"pthammer/internal/sweep"
)

// Factory builds one arm's machine. It is invoked twice per
// equivalence check and must return identically-configured (and
// identically-seeded) machines on every call.
type Factory func() (*machine.Machine, error)

// CheckState compares every piece of observable machine state the
// harness pins: clock, the full PMC bank, DRAM hammer stats, recorded
// flips, and the privileged-operation counters. A nil error means the
// two machines are indistinguishable through the measurement API.
func CheckState(closure, compiled *machine.Machine) error {
	if a, b := closure.Clock().Now(), compiled.Clock().Now(); a != b {
		return fmt.Errorf("clock diverged: closure %d, compiled %d", a, b)
	}
	if a, b := closure.Counters().Snapshot(), compiled.Counters().Snapshot(); a != b {
		return fmt.Errorf("PMC banks diverged:\nclosure  %+v\ncompiled %+v", a, b)
	}
	if a, b := closure.HammerStats(), compiled.HammerStats(); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("hammer stats diverged:\nclosure  %+v\ncompiled %+v", a, b)
	}
	if a, b := closure.Flips(), compiled.Flips(); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("flips diverged:\nclosure  %+v\ncompiled %+v", a, b)
	}
	af, ai := closure.PrivilegedOps()
	bf, bi := compiled.PrivilegedOps()
	if af != bf || ai != bi {
		return fmt.Errorf("privileged ops diverged: closure (%d, %d), compiled (%d, %d)", af, ai, bf, bi)
	}
	return nil
}

// Hammer checks the flush-free implicit-hammer loop: the closure path
// (ImplicitHammer.HammerOnce) on one machine against the compiled
// program (bench.CompileHammer) on its twin, for iters iterations. The
// per-iteration HammerIter and Trace must agree field by field, the
// compiled program must be unprivileged, and the machines must stay in
// identical observable state after every iteration.
func Hammer(newMachine Factory, maxRegions, iters int, opt evset.Options) error {
	mc, err := newMachine()
	if err != nil {
		return err
	}
	mp, err := newMachine()
	if err != nil {
		return err
	}
	hc, err := bench.NewImplicitHammer(mc, maxRegions, opt)
	if err != nil {
		return fmt.Errorf("closure arm: %w", err)
	}
	hp, err := bench.NewImplicitHammer(mp, maxRegions, opt)
	if err != nil {
		return fmt.Errorf("compiled arm: %w", err)
	}
	if err := CheckState(mc, mp); err != nil {
		return fmt.Errorf("after construction: %w", err)
	}
	prog, err := bench.CompileHammer(mp, hp)
	if err != nil {
		return err
	}
	if prog.Privileged() {
		return fmt.Errorf("compiled hammer program reports privileged ops")
	}
	ex, err := payload.NewExecutor(prog)
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		it := hc.HammerOnce(mc)
		tr := ex.Run(mp)
		if tr.Probes != 2 {
			return fmt.Errorf("iter %d: compiled trace has %d probes, want 2", i, tr.Probes)
		}
		if it.Cycles != tr.Cycles || it.Walked != tr.Walked || it.LeafFromDRAM != tr.LeafFromDRAM {
			return fmt.Errorf("iter %d: iteration diverged:\nclosure  %+v\ncompiled %+v", i, it, tr)
		}
		if err := CheckState(mc, mp); err != nil {
			return fmt.Errorf("iter %d: %w", i, err)
		}
	}
	fc, ic := mc.PrivilegedOps()
	if fc != 0 || ic != 0 {
		return fmt.Errorf("implicit path issued privileged ops: (%d, %d)", fc, ic)
	}
	return nil
}

// Privileged checks the invlpg+clflush baseline: the closure path
// (ImplicitPair.HammerOncePrivileged) against the compiled program
// (bench.CompilePrivileged), for iters iterations, including the
// privileged-operation counters advancing in lockstep.
func Privileged(newMachine Factory, maxRegions, iters int) error {
	mc, err := newMachine()
	if err != nil {
		return err
	}
	mp, err := newMachine()
	if err != nil {
		return err
	}
	pairC, ok := bench.FindImplicitAggressors(mc, maxRegions)
	if !ok {
		return fmt.Errorf("closure arm: no aggressor pair within %d regions", maxRegions)
	}
	pairP, ok := bench.FindImplicitAggressors(mp, maxRegions)
	if !ok {
		return fmt.Errorf("compiled arm: no aggressor pair within %d regions", maxRegions)
	}
	if pairC != pairP {
		return fmt.Errorf("aggressor pairs diverged:\nclosure  %+v\ncompiled %+v", pairC, pairP)
	}
	prog, err := bench.CompilePrivileged(mp, pairP)
	if err != nil {
		return err
	}
	if !prog.Privileged() {
		return fmt.Errorf("compiled baseline program does not report privileged ops")
	}
	ex, err := payload.NewExecutor(prog)
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		pairC.HammerOncePrivileged(mc)
		ex.Run(mp)
		if err := CheckState(mc, mp); err != nil {
			return fmt.Errorf("iter %d: %w", i, err)
		}
	}
	f, inv := mp.PrivilegedOps()
	if f != uint64(2*iters) || inv != uint64(2*iters) {
		return fmt.Errorf("compiled baseline issued (%d, %d) privileged ops, want (%d, %d)", f, inv, 2*iters, 2*iters)
	}
	return nil
}

// Sweep checks the sweep engine's replay lowering: the same Spec run
// once through the compiled per-shard programs and once with
// ClosureReplay forced must produce bit-identical histograms at every
// padding value.
func Sweep(spec sweep.Spec) error {
	spec.ClosureReplay = false
	compiled, err := sweep.Run(spec)
	if err != nil {
		return fmt.Errorf("compiled arm: %w", err)
	}
	spec.ClosureReplay = true
	closure, err := sweep.Run(spec)
	if err != nil {
		return fmt.Errorf("closure arm: %w", err)
	}
	if len(compiled.Points) != len(closure.Points) {
		return fmt.Errorf("point counts diverged: compiled %d, closure %d", len(compiled.Points), len(closure.Points))
	}
	for i, cp := range compiled.Points {
		kp := closure.Points[i]
		if cp.Padding != kp.Padding {
			return fmt.Errorf("point %d: paddings diverged: compiled %d, closure %d", i, cp.Padding, kp.Padding)
		}
		if !cp.Hist.Equal(kp.Hist) {
			return fmt.Errorf("padding %d: histograms diverged (compiled %d samples, closure %d)",
				cp.Padding, cp.Hist.Total(), kp.Hist.Total())
		}
	}
	return nil
}
