package difftest

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pthammer/internal/bench"
	"pthammer/internal/cache"
	"pthammer/internal/dram"
	"pthammer/internal/evset"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
	"pthammer/internal/payload"
	"pthammer/internal/phys"
	"pthammer/internal/sweep"
	"pthammer/internal/timing"
	"pthammer/internal/tlb"
)

// seedConfig perturbs the SandyBridge preset per seed: row count, noise
// on/off, eviction-set tuning. Every variant keeps the DRAM capacity
// and MemBytes in agreement.
func seedConfig(seed int64) machine.Config {
	cfg := machine.SandyBridge()
	if seed%2 == 1 {
		cfg.DRAM.Rows = 4096
		cfg.MemBytes = cfg.DRAM.Capacity()
	}
	if seed%3 == 0 {
		cfg.NoiseSeed = seed
		cfg.NoiseProb = 0.05
		cfg.NoiseMin = 50
		cfg.NoiseMax = 300
	}
	return cfg
}

func factory(t *testing.T, cfg machine.Config) Factory {
	t.Helper()
	return func() (*machine.Machine, error) { return machine.New(cfg) }
}

// TestHammerEquivalenceAcrossSeeds is the headline acceptance check:
// the compiled implicit-hammer program is bit-identical to the closure
// path on 8 perturbed machine configurations.
func TestHammerEquivalenceAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		opt := evset.Options{}
		if seed%4 == 2 {
			opt.Trials = 5
		}
		iters := 6 + int(seed)*3
		if err := Hammer(factory(t, seedConfig(seed)), 256, iters, opt); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPrivilegedEquivalenceAcrossSeeds pins the invlpg+clflush baseline
// lowering, including the privileged-op counters moving in lockstep.
func TestPrivilegedEquivalenceAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		iters := 5 + int(seed)*2
		if err := Privileged(factory(t, seedConfig(seed)), 256, iters); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestSweepReplayEquivalence pins the per-shard replay lowering for all
// three sweep modes — plain, FlushBetween and EvictBetween — across
// seeds, noise, worker counts and stream lengths.
func TestSweepReplayEquivalence(t *testing.T) {
	base := machine.SandyBridge()
	noisy := base
	noisy.NoiseProb = 0.1
	noisy.NoiseMin = 100
	noisy.NoiseMax = 500
	addrs := []phys.Addr{0, 0x1000, 0x2000, 0x41000, 0x82000, 0x200000, 0x5000, 0x6000}
	specs := []struct {
		name string
		spec sweep.Spec
	}{
		{"plain", sweep.Spec{Machine: base, Addrs: addrs[:3], PadMin: 0, PadMax: 20, PadStep: 10, Reps: 6, BaseSeed: 1}},
		{"flush-noisy", sweep.Spec{Machine: noisy, Addrs: addrs, PadMin: 0, PadMax: 40, PadStep: 10, Reps: 10, FlushBetween: true, BaseSeed: 42}},
		{"flush-single-worker", sweep.Spec{Machine: noisy, Addrs: addrs[:5], PadMin: 0, PadMax: 30, PadStep: 15, Reps: 8, FlushBetween: true, Workers: 1, BaseSeed: 7}},
		{"evict", sweep.Spec{Machine: base, Addrs: addrs[:2], PadMin: 0, PadMax: 10, PadStep: 10, Reps: 5, EvictBetween: true, BaseSeed: 3}},
	}
	for _, tc := range specs {
		t.Run(tc.name, func(t *testing.T) {
			if err := Sweep(tc.spec); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHammerEquivalenceWithFlips runs the equivalence check on the
// escalation demo machine — lowered hammer threshold, shortened refresh
// window, class-A flip model — long enough for disturbance errors to
// land, so the Flips comparison in CheckState is exercised with a
// non-empty record.
func TestHammerEquivalenceWithFlips(t *testing.T) {
	const seed = 1
	newMachine := func() (*machine.Machine, error) {
		model, err := flip.NewModel(flip.ClassA(), seed)
		if err != nil {
			return nil, err
		}
		return machine.New(bench.EscalationConfig(model))
	}
	if err := Hammer(newMachine, 500, 150, evset.Options{}); err != nil {
		t.Fatal(err)
	}
	// Re-run one arm alone to confirm the workload actually flips bits:
	// an empty flip record would make the comparison vacuous.
	m, err := newMachine()
	if err != nil {
		t.Fatal(err)
	}
	h, err := bench.NewImplicitHammer(m, 500, evset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		h.HammerOnce(m)
	}
	if len(m.Flips()) == 0 {
		t.Fatal("escalation-config hammer produced no flips; the Flips equality check is vacuous")
	}
}

// TestCheckStateDetectsDivergence drives CheckState's failure
// branches: the harness is only trustworthy if it actually notices each
// kind of drift it claims to pin.
func TestCheckStateDetectsDivergence(t *testing.T) {
	build := func() *machine.Machine { return machine.MustNew(machine.SandyBridge()) }

	t.Run("clock", func(t *testing.T) {
		a, b := build(), build()
		a.Clock().Advance(10)
		if err := CheckState(a, b); err == nil || !strings.Contains(err.Error(), "clock diverged") {
			t.Fatalf("err = %v, want clock divergence", err)
		}
	})
	t.Run("pmc", func(t *testing.T) {
		a, b := build(), build()
		before := a.Clock().Now()
		a.Load(0)
		// Match the clocks exactly so the PMC comparison is what fires.
		b.Clock().Advance(a.Clock().Now() - before)
		if err := CheckState(a, b); err == nil || !strings.Contains(err.Error(), "PMC banks diverged") {
			t.Fatalf("err = %v, want PMC divergence", err)
		}
	})
	t.Run("privileged-ops", func(t *testing.T) {
		a, b := build(), build()
		// InvalidatePage charges no cycles and no PMC events, so only
		// the privileged-op counters drift apart.
		a.InvalidatePage(0)
		if err := CheckState(a, b); err == nil || !strings.Contains(err.Error(), "privileged ops diverged") {
			t.Fatalf("err = %v, want privileged-op divergence", err)
		}
	})
	t.Run("identical", func(t *testing.T) {
		if err := CheckState(build(), build()); err != nil {
			t.Fatalf("fresh twins diverged: %v", err)
		}
	})
}

// TestHarnessErrorPaths: the harness surfaces construction failures
// instead of masking them as equivalence verdicts.
func TestHarnessErrorPaths(t *testing.T) {
	boom := func() (*machine.Machine, error) { return nil, errFactory }
	if err := Hammer(boom, 256, 1, evset.Options{}); err == nil {
		t.Fatal("Hammer swallowed a factory error")
	}
	if err := Privileged(boom, 256, 1); err == nil {
		t.Fatal("Privileged swallowed a factory error")
	}
	good := factory(t, machine.SandyBridge())
	// maxRegions 0 leaves no aggressor candidates at all.
	if err := Hammer(good, 0, 1, evset.Options{}); err == nil || !strings.Contains(err.Error(), "closure arm") {
		t.Fatalf("Hammer err = %v, want closure-arm construction failure", err)
	}
	if err := Privileged(good, 0, 1); err == nil || !strings.Contains(err.Error(), "closure arm") {
		t.Fatalf("Privileged err = %v, want closure-arm failure", err)
	}
	if err := Sweep(sweep.Spec{}); err == nil || !strings.Contains(err.Error(), "compiled arm") {
		t.Fatalf("Sweep err = %v, want compiled-arm failure on an empty spec", err)
	}
}

var errFactory = errors.New("factory deliberately failing")

// randomDevice is a property-test machine: small geometry, randomized
// per seed, everything deterministic given the seed.
func randomConfig(r *rand.Rand) machine.Config {
	d := dram.Config{
		Channels:        1 << r.Intn(2),
		RanksPerChannel: 1,
		BanksPerRank:    1 << r.Intn(3),
		Rows:            1024,
		RowBytes:        uint64(4096 << r.Intn(2)),
		HammerThreshold: 1 << 20,
	}
	return machine.Config{
		MemBytes:  d.Capacity(),
		FreqHz:    2_100_000_000,
		Lat:       timing.DefaultLatencies(),
		DRAM:      d,
		L1:        cache.Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: 64},
		L2:        cache.Config{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64},
		LLC:       cache.Config{SizeBytes: uint64(128<<10) << r.Intn(2), Ways: 8, LineBytes: 64},
		TLB:       tlb.Config{L1Entries: 16, L1Ways: 4, L2Entries: 64 << r.Intn(2), L2Ways: 4},
		NoiseSeed: r.Int63(),
		NoiseProb: float64(r.Intn(2)) * 0.1,
		NoiseMin:  50,
		NoiseMax:  400,
	}
}

// TestRandomProgramsMatchClosureReplay is the seeded property test:
// random op sequences over random geometries and stream lengths,
// executed once through the compiled executor and once as the
// equivalent hand-written closure, must leave identically-seeded
// machines in identical state.
func TestRandomProgramsMatchClosureReplay(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		mc, err := machine.New(cfg) // closure arm
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mp, err := machine.New(cfg) // compiled arm
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		pageCount := cfg.MemBytes / phys.FrameSize
		randPage := func() phys.Addr {
			// Low half of memory only: the top of memory holds the
			// machine's page-table pool.
			return phys.Addr((r.Uint64() % (pageCount / 2)) << phys.FrameShift)
		}
		stream := func() []phys.Addr {
			out := make([]phys.Addr, 1+r.Intn(24))
			for i := range out {
				out[i] = randPage() + phys.Addr(uint64(r.Intn(64))*64)
			}
			return out
		}

		// Build a random program and its closure twin op by op. The
		// closure twin is a list of deferred machine calls, replayed
		// after compilation so both arms run from identical cold state.
		c := payload.NewCompiler()
		var closure []func(m *machine.Machine)
		nops := 4 + r.Intn(12)
		for i := 0; i < nops; i++ {
			switch r.Intn(7) {
			case 0:
				a := randPage()
				c.Load(a)
				closure = append(closure, func(m *machine.Machine) { m.Load(a) })
			case 1:
				a := randPage() // page-aligned, so 8-byte aligned
				v := r.Uint64()
				c.Store64(a, v)
				closure = append(closure, func(m *machine.Machine) { m.Store64(a, v) })
			case 2:
				s := stream()
				c.Prime(s)
				closure = append(closure, func(m *machine.Machine) { m.Prime(s) })
			case 3:
				s := stream()
				c.TLBThrash(s)
				closure = append(closure, func(m *machine.Machine) {
					for _, a := range s {
						m.Load(a)
					}
				})
			case 4:
				a := randPage()
				c.Probe(a)
				closure = append(closure, func(m *machine.Machine) { m.Probe(a) })
			case 5:
				n := timing.Cycles(r.Intn(500))
				c.Advance(n)
				closure = append(closure, func(m *machine.Machine) { m.Clock().Advance(n) })
			case 6:
				trips := uint32(2 + r.Intn(3))
				s := stream()
				c.Loop(trips, func(c *payload.Compiler) { c.Prime(s) })
				closure = append(closure, func(m *machine.Machine) {
					for k := uint32(0); k < trips; k++ {
						m.Prime(s)
					}
				})
			}
		}
		prog, err := c.Compile(cfg.MemBytes)
		if err != nil {
			t.Fatalf("seed %d: Compile: %v", seed, err)
		}
		ex, err := payload.NewExecutor(prog)
		if err != nil {
			t.Fatalf("seed %d: NewExecutor: %v", seed, err)
		}

		// Two full runs back to back: the second exercises loop-counter
		// reset and warm-state replay.
		for run := 0; run < 2; run++ {
			start := mp.Clock().Now()
			tr := ex.Run(mp)
			if delta := mp.Clock().Now() - start; delta != tr.Cycles {
				t.Fatalf("seed %d run %d: clock advanced %d but trace says %d", seed, run, delta, tr.Cycles)
			}
			for _, f := range closure {
				f(mc)
			}
			if err := CheckState(mc, mp); err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
		}
	}
}
