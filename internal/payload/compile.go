// The payload compiler: an append-only builder that lowers a scenario
// body into a Program. Scenario-specific lowering lives next to the
// scenarios (bench.CompileHammer, bench.CompilePrivileged, the sweep
// engine's replay compiler); this type is the shared substrate they
// emit through. Loops are expressed structurally (Loop with a body
// callback), so every compiled program is backward-jumping and
// well-nested by construction.
package payload

import (
	"pthammer/internal/phys"
	"pthammer/internal/timing"
)

// Compiler builds a Program op by op. The zero value is ready to use;
// emit ops, then Compile to validate and seal the program.
type Compiler struct {
	prog Program
}

// NewCompiler returns an empty compiler.
func NewCompiler() *Compiler { return &Compiler{} }

// addr interns one address into the table and returns its index.
func (c *Compiler) addr(a phys.Addr) uint32 {
	c.prog.Addrs = append(c.prog.Addrs, a)
	return uint32(len(c.prog.Addrs) - 1)
}

// addrRange appends a contiguous copy of the stream to the table,
// returning its start index. The copy keeps the program self-contained:
// mutating the source slice later cannot change the compiled program.
func (c *Compiler) addrRange(as []phys.Addr) (start, n uint32) {
	start = uint32(len(c.prog.Addrs))
	c.prog.Addrs = append(c.prog.Addrs, as...)
	return start, uint32(len(as))
}

// val interns one 64-bit value and returns its index.
func (c *Compiler) val(v uint64) uint32 {
	c.prog.Vals = append(c.prog.Vals, v)
	return uint32(len(c.prog.Vals) - 1)
}

func (c *Compiler) emit(op Op) { c.prog.Ops = append(c.prog.Ops, op) }

// Load emits a demand load of a.
func (c *Compiler) Load(a phys.Addr) { c.emit(Op{Code: OpLoad, A: c.addr(a)}) }

// Store64 emits a demand store of v at a (8-byte aligned).
func (c *Compiler) Store64(a phys.Addr, v uint64) {
	c.emit(Op{Code: OpStore64, A: c.addr(a), B: c.val(v)})
}

// Prime emits a machine.Prime walk over the stream — the eviction-set
// primitive (the unprivileged invlpg/clflush).
func (c *Compiler) Prime(as []phys.Addr) {
	start, n := c.addrRange(as)
	c.emit(Op{Code: OpPrime, A: start, B: n})
}

// TLBThrash emits individual demand loads over the stream (a plain
// page-stride walk, without Prime's fault-model hooks).
func (c *Compiler) TLBThrash(as []phys.Addr) {
	start, n := c.addrRange(as)
	c.emit(Op{Code: OpTLBThrash, A: start, B: n})
}

// Probe emits a timed, PMC-decoded load of a; its verdicts fold into
// the run's Trace.
func (c *Compiler) Probe(a phys.Addr) { c.emit(Op{Code: OpProbe, A: c.addr(a)}) }

// LoadRec emits demand loads over the stream, recording each latency
// into the executor's record buffer (the sweep histogram feed).
func (c *Compiler) LoadRec(as []phys.Addr) {
	start, n := c.addrRange(as)
	c.emit(Op{Code: OpLoadRec, A: start, B: n})
}

// Advance emits a clock advance of n cycles (NOP padding).
func (c *Compiler) Advance(n timing.Cycles) {
	c.emit(Op{Code: OpAdvance, A: c.val(uint64(n))})
}

// ResetWindow emits a DRAM refresh-window reset.
func (c *Compiler) ResetWindow() { c.emit(Op{Code: OpResetWindow}) }

// Invlpg emits the privileged invlpg of a — baseline programs only.
func (c *Compiler) Invlpg(a phys.Addr) { c.emit(Op{Code: OpInvlpg, A: c.addr(a)}) }

// Flush emits the privileged clflush of a's line — baseline programs
// only.
func (c *Compiler) Flush(a phys.Addr) { c.emit(Op{Code: OpFlush, A: c.addr(a)}) }

// Fence emits a serialization marker (no machine effect).
func (c *Compiler) Fence() { c.emit(Op{Code: OpFence}) }

// Loop emits body trips times: the callback appends the body once, and
// a backward OpLoop closes it. Nested Loop calls produce well-nested
// spans by construction. trips of 0 elides the body entirely.
func (c *Compiler) Loop(trips uint32, body func(*Compiler)) {
	if trips == 0 {
		return
	}
	start := uint32(len(c.prog.Ops))
	body(c)
	if len(c.prog.Ops) == int(start) {
		return // empty body: nothing to repeat
	}
	c.emit(Op{Code: OpLoop, A: start, B: trips})
}

// Compile validates the built program against the target memory size
// and returns it. The compiler must not be reused afterwards.
func (c *Compiler) Compile(memBytes uint64) (*Program, error) {
	p := c.prog
	if err := p.Validate(memBytes); err != nil {
		return nil, err
	}
	return &p, nil
}
