// Package perf models the Intel Performance Monitoring Counters (PMCs)
// the paper programs through a helper kernel module. The eviction-set
// sizing algorithms (paper Algorithm 1 and its LLC analogue) read these
// counters as ground truth for whether a target access really missed the
// TLB or the last-level cache.
package perf

import "fmt"

// Event identifies one countable microarchitectural event. The names
// mirror the Intel event mnemonics used in the paper.
type Event int

const (
	// DTLBLoadMissesWalk counts loads that missed all TLB levels and
	// caused a page walk (dtlb_load_misses.miss_causes_a_walk).
	DTLBLoadMissesWalk Event = iota
	// DTLBLoadMissesL1 counts loads that missed only the first-level TLB.
	DTLBLoadMissesL1
	// LongestLatCacheMiss counts last-level cache misses
	// (longest_lat_cache.miss).
	LongestLatCacheMiss
	// LLCReference counts LLC lookups.
	LLCReference
	// DRAMActivate counts DRAM row activations (ACT commands).
	DRAMActivate
	// DRAMRowConflicts counts row-buffer conflicts.
	DRAMRowConflicts
	// PageWalkCompleted counts completed hardware page walks.
	PageWalkCompleted
	// PSCacheHit counts partial translations served by paging-structure
	// caches.
	PSCacheHit
	// L1PTEMemoryFetch counts level-1 page-table entries fetched from
	// DRAM (the implicit hammer accesses PThammer relies on).
	L1PTEMemoryFetch
	// WalkStepPML4E..WalkStepPTE count the entry fetches the walker
	// issued at each level; a paging-structure cache hit suppresses the
	// upper-level steps it skips, so the per-level split is what the
	// PS-cache experiments read.
	WalkStepPML4E
	// WalkStepPDPTE counts PDPT-level entry fetches.
	WalkStepPDPTE
	// WalkStepPDE counts PD-level entry fetches.
	WalkStepPDE
	// WalkStepPTE counts PT-level (leaf) entry fetches.
	WalkStepPTE

	numEvents
)

// String returns the Intel-style mnemonic for the event.
func (e Event) String() string {
	switch e {
	case DTLBLoadMissesWalk:
		return "dtlb_load_misses.miss_causes_a_walk"
	case DTLBLoadMissesL1:
		return "dtlb_load_misses.stlb_hit"
	case LongestLatCacheMiss:
		return "longest_lat_cache.miss"
	case LLCReference:
		return "longest_lat_cache.reference"
	case DRAMActivate:
		return "dram.activate"
	case DRAMRowConflicts:
		return "dram.row_conflict"
	case PageWalkCompleted:
		return "page_walker.walks_completed"
	case PSCacheHit:
		return "page_walker.pscache_hit"
	case L1PTEMemoryFetch:
		return "page_walker.l1pte_memory_fetch"
	case WalkStepPML4E:
		return "page_walker.step_pml4e"
	case WalkStepPDPTE:
		return "page_walker.step_pdpte"
	case WalkStepPDE:
		return "page_walker.step_pde"
	case WalkStepPTE:
		return "page_walker.step_pte"
	default:
		return fmt.Sprintf("perf.Event(%d)", int(e))
	}
}

// Counters is a bank of event counters. The zero value is ready to use.
type Counters struct {
	counts [numEvents]uint64
}

// Inc adds one to the event's counter.
//
//pthammer:noalloc
func (c *Counters) Inc(e Event) { c.counts[e]++ }

// Add adds n to the event's counter.
//
//pthammer:noalloc
func (c *Counters) Add(e Event, n uint64) { c.counts[e] += n }

// Read returns the current value of the event's counter.
//
//pthammer:noalloc
func (c *Counters) Read(e Event) uint64 { return c.counts[e] }

// Reset zeroes every counter.
func (c *Counters) Reset() {
	for i := range c.counts {
		c.counts[i] = 0
	}
}

// Snapshot captures all counter values, for delta measurements around a
// profiled operation. The copy is a fixed-size array, so taking one in a
// hot loop costs no heap traffic.
//
//pthammer:noalloc
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	s.counts = c.counts
	return s
}

// Snapshot is an immutable copy of the counter bank.
type Snapshot struct {
	counts [numEvents]uint64
}

// Delta returns how much the event advanced since the snapshot was taken.
//
//pthammer:noalloc
func (s Snapshot) Delta(c *Counters, e Event) uint64 {
	return c.counts[e] - s.counts[e]
}

// Advanced reports whether the event moved at all since the snapshot —
// the boolean the eviction-set verdicts ask ("did this load cause a
// walk?", "did the leaf PTE come from DRAM?") without caring by how
// much.
//
//pthammer:noalloc
func (s Snapshot) Advanced(c *Counters, e Event) bool {
	return c.counts[e] != s.counts[e]
}
