package perf

import (
	"strings"
	"testing"
)

func TestIncAddReadReset(t *testing.T) {
	var c Counters
	c.Inc(DRAMActivate)
	c.Inc(DRAMActivate)
	c.Add(LLCReference, 40)
	if got := c.Read(DRAMActivate); got != 2 {
		t.Fatalf("DRAMActivate = %d, want 2", got)
	}
	if got := c.Read(LLCReference); got != 40 {
		t.Fatalf("LLCReference = %d, want 40", got)
	}
	if got := c.Read(PageWalkCompleted); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
	c.Reset()
	if c.Read(DRAMActivate) != 0 || c.Read(LLCReference) != 0 {
		t.Fatal("Reset left counters nonzero")
	}
}

func TestSnapshotDelta(t *testing.T) {
	var c Counters
	c.Add(DTLBLoadMissesWalk, 5)
	s := c.Snapshot()
	c.Add(DTLBLoadMissesWalk, 3)
	c.Inc(LongestLatCacheMiss)
	if got := s.Delta(&c, DTLBLoadMissesWalk); got != 3 {
		t.Fatalf("walk delta = %d, want 3", got)
	}
	if got := s.Delta(&c, LongestLatCacheMiss); got != 1 {
		t.Fatalf("LLC miss delta = %d, want 1", got)
	}
	if got := s.Delta(&c, DRAMActivate); got != 0 {
		t.Fatalf("untouched delta = %d, want 0", got)
	}
	// Snapshot is a copy: further increments don't change it.
	s2 := c.Snapshot()
	c.Inc(DTLBLoadMissesWalk)
	if got := s2.Delta(&c, DTLBLoadMissesWalk); got != 1 {
		t.Fatalf("second delta = %d, want 1", got)
	}
}

func TestSnapshotAdvanced(t *testing.T) {
	var c Counters
	c.Add(L1PTEMemoryFetch, 7)
	s := c.Snapshot()
	if s.Advanced(&c, L1PTEMemoryFetch) {
		t.Fatal("unmoved counter reported as advanced")
	}
	c.Inc(L1PTEMemoryFetch)
	if !s.Advanced(&c, L1PTEMemoryFetch) {
		t.Fatal("moved counter not reported as advanced")
	}
	if s.Advanced(&c, DRAMActivate) {
		t.Fatal("untouched event reported as advanced")
	}
}

func TestEventStrings(t *testing.T) {
	want := map[Event]string{
		DTLBLoadMissesWalk:  "dtlb_load_misses.miss_causes_a_walk",
		DTLBLoadMissesL1:    "dtlb_load_misses.stlb_hit",
		LongestLatCacheMiss: "longest_lat_cache.miss",
		LLCReference:        "longest_lat_cache.reference",
		DRAMActivate:        "dram.activate",
		DRAMRowConflicts:    "dram.row_conflict",
		PageWalkCompleted:   "page_walker.walks_completed",
		PSCacheHit:          "page_walker.pscache_hit",
		L1PTEMemoryFetch:    "page_walker.l1pte_memory_fetch",
	}
	for e, s := range want {
		if got := e.String(); got != s {
			t.Errorf("%d.String() = %q, want %q", int(e), got, s)
		}
	}
	if got := Event(999).String(); !strings.Contains(got, "999") {
		t.Errorf("unknown event String = %q", got)
	}
}
