package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fullReport renders all four scenarios at the default seeds, with the
// population rows scaled down to keep the test quick (200 tenants per
// row is still enough for every row's story assertion to hold).
func fullReport(t *testing.T) []byte {
	t.Helper()
	out, err := render(params{
		scenario: "all", seed: 4, windows: 4, xtSeed: 1, xtWindows: 60,
		pool: 8, popTenants: 200, popSeed: 1, popWindows: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReportDeterministic is the command's contract: two renders
// produce bit-identical bytes — the property the CI multicore leg
// asserts by diffing full invocations across reruns and -procs values.
func TestReportDeterministic(t *testing.T) {
	a := fullReport(t)
	b := fullReport(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ across reruns:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestReportLayout pins the table layout downstream tooling parses,
// and the outcomes the scenarios gate on: solo/quiet vs duo, dilution,
// and the cross-tenant breach.
func TestReportLayout(t *testing.T) {
	out := string(fullReport(t))
	for _, want := range []string{
		"# pthammer-mt preset=SandyBridge(escalation scale) scenario=all\n",
		"# table 1: mt-colocated-amplify",
		"arm\tcores\tpeak_pressure\tflips\titerations",
		"\nsolo\t1\t", "\nduo\t2\t",
		"# table 2: mt-noisy-neighbour",
		"arm\tpeak_pressure\tflips\tattacker_iters\tbystander_loads",
		"\nquiet\t", "\nnoisy\t",
		"# table 3: mt-cross-tenant-escalation",
		"attacker_rows\tvictim_row\twindows\titerations\tflips\tdiverged_va\thijacked_frame\tbreached",
		"\ttrue\n",
		"# table 4: mt-population",
		"layout\tclass\ttenants\tbreached_per_M\tdiluted_per_M\ttable_flips_per_M\tmean_peak_pressure\tmax_peak_pressure\tmean_iters",
		"\ninterleaved\tA\t", "\ninterleaved\tB\t", "\ninterleaved\tC\t",
		"\nblocked\tA\t", "\nblocked\tB\t", "\nblocked\tC\t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Nothing scheduling-dependent may leak into the bytes.
	if strings.Contains(out, "procs") {
		t.Errorf("report mentions procs; its bytes must be -procs-independent:\n%s", out)
	}
}

// TestRunSingleScenario: -scenario selects exactly one table.
func TestRunSingleScenario(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "amplify"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "# table 1: mt-colocated-amplify") {
		t.Errorf("amplify table missing:\n%s", out)
	}
	for _, absent := range []string{"# table 2", "# table 3", "# table 4"} {
		if strings.Contains(out, absent) {
			t.Errorf("unexpected %s in -scenario amplify output:\n%s", absent, out)
		}
	}
}

// TestRunPopulationScenario: -scenario population emits only table 4,
// and its bytes are independent of the pool's front-end count.
func TestRunPopulationScenario(t *testing.T) {
	render := func(pool string) string {
		var stdout, stderr bytes.Buffer
		args := []string{"-scenario", "population", "-pop-tenants", "120", "-pool", pool}
		if code := run(args, &stdout, &stderr); code != exitOK {
			t.Fatalf("exit %d, stderr: %s", code, stderr.String())
		}
		return stdout.String()
	}
	out := render("8")
	if !strings.Contains(out, "# table 4: mt-population") {
		t.Errorf("population table missing:\n%s", out)
	}
	for _, absent := range []string{"# table 1", "# table 2", "# table 3"} {
		if strings.Contains(out, absent) {
			t.Errorf("unexpected %s in -scenario population output:\n%s", absent, out)
		}
	}
	if narrow := render("4"); narrow != out {
		t.Errorf("population bytes depend on the pool size:\n--- pool 8 ---\n%s--- pool 4 ---\n%s", out, narrow)
	}
}

// TestRunWritesFile: -o writes the report to the given path.
func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mt.tsv")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", "noisy", "-o", path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# table 2: mt-noisy-neighbour") {
		t.Errorf("file missing the noisy table:\n%s", data)
	}
}

// TestRunUsageErrors: bad flags exit 2 without running anything.
func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-windows", "0"},
		{"-xt-windows", "-1"},
		{"-pop-windows", "0"},
		{"-pool", "1"},
		{"-pop-tenants", "0"},
		{"-procs", "-2"},
		{"stray"},
		{"-not-a-flag"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitUsage {
			t.Errorf("args %q: exit %d, want %d (stderr: %s)", args, code, exitUsage, stderr.String())
		}
	}
}
