// Command pthammer-mt runs the multi-tenant scenarios — the attacks
// only a machine with concurrent per-core front-ends over a shared LLC
// and banked DRAM can express — and tabulates their outcomes:
//
//   - mt-colocated-amplify: one attacker core stays below the flip
//     threshold; two co-located cores hammering the same aggressor
//     pair cross it.
//   - mt-noisy-neighbour: a memory-streaming bystander tenant closes
//     the attacker's open DRAM rows and steals bank arbitration slots,
//     diluting its pressure below the threshold the quiet arm crosses.
//   - mt-cross-tenant-escalation: tenant page-table pools striped
//     across adjacent DRAM rows let the attacker hammer its own
//     leaf-PTE rows until a flip in the sandwiched victim row remaps a
//     victim page onto an attacker-owned frame; the attacker's marker
//     read back through the victim's own translation is the breach.
//   - mt-population: thousands of attacker/victim tenant pairs
//     time-sliced over a bounded pool of recycled front-ends
//     (internal/cohort), tabulating breach, dilution and table-flip
//     rates per 10⁶ tenants across module classes A/B/C and both table
//     striping layouts.
//
// Every core runs in its own goroutine, but the interleaver grants
// quanta lowest-clock-first with a fixed tiebreak, so the output bytes
// are a pure function of the flags — in particular independent of
// -procs (GOMAXPROCS) and of -pool (the population runs' front-end
// count). CI asserts this by diffing runs at -procs 1, 2 and 4, twice
// each, and the population table additionally across two -pool sizes.
//
// Usage:
//
//	pthammer-mt [-scenario all|amplify|noisy|cross-tenant|population]
//	            [-seed N] [-windows N] [-xt-seed N] [-xt-windows N]
//	            [-pool N] [-pop-tenants N] [-pop-seed N] [-pop-windows N]
//	            [-procs N] [-o FILE]
//
// Exit codes: 0 success, 1 simulation failure, 2 usage error, 3 output
// write failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pthammer/internal/bench"
	"pthammer/internal/cohort"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitWrite   = 3
)

// renderAmplify runs both co-location arms and appends table 1.
func renderAmplify(buf *bytes.Buffer, seed int64, windows int) error {
	res, err := bench.RunColocatedAmplify(seed, windows)
	if err != nil {
		return fmt.Errorf("amplify: %w", err)
	}
	fmt.Fprintf(buf, "# table 1: mt-colocated-amplify — same pair, one core vs two co-located cores (seed=%d windows=%d)\n", seed, windows)
	fmt.Fprintf(buf, "arm\tcores\tpeak_pressure\tflips\titerations\n")
	fmt.Fprintf(buf, "solo\t1\t%d\t%d\t%d\n", res.SoloPressure, res.SoloFlips, res.SoloIters)
	fmt.Fprintf(buf, "duo\t2\t%d\t%d\t%d\n", res.DuoPressure, res.DuoFlips, res.DuoIters)
	if res.SoloFlips != 0 || res.DuoFlips == 0 {
		return fmt.Errorf("amplify: co-location did not gate the flips: %+v", res)
	}
	return nil
}

// renderNoisy runs both neighbour arms and appends table 2.
func renderNoisy(buf *bytes.Buffer, seed int64, windows int) error {
	res, err := bench.RunNoisyNeighbour(seed, windows)
	if err != nil {
		return fmt.Errorf("noisy: %w", err)
	}
	fmt.Fprintf(buf, "# table 2: mt-noisy-neighbour — attacker next to an idle vs streaming bystander tenant (seed=%d windows=%d)\n", seed, windows)
	fmt.Fprintf(buf, "arm\tpeak_pressure\tflips\tattacker_iters\tbystander_loads\n")
	fmt.Fprintf(buf, "quiet\t%d\t%d\t%d\t0\n", res.QuietPressure, res.QuietFlips, res.QuietIters)
	fmt.Fprintf(buf, "noisy\t%d\t%d\t%d\t%d\n", res.NoisyPressure, res.NoisyFlips, res.NoisyIters, res.BystanderLoads)
	if res.QuietFlips == 0 || res.NoisyFlips != 0 {
		return fmt.Errorf("noisy: bystander did not dilute the flips: %+v", res)
	}
	return nil
}

// renderCrossTenant runs the escalation chain and appends table 3.
func renderCrossTenant(buf *bytes.Buffer, seed int64, maxWindows int) error {
	res, err := bench.RunCrossTenantEscalation(seed, maxWindows)
	if err != nil {
		return fmt.Errorf("cross-tenant: %w", err)
	}
	fmt.Fprintf(buf, "# table 3: mt-cross-tenant-escalation — striped table pools, victim row sandwiched by attacker rows (seed=%d budget=%d windows)\n", seed, maxWindows)
	fmt.Fprintf(buf, "attacker_rows\tvictim_row\twindows\titerations\tflips\tdiverged_va\thijacked_frame\tbreached\n")
	fmt.Fprintf(buf, "%d,%d\t%d\t%d\t%d\t%d\t%#x\t%#x\t%v\n",
		res.AttackerRows[0], res.AttackerRows[1], res.VictimRow,
		res.Windows, res.Iterations, res.Flips,
		uint64(res.DivergedVA), uint64(res.HijackedFrame.Addr()), res.Breached)
	if !res.Breached {
		return fmt.Errorf("cross-tenant: no breach: %+v", res)
	}
	return nil
}

// renderPopulation runs tenant populations through bounded cohort
// pools and appends table 4. Every class reuses the layout's pool —
// the construct-once/reset-many lifecycle the cohort scheduler exists
// for — and each row's story is asserted before the bytes are kept:
// interleaved striping must breach for class A and split the
// population between diluted and undiluted tenants, blocked striping
// must be fully defensive.
func renderPopulation(buf *bytes.Buffer, frontEnds, tenants int, seed int64, windows int) error {
	fmt.Fprintf(buf, "# table 4: mt-population — tenant populations over a bounded core pool, rates per 10^6 tenants (tenants=%d/row windows=%d seed=%d)\n",
		tenants, windows, seed)
	fmt.Fprintf(buf, "layout\tclass\ttenants\tbreached_per_M\tdiluted_per_M\ttable_flips_per_M\tmean_peak_pressure\tmax_peak_pressure\tmean_iters\n")
	for _, layout := range []machine.TableLayout{machine.LayoutInterleaved, machine.LayoutBlocked} {
		pool, err := cohort.NewPool(frontEnds, layout)
		if err != nil {
			return fmt.Errorf("population: %w", err)
		}
		flips := make([]int, 0, 3)
		for _, class := range []flip.Profile{flip.ClassA(), flip.ClassB(), flip.ClassC()} {
			pop, err := pool.Run(cohort.Spec{Profile: class, Tenants: tenants, Seed: seed, Windows: windows})
			if err != nil {
				return fmt.Errorf("population: %v class %s: %w", layout, class.Name, err)
			}
			fmt.Fprintf(buf, "%v\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
				layout, class.Name, pop.Tenants,
				pop.BreachedPerM(), pop.DilutedPerM(), pop.TableFlipsPerM(),
				pop.MeanPeakPressure, pop.MaxPeakPressure, pop.MeanIterations)
			flips = append(flips, pop.TableFlips)
			switch layout {
			case machine.LayoutInterleaved:
				if class.Name == "A" && pop.Breached == 0 {
					return fmt.Errorf("population: interleaved class A never breached: %+v", pop)
				}
				if pop.Diluted == 0 || pop.Diluted == pop.Tenants {
					return fmt.Errorf("population: interleaved class %s dilution is degenerate: %+v", class.Name, pop)
				}
			case machine.LayoutBlocked:
				if pop.Breached != 0 || pop.TableFlips != 0 || pop.Diluted != pop.Tenants {
					return fmt.Errorf("population: blocked class %s is not defensive: %+v", class.Name, pop)
				}
			}
		}
		if layout == machine.LayoutInterleaved && !(flips[0] >= flips[1] && flips[1] >= flips[2]) {
			return fmt.Errorf("population: table flips not monotone across classes: %v", flips)
		}
	}
	return nil
}

// params is one render's full input: the output bytes are a pure
// function of it (minus procs, which only sets GOMAXPROCS, and pool,
// which only sizes the population runs' front-end pool).
type params struct {
	scenario   string
	seed       int64
	windows    int
	xtSeed     int64
	xtWindows  int
	pool       int
	popTenants int
	popSeed    int64
	popWindows int
}

// render produces the full deterministic report for the selected
// scenario(s).
// The header deliberately omits -procs and -pool: CI diffs the bytes
// across both, so nothing scheduling- or pool-shape-dependent may
// appear in them.
func render(p params) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# pthammer-mt preset=SandyBridge(escalation scale) scenario=%s\n", p.scenario)
	if p.scenario == "all" || p.scenario == "amplify" {
		if err := renderAmplify(&buf, p.seed, p.windows); err != nil {
			return nil, err
		}
	}
	if p.scenario == "all" || p.scenario == "noisy" {
		if err := renderNoisy(&buf, p.seed, p.windows); err != nil {
			return nil, err
		}
	}
	if p.scenario == "all" || p.scenario == "cross-tenant" {
		if err := renderCrossTenant(&buf, p.xtSeed, p.xtWindows); err != nil {
			return nil, err
		}
	}
	if p.scenario == "all" || p.scenario == "population" {
		if err := renderPopulation(&buf, p.pool, p.popTenants, p.popSeed, p.popWindows); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// run is main with its environment made explicit, so the error paths
// are table-testable: args exclude the program name, and the return
// value is the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pthammer-mt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "all", "which scenario to run: all, amplify, noisy, cross-tenant or population")
	seed := fs.Int64("seed", 4, "flip-model seed for the amplify and noisy scenarios")
	windows := fs.Int("windows", 4, "refresh windows per arm for the amplify and noisy scenarios")
	xtSeed := fs.Int64("xt-seed", 1, "flip-model seed for the cross-tenant escalation")
	xtWindows := fs.Int("xt-windows", 60, "refresh-window budget for the cross-tenant escalation")
	pool := fs.Int("pool", 8, "front-ends in the population runs' core pool; the output must not depend on it")
	popTenants := fs.Int("pop-tenants", 2000, "tenants per population row (6 rows: 3 classes x 2 layouts)")
	popSeed := fs.Int64("pop-seed", 1, "population seed; per-tenant seeds are mixed from it")
	popWindows := fs.Int("pop-windows", 3, "refresh windows per tenant slice in the population runs")
	procs := fs.Int("procs", 0, "GOMAXPROCS for the run (0 keeps the runtime default); the output must not depend on it")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the parse error and usage.
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pthammer-mt: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return exitUsage
	}
	switch *scenario {
	case "all", "amplify", "noisy", "cross-tenant", "population":
	default:
		fmt.Fprintf(stderr, "pthammer-mt: unknown -scenario %q\n", *scenario)
		return exitUsage
	}
	if *windows < 1 || *xtWindows < 1 || *popWindows < 1 {
		fmt.Fprintf(stderr, "pthammer-mt: window counts must be positive (got %d, %d, %d)\n", *windows, *xtWindows, *popWindows)
		return exitUsage
	}
	if *pool < 2 || *popTenants < 1 {
		fmt.Fprintf(stderr, "pthammer-mt: population needs -pool >= 2 and -pop-tenants >= 1 (got %d, %d)\n", *pool, *popTenants)
		return exitUsage
	}
	if *procs < 0 {
		fmt.Fprintf(stderr, "pthammer-mt: -procs must be non-negative (got %d)\n", *procs)
		return exitUsage
	}
	if *procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(*procs))
	}

	report, err := render(params{
		scenario:   *scenario,
		seed:       *seed,
		windows:    *windows,
		xtSeed:     *xtSeed,
		xtWindows:  *xtWindows,
		pool:       *pool,
		popTenants: *popTenants,
		popSeed:    *popSeed,
		popWindows: *popWindows,
	})
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-mt:", err)
		return exitRuntime
	}
	if *out == "" {
		stdout.Write(report)
		return exitOK
	}
	if err := os.WriteFile(*out, report, 0o644); err != nil {
		fmt.Fprintln(stderr, "pthammer-mt:", err)
		return exitWrite
	}
	fmt.Fprintln(stdout, "wrote", *out)
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
