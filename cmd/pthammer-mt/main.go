// Command pthammer-mt runs the multi-tenant scenarios — the attacks
// only a machine with concurrent per-core front-ends over a shared LLC
// and banked DRAM can express — and tabulates their outcomes:
//
//   - mt-colocated-amplify: one attacker core stays below the flip
//     threshold; two co-located cores hammering the same aggressor
//     pair cross it.
//   - mt-noisy-neighbour: a memory-streaming bystander tenant closes
//     the attacker's open DRAM rows and steals bank arbitration slots,
//     diluting its pressure below the threshold the quiet arm crosses.
//   - mt-cross-tenant-escalation: tenant page-table pools striped
//     across adjacent DRAM rows let the attacker hammer its own
//     leaf-PTE rows until a flip in the sandwiched victim row remaps a
//     victim page onto an attacker-owned frame; the attacker's marker
//     read back through the victim's own translation is the breach.
//
// Every core runs in its own goroutine, but the interleaver grants
// quanta lowest-clock-first with a fixed tiebreak, so the output bytes
// are a pure function of the flags — in particular independent of
// -procs (GOMAXPROCS). CI asserts this by diffing runs at -procs 1, 2
// and 4, twice each.
//
// Usage:
//
//	pthammer-mt [-scenario all|amplify|noisy|cross-tenant] [-seed N]
//	            [-windows N] [-xt-seed N] [-xt-windows N] [-procs N] [-o FILE]
//
// Exit codes: 0 success, 1 simulation failure, 2 usage error, 3 output
// write failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"pthammer/internal/bench"
)

const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitWrite   = 3
)

// renderAmplify runs both co-location arms and appends table 1.
func renderAmplify(buf *bytes.Buffer, seed int64, windows int) error {
	res, err := bench.RunColocatedAmplify(seed, windows)
	if err != nil {
		return fmt.Errorf("amplify: %w", err)
	}
	fmt.Fprintf(buf, "# table 1: mt-colocated-amplify — same pair, one core vs two co-located cores (seed=%d windows=%d)\n", seed, windows)
	fmt.Fprintf(buf, "arm\tcores\tpeak_pressure\tflips\titerations\n")
	fmt.Fprintf(buf, "solo\t1\t%d\t%d\t%d\n", res.SoloPressure, res.SoloFlips, res.SoloIters)
	fmt.Fprintf(buf, "duo\t2\t%d\t%d\t%d\n", res.DuoPressure, res.DuoFlips, res.DuoIters)
	if res.SoloFlips != 0 || res.DuoFlips == 0 {
		return fmt.Errorf("amplify: co-location did not gate the flips: %+v", res)
	}
	return nil
}

// renderNoisy runs both neighbour arms and appends table 2.
func renderNoisy(buf *bytes.Buffer, seed int64, windows int) error {
	res, err := bench.RunNoisyNeighbour(seed, windows)
	if err != nil {
		return fmt.Errorf("noisy: %w", err)
	}
	fmt.Fprintf(buf, "# table 2: mt-noisy-neighbour — attacker next to an idle vs streaming bystander tenant (seed=%d windows=%d)\n", seed, windows)
	fmt.Fprintf(buf, "arm\tpeak_pressure\tflips\tattacker_iters\tbystander_loads\n")
	fmt.Fprintf(buf, "quiet\t%d\t%d\t%d\t0\n", res.QuietPressure, res.QuietFlips, res.QuietIters)
	fmt.Fprintf(buf, "noisy\t%d\t%d\t%d\t%d\n", res.NoisyPressure, res.NoisyFlips, res.NoisyIters, res.BystanderLoads)
	if res.QuietFlips == 0 || res.NoisyFlips != 0 {
		return fmt.Errorf("noisy: bystander did not dilute the flips: %+v", res)
	}
	return nil
}

// renderCrossTenant runs the escalation chain and appends table 3.
func renderCrossTenant(buf *bytes.Buffer, seed int64, maxWindows int) error {
	res, err := bench.RunCrossTenantEscalation(seed, maxWindows)
	if err != nil {
		return fmt.Errorf("cross-tenant: %w", err)
	}
	fmt.Fprintf(buf, "# table 3: mt-cross-tenant-escalation — striped table pools, victim row sandwiched by attacker rows (seed=%d budget=%d windows)\n", seed, maxWindows)
	fmt.Fprintf(buf, "attacker_rows\tvictim_row\twindows\titerations\tflips\tdiverged_va\thijacked_frame\tbreached\n")
	fmt.Fprintf(buf, "%d,%d\t%d\t%d\t%d\t%d\t%#x\t%#x\t%v\n",
		res.AttackerRows[0], res.AttackerRows[1], res.VictimRow,
		res.Windows, res.Iterations, res.Flips,
		uint64(res.DivergedVA), uint64(res.HijackedFrame.Addr()), res.Breached)
	if !res.Breached {
		return fmt.Errorf("cross-tenant: no breach: %+v", res)
	}
	return nil
}

// render produces the full deterministic report for the selected
// scenario(s).
// The header deliberately omits -procs: CI diffs the bytes across
// -procs values, so nothing scheduling-dependent may appear in them.
func render(scenario string, seed int64, windows int, xtSeed int64, xtWindows int) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# pthammer-mt preset=SandyBridge(escalation scale) scenario=%s\n", scenario)
	if scenario == "all" || scenario == "amplify" {
		if err := renderAmplify(&buf, seed, windows); err != nil {
			return nil, err
		}
	}
	if scenario == "all" || scenario == "noisy" {
		if err := renderNoisy(&buf, seed, windows); err != nil {
			return nil, err
		}
	}
	if scenario == "all" || scenario == "cross-tenant" {
		if err := renderCrossTenant(&buf, xtSeed, xtWindows); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// run is main with its environment made explicit, so the error paths
// are table-testable: args exclude the program name, and the return
// value is the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pthammer-mt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scenario := fs.String("scenario", "all", "which scenario to run: all, amplify, noisy or cross-tenant")
	seed := fs.Int64("seed", 4, "flip-model seed for the amplify and noisy scenarios")
	windows := fs.Int("windows", 4, "refresh windows per arm for the amplify and noisy scenarios")
	xtSeed := fs.Int64("xt-seed", 1, "flip-model seed for the cross-tenant escalation")
	xtWindows := fs.Int("xt-windows", 60, "refresh-window budget for the cross-tenant escalation")
	procs := fs.Int("procs", 0, "GOMAXPROCS for the run (0 keeps the runtime default); the output must not depend on it")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the parse error and usage.
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pthammer-mt: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return exitUsage
	}
	switch *scenario {
	case "all", "amplify", "noisy", "cross-tenant":
	default:
		fmt.Fprintf(stderr, "pthammer-mt: unknown -scenario %q\n", *scenario)
		return exitUsage
	}
	if *windows < 1 || *xtWindows < 1 {
		fmt.Fprintf(stderr, "pthammer-mt: window counts must be positive (got %d, %d)\n", *windows, *xtWindows)
		return exitUsage
	}
	if *procs < 0 {
		fmt.Fprintf(stderr, "pthammer-mt: -procs must be non-negative (got %d)\n", *procs)
		return exitUsage
	}
	if *procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(*procs))
	}

	report, err := render(*scenario, *seed, *windows, *xtSeed, *xtWindows)
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-mt:", err)
		return exitRuntime
	}
	if *out == "" {
		stdout.Write(report)
		return exitOK
	}
	if err := os.WriteFile(*out, report, 0o644); err != nil {
		fmt.Fprintln(stderr, "pthammer-mt:", err)
		return exitWrite
	}
	fmt.Fprintln(stdout, "wrote", *out)
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
