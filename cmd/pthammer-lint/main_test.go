package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestFlagsHandshake(t *testing.T) {
	// go vet's first probe is `tool -flags`; it must exit 0 (the JSON
	// flag list goes to stdout, checked end to end by the CI vettool
	// run).
	if code := run([]string{"-flags"}); code != 0 {
		t.Fatalf("-flags exited %d", code)
	}
}

func TestVersionHandshake(t *testing.T) {
	// go vet probes with -V=full and keys its cache on the output; the
	// handshake must succeed from any binary (here: the test binary).
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("-V=full exited %d", code)
	}
	if code := run([]string{"-V=short"}); code != 0 {
		t.Fatalf("-V=short exited %d", code)
	}
}

func TestStandaloneCleanPackage(t *testing.T) {
	// The lint suite's own module must stay clean; internal/perf is a
	// small leaf with noalloc annotations, so this exercises the full
	// standalone pipeline against real code.
	if code := run([]string{"-C", "../..", "./internal/perf"}); code != 0 {
		t.Fatal("internal/perf reported findings; the tree should be lint-clean")
	}
}

func TestStandaloneFindings(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "cmd", "tool"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"go.mod": "module tmp.test/m\n\ngo 1.24\n",
		filepath.Join("cmd", "tool", "main.go"): `package main

import "time"

func main() { _ = time.Now() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if code := run([]string{"-C", dir, "./..."}); code != 1 {
		t.Fatalf("module with a finding exited %d, want 1", code)
	}
	if code := run([]string{"-C", dir, "./no/such/pkg"}); code != 1 {
		t.Fatalf("driver error exited %d, want 1", code)
	}
}

func TestCfgArgumentDispatchesToUnitcheck(t *testing.T) {
	dir := t.TempDir()
	unit := filepath.Join(dir, "unit.go")
	if err := os.WriteFile(unit, []byte("package main\n\nfunc main() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"ID":         "tool",
		"Compiler":   "gc",
		"Dir":        dir,
		"ImportPath": "tmp.test/m/cmd/tool",
		"GoFiles":    []string{unit},
		"VetxOutput": filepath.Join(dir, "unit.vetx"),
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{cfgPath}); code != 0 {
		t.Fatalf("clean unit exited %d, want 0", code)
	}
	if _, err := os.Stat(cfg["VetxOutput"].(string)); err != nil {
		t.Fatalf("unit mode did not write the vetx file: %v", err)
	}
}
