// Command pthammer-lint enforces the repo's structural invariants at
// compile time: determinism of the table-producing packages, a flush-free
// attack path, 0 allocs/op hot paths, and clock-charged latency
// accounting (see internal/analysis/... for the individual analyzers and
// CONTRIBUTING.md for the annotations).
//
// It runs two ways:
//
//	pthammer-lint ./...                         # standalone, whole module
//	go vet -vettool=$(which pthammer-lint) ./... # as a go vet tool
//
// In standalone mode it loads packages via `go list -json -export -deps`
// and exits 1 if any diagnostic is reported. Under go vet it speaks the
// unit-checking protocol (a single *.cfg argument per package, plus the
// -V=full version handshake) and exits 2 on findings, exactly like the
// analyzers shipped with the go distribution.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pthammer/internal/analysis/clockcharge"
	"pthammer/internal/analysis/determinism"
	"pthammer/internal/analysis/driver"
	"pthammer/internal/analysis/framework"
	"pthammer/internal/analysis/noalloc"
	"pthammer/internal/analysis/privilegedops"
	"pthammer/internal/analysis/unitcheck"
)

// analyzers is the full pthammer-lint suite, in the order diagnostics
// are attributed.
var analyzers = []*framework.Analyzer{
	determinism.Analyzer,
	privilegedops.Analyzer,
	noalloc.Analyzer,
	clockcharge.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet's first probe is `tool -flags`: it expects a JSON array
	// describing the tool's analyzer flags on stdout. pthammer-lint
	// exposes none — every knob is an in-source annotation.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return 0
	}

	fs := flag.NewFlagSet("pthammer-lint", flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (go vet handshake)")
	dir := fs.String("C", ".", "directory to run in (standalone mode)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: pthammer-lint [packages]  |  pthammer-lint unit.cfg\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *version != "" {
		// go vet probes the tool with -V=full and caches on the printed
		// content ID; hash the executable so rebuilds invalidate it.
		if *version != "full" {
			fmt.Println("pthammer-lint version devel")
			return 0
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
			return 1
		}
		f, err := os.Open(exe)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
			return 1
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
			return 1
		}
		fmt.Printf("pthammer-lint version devel comments-go-here buildID=%x\n", h.Sum(nil))
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck.Run(rest[0], analyzers)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := driver.Run(*dir, analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pthammer-lint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Printf("%s: [%s] %s\n", d.Position, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
