package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pthammer/internal/bench"
)

// smallBudget keeps the robustness sweep fast in tests: large enough
// for every recoverable class on seed 1, small enough that the
// unrecoverable rows abort quickly.
func smallBudget() bench.Budget {
	b := bench.DefaultBudget()
	b.MaxWindows = 1700
	return b
}

// smallReport keeps the determinism check fast: a budget big enough
// for class A (and usually C) to flip, small enough for CI.
func smallReport(t *testing.T) []byte {
	t.Helper()
	out, err := render(1, 2500, 200_000, 1, smallBudget())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReportDeterministic is the command's contract: two renders with
// the same seed produce bit-identical bytes — the property the CI
// robustness run asserts by diffing two full invocations.
func TestReportDeterministic(t *testing.T) {
	a := smallReport(t)
	b := smallReport(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ across reruns:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestReportLayout pins the table layout downstream tooling parses:
// one row per module class, both header lines, the escalation row, and
// one robustness row per fault-matrix scenario.
func TestReportLayout(t *testing.T) {
	out := smallReport(t)
	for _, want := range []string{
		"# table 1: time-to-first-flip and flip rate per DRAM module class",
		"class\tattempts_per_window\texcess_scale\tbias_1to0\tfirst_flip_iter\tfirst_flip_sim_ms\twindows\tflips\tflips_per_1e6_iters",
		"\nA\t", "\nB\t", "\nC\t",
		"# table 2: pte-flip-escalation (class A)",
		"iterations\twindows\tflips\tfirst_flip_iter\tsim_ms\tcorrupt_va\ttable_frame\trewritten_va\tsecret_frame",
		"# table 3: resilient escalation under injected faults",
		"fault_class\tkind\tseeds\tsuccesses\tsuccess_rate\tmean_windows\tmax_windows\tmean_iters\trebuilds\treplans\tfaults_observed\tpriv_ops\tabort_reasons",
		"\nnone\trecoverable\t", "\neviction-decay\trecoverable\t",
		"\nthreshold-drift\trecoverable\t", "\ntrr-suppress\trecoverable\t",
		"\nflip-misland\trecoverable\t", "\npair-invalidate\trecoverable\t",
		"\ntrr-suppress-all\tunrecoverable\t", "\nflip-misland-all\tunrecoverable\t",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunErrorPaths is the CLI hardening contract: every bad
// invocation returns its designated exit code with a message on
// stderr, and none of them panics.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"unknown flag", []string{"-no-such-flag"}, exitUsage, "flag provided but not defined"},
		{"malformed value", []string{"-iters", "many"}, exitUsage, "invalid value"},
		{"stray arguments", []string{"extra", "args"}, exitUsage, "unexpected arguments"},
		{"negative robust seeds", []string{"-robust-seeds", "-1"}, exitUsage, "-robust-seeds must be non-negative"},
		{"degenerate robust budget", []string{"-robust-windows", "10"}, exitUsage, "-robust-windows 10"},
		{"unwritable output", []string{
			"-iters", "2500", "-escalate-iters", "200000", "-robust-seeds", "0",
			"-o", "/nonexistent-dir/report.tsv"}, exitWrite, "no such file or directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.stderr, stderr.String())
			}
		})
	}
}

// TestRunWritesReport covers the happy file-output path end to end
// through run(): exit 0, confirmation on stdout, report on disk.
func TestRunWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.tsv")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-iters", "2500", "-escalate-iters", "200000", "-robust-seeds", "0",
		"-o", path}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+path) {
		t.Fatalf("stdout missing confirmation: %s", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("# table 2")) {
		t.Fatalf("written report truncated:\n%s", data)
	}
	if bytes.Contains(data, []byte("# table 3")) {
		t.Fatal("-robust-seeds 0 still rendered the robustness table")
	}
}
