package main

import (
	"bytes"
	"testing"
)

// smallReport keeps the determinism check fast: a budget big enough
// for class A (and usually C) to flip, small enough for CI.
func smallReport(t *testing.T) []byte {
	t.Helper()
	out, err := render(1, 2500, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReportDeterministic is the command's contract: two renders with
// the same seed produce bit-identical bytes — the property the CI
// smoke run asserts by diffing two full invocations.
func TestReportDeterministic(t *testing.T) {
	a := smallReport(t)
	b := smallReport(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("reports differ across reruns:\n--- first ---\n%s--- second ---\n%s", a, b)
	}
}

// TestReportLayout pins the table layout downstream tooling parses:
// one row per module class, both header lines, and the escalation row.
func TestReportLayout(t *testing.T) {
	out := smallReport(t)
	for _, want := range []string{
		"# table 1: time-to-first-flip and flip rate per DRAM module class",
		"class\tattempts_per_window\texcess_scale\tbias_1to0\tfirst_flip_iter\tfirst_flip_sim_ms\twindows\tflips\tflips_per_1e6_iters",
		"\nA\t", "\nB\t", "\nC\t",
		"# table 2: pte-flip-escalation (class A)",
		"iterations\twindows\tflips\tfirst_flip_iter\tsim_ms\tcorrupt_va\ttable_frame\trewritten_va\tsecret_frame",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
