// Command pthammer-flip characterises the repository's disturbance-
// error engine the way "Flipping Bits in Memory Without Accessing
// Them" characterises real modules: for each DRAM module class
// (internal/flip profiles A/B/C) it builds the full escalation layout
// on the demo machine (bench.EscalationConfig — sprayed victim page
// tables, measured eviction sets, flush-free hammer), hammers for a
// fixed iteration budget, and tabulates time-to-first-flip and
// flips-per-10⁶-iterations. It then runs the class-A
// pte-flip-escalation demo end to end and reports the exploit chain.
//
// Every number in the output is simulated state (iterations, windows,
// cycle-derived milliseconds, addresses), never wall-clock, so the
// bytes are a pure function of (seed, iters): reruns are
// bit-identical, which the CI smoke run asserts by diffing two
// invocations. The command exits non-zero if no class produces a flip
// — a broken flip engine should redden CI, not emit an empty table.
//
// Usage:
//
//	pthammer-flip [-seed N] [-iters N] [-escalate-iters N] [-o FILE]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"pthammer/internal/bench"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
)

// simMillis converts simulated cycles to milliseconds at the demo
// machine's clock rate.
func simMillis(cycles uint64) float64 {
	return float64(cycles) / float64(machine.SandyBridge().FreqHz) * 1e3
}

// render runs the per-class flip-rate table plus the class-A
// escalation and returns the full deterministic report.
func render(seed int64, iters, escalateIters uint64) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# pthammer-flip preset=SandyBridge(escalation layout) seed=%d iters=%d\n", seed, iters)
	fmt.Fprintf(&buf, "# table 1: time-to-first-flip and flip rate per DRAM module class\n")
	fmt.Fprintf(&buf, "class\tattempts_per_window\texcess_scale\tbias_1to0\tfirst_flip_iter\tfirst_flip_sim_ms\twindows\tflips\tflips_per_1e6_iters\n")
	totalFlips := 0
	for _, p := range flip.Profiles() {
		run, err := bench.RunFlipRate(p, seed, iters)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", p.Name, err)
		}
		totalFlips += run.Flips
		fmt.Fprintf(&buf, "%s\t%d\t%g\t%g\t%d\t%.3f\t%d\t%d\t%.1f\n",
			p.Name, p.AttemptsPerWindow, p.ExcessScale, p.OneToZeroBias,
			run.FirstFlipIter, simMillis(uint64(run.FirstFlipCycles)),
			run.Windows, run.Flips, run.FlipsPerMillionIters())
	}
	if totalFlips == 0 {
		return nil, fmt.Errorf("no module class produced a flip within %d iterations — flip engine broken?", iters)
	}

	res, err := bench.RunEscalationDemo(flip.ClassA(), seed, escalateIters)
	if err != nil {
		return nil, fmt.Errorf("escalation: %w", err)
	}
	fmt.Fprintf(&buf, "# table 2: pte-flip-escalation (class A): flip -> Translate divergence -> PTE rewrite -> kernel write\n")
	fmt.Fprintf(&buf, "iterations\twindows\tflips\tfirst_flip_iter\tsim_ms\tcorrupt_va\ttable_frame\trewritten_va\tsecret_frame\n")
	fmt.Fprintf(&buf, "%d\t%d\t%d\t%d\t%.3f\t%#x\t%#x\t%#x\t%#x\n",
		res.Iterations, res.Windows, res.TotalFlips, res.FirstFlipIter,
		simMillis(uint64(res.Cycles)),
		uint64(res.CorruptVA), uint64(res.TableFrame),
		uint64(res.RewrittenVA), uint64(res.SecretFrame))
	return buf.Bytes(), nil
}

func main() {
	seed := flag.Int64("seed", 1, "seed for the flip models; the whole report is deterministic per seed")
	iters := flag.Uint64("iters", 8000, "hammer iterations per module class for the rate table")
	escalateIters := flag.Uint64("escalate-iters", 500_000, "iteration budget for the class-A escalation demo")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pthammer-flip:", err)
		os.Exit(1)
	}
	report, err := render(*seed, *iters, *escalateIters)
	if err != nil {
		fail(err)
	}
	if *out == "" {
		os.Stdout.Write(report)
		return
	}
	if err := os.WriteFile(*out, report, 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", *out)
}
