// Command pthammer-flip characterises the repository's disturbance-
// error engine the way "Flipping Bits in Memory Without Accessing
// Them" characterises real modules: for each DRAM module class
// (internal/flip profiles A/B/C) it builds the full escalation layout
// on the demo machine (bench.EscalationConfig — sprayed victim page
// tables, measured eviction sets, flush-free hammer), hammers for a
// fixed iteration budget, and tabulates time-to-first-flip and
// flips-per-10⁶-iterations. It then runs the class-A
// pte-flip-escalation demo end to end and reports the exploit chain,
// and finally sweeps the budgeted escalation driver across the fault
// matrix (internal/fault) to tabulate robustness: success rate and
// window spend per injected fault class over a seed matrix.
//
// Every number in the output is simulated state (iterations, windows,
// cycle-derived milliseconds, addresses), never wall-clock, so the
// bytes are a pure function of the flags: reruns are bit-identical,
// which the CI robustness run asserts by diffing two invocations. The
// command exits non-zero if no class produces a flip — a broken flip
// engine should redden CI, not emit an empty table.
//
// Usage:
//
//	pthammer-flip [-seed N] [-iters N] [-escalate-iters N]
//	              [-robust-seeds N] [-robust-windows N] [-o FILE]
//
// Exit codes: 0 success, 1 simulation failure, 2 usage error, 3 output
// write failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"pthammer/internal/bench"
	"pthammer/internal/fault"
	"pthammer/internal/flip"
	"pthammer/internal/machine"
)

// The command's exit codes, one per failure surface, so CI scripts can
// tell a broken flag line from a broken simulation from a full disk.
const (
	exitOK      = 0
	exitRuntime = 1
	exitUsage   = 2
	exitWrite   = 3
)

// simMillis converts simulated cycles to milliseconds at the demo
// machine's clock rate.
func simMillis(cycles uint64) float64 {
	return float64(cycles) / float64(machine.SandyBridge().FreqHz) * 1e3
}

// render runs the per-class flip-rate table, the class-A escalation,
// and (for robustSeeds > 0) the fault-matrix robustness sweep, and
// returns the full deterministic report.
func render(seed int64, iters, escalateIters uint64, robustSeeds int, budget bench.Budget) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# pthammer-flip preset=SandyBridge(escalation layout) seed=%d iters=%d\n", seed, iters)
	fmt.Fprintf(&buf, "# table 1: time-to-first-flip and flip rate per DRAM module class\n")
	fmt.Fprintf(&buf, "class\tattempts_per_window\texcess_scale\tbias_1to0\tfirst_flip_iter\tfirst_flip_sim_ms\twindows\tflips\tflips_per_1e6_iters\n")
	totalFlips := 0
	for _, p := range flip.Profiles() {
		run, err := bench.RunFlipRate(p, seed, iters)
		if err != nil {
			return nil, fmt.Errorf("class %s: %w", p.Name, err)
		}
		totalFlips += run.Flips
		fmt.Fprintf(&buf, "%s\t%d\t%g\t%g\t%d\t%.3f\t%d\t%d\t%.1f\n",
			p.Name, p.AttemptsPerWindow, p.ExcessScale, p.OneToZeroBias,
			run.FirstFlipIter, simMillis(uint64(run.FirstFlipCycles)),
			run.Windows, run.Flips, run.FlipsPerMillionIters())
	}
	if totalFlips == 0 {
		return nil, fmt.Errorf("no module class produced a flip within %d iterations — flip engine broken?", iters)
	}

	res, err := bench.RunEscalationDemo(flip.ClassA(), seed, escalateIters)
	if err != nil {
		return nil, fmt.Errorf("escalation: %w", err)
	}
	fmt.Fprintf(&buf, "# table 2: pte-flip-escalation (class A): flip -> Translate divergence -> PTE rewrite -> kernel write\n")
	fmt.Fprintf(&buf, "iterations\twindows\tflips\tfirst_flip_iter\tsim_ms\tcorrupt_va\ttable_frame\trewritten_va\tsecret_frame\n")
	fmt.Fprintf(&buf, "%d\t%d\t%d\t%d\t%.3f\t%#x\t%#x\t%#x\t%#x\n",
		res.Iterations, res.Windows, res.TotalFlips, res.FirstFlipIter,
		simMillis(uint64(res.Cycles)),
		uint64(res.CorruptVA), uint64(res.TableFrame),
		uint64(res.RewrittenVA), uint64(res.SecretFrame))

	if robustSeeds > 0 {
		if err := renderRobustness(&buf, robustSeeds, budget); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// renderRobustness sweeps the budgeted escalation driver over the
// fault matrix × seeds 1..robustSeeds and appends table 3: per fault
// class, how often the driver recovered, what it spent, and how every
// abort was classified.
func renderRobustness(buf *bytes.Buffer, robustSeeds int, budget bench.Budget) error {
	fmt.Fprintf(buf, "# table 3: resilient escalation under injected faults (class A, budget=%d windows, seeds 1..%d)\n",
		budget.MaxWindows, robustSeeds)
	fmt.Fprintf(buf, "fault_class\tkind\tseeds\tsuccesses\tsuccess_rate\tmean_windows\tmax_windows\tmean_iters\trebuilds\treplans\tfaults_observed\tpriv_ops\tabort_reasons\n")
	for _, sc := range fault.Matrix() {
		var succ int
		var sumWindows, maxWindows, sumIters, faults, privOps uint64
		var rebuilds, replans uint
		reasons := make(map[string]bool)
		for s := 1; s <= robustSeeds; s++ {
			v, err := bench.RunEscalationResilient(flip.ClassA(), int64(s), sc.Config, budget)
			if err != nil {
				return fmt.Errorf("robustness %s seed %d: %w", sc.Name, s, err)
			}
			if v.Success {
				succ++
			} else {
				reasons[string(v.Reason)] = true
			}
			sumWindows += v.Windows
			if v.Windows > maxWindows {
				maxWindows = v.Windows
			}
			sumIters += v.Iterations
			rebuilds += v.Rebuilds
			replans += v.Replans
			faults += v.Faults.Total()
			privOps += v.PrivFlushes + v.PrivInvlpgs
		}
		kind := "recoverable"
		if !sc.Recoverable {
			kind = "unrecoverable"
		}
		abortReasons := "-"
		if len(reasons) > 0 {
			var rs []string
			for r := range reasons {
				rs = append(rs, r)
			}
			sort.Strings(rs)
			abortReasons = strings.Join(rs, ",")
		}
		n := float64(robustSeeds)
		fmt.Fprintf(buf, "%s\t%s\t%d\t%d\t%.2f\t%.1f\t%d\t%.1f\t%d\t%d\t%d\t%d\t%s\n",
			sc.Name, kind, robustSeeds, succ, float64(succ)/n,
			float64(sumWindows)/n, maxWindows, float64(sumIters)/n,
			rebuilds, replans, faults, privOps, abortReasons)
	}
	return nil
}

// run is main with its environment made explicit, so the error paths
// are table-testable: args exclude the program name, and the return
// value is the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pthammer-flip", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "seed for the flip models; the whole report is deterministic per seed")
	iters := fs.Uint64("iters", 8000, "hammer iterations per module class for the rate table")
	escalateIters := fs.Uint64("escalate-iters", 500_000, "iteration budget for the class-A escalation demo")
	robustSeeds := fs.Int("robust-seeds", 3, "seeds per fault class for the robustness table (0 skips it)")
	robustWindows := fs.Uint64("robust-windows", bench.DefaultBudget().MaxWindows, "window budget per resilient run in the robustness table")
	out := fs.String("o", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the parse error and usage.
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pthammer-flip: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return exitUsage
	}
	if *robustSeeds < 0 {
		fmt.Fprintf(stderr, "pthammer-flip: -robust-seeds must be non-negative (got %d)\n", *robustSeeds)
		return exitUsage
	}
	budget := bench.DefaultBudget()
	budget.MaxWindows = *robustWindows
	if err := budget.Validate(); err != nil {
		fmt.Fprintf(stderr, "pthammer-flip: -robust-windows %d: %v\n", *robustWindows, err)
		return exitUsage
	}

	report, err := render(*seed, *iters, *escalateIters, *robustSeeds, budget)
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-flip:", err)
		return exitRuntime
	}
	if *out == "" {
		stdout.Write(report)
		return exitOK
	}
	if err := os.WriteFile(*out, report, 0o644); err != nil {
		fmt.Fprintln(stderr, "pthammer-flip:", err)
		return exitWrite
	}
	fmt.Fprintln(stdout, "wrote", *out)
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
