package main

import (
	"bytes"
	"runtime"
	"testing"
)

// smallSpec keeps the determinism matrix fast: two targets, three
// padding points, light noise so the seeds matter.
func smallSpec(t *testing.T, mode string, workers int) []byte {
	t.Helper()
	spec, err := buildSpec(mode, 2, 0, 20, 10, 3, workers, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	out, err := renderTables(spec, mode)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTablesDeterministicAcrossWorkers is the command's contract: the
// Figure 5/6 tables are bit-identical for 1, 2, 4 and NumCPU workers,
// in both measurement modes. The CI race leg runs this same test under
// -race, so the guarantee holds with the scheduler interleaving shards
// adversarially.
func TestTablesDeterministicAcrossWorkers(t *testing.T) {
	for _, mode := range []string{"evict", "flush"} {
		serial := smallSpec(t, mode, 1)
		if len(serial) == 0 {
			t.Fatalf("%s: empty tables", mode)
		}
		for _, workers := range []int{2, 4, runtime.NumCPU()} {
			if got := smallSpec(t, mode, workers); !bytes.Equal(got, serial) {
				t.Fatalf("%s tables differ between 1 and %d workers:\n--- 1 worker ---\n%s--- %d workers ---\n%s",
					mode, workers, serial, workers, got)
			}
		}
	}
}

// TestTablesContainBothFigures pins the output layout downstream
// tooling parses.
func TestTablesContainBothFigures(t *testing.T) {
	out := smallSpec(t, "evict", 1)
	for _, want := range []string{
		"# figure5: load latency (cycles) vs padding NOPs",
		"padding\tsamples\tmin\tp25\tp50\tp90\tmax\tmean",
		"# figure6: merged latency distribution",
		"latency\tcount",
		"mode=evict",
	} {
		if !bytes.Contains(out, []byte(want)) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestBuildSpecRejectsBadInput covers the knobs main passes through.
func TestBuildSpecRejectsBadInput(t *testing.T) {
	if _, err := buildSpec("warp", 2, 0, 10, 10, 1, 0, 0, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := buildSpec("evict", 0, 0, 10, 10, 1, 0, 0, 1); err == nil {
		t.Error("zero targets accepted")
	}
}
