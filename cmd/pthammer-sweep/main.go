// Command pthammer-sweep reproduces the shape of the paper's Figure 5
// and Figure 6 measurements against the SandyBridge preset: it sweeps
// the number of padding NOPs executed before each timed load and emits
// the latency-vs-padding table (Figure 5) plus the merged latency
// distribution (Figure 6) as tab-separated text.
//
// The default mode is the paper's actual measurement: eviction-driven
// (-mode evict). Each sweep shard runs Algorithm 1 — building a TLB
// eviction set and a leaf-PTE LLC eviction set per target page from
// user-space loads alone — and walks both sets before every timed
// replay, so the timed loads traverse the full implicit-access path
// with zero flush or invlpg. -mode flush runs the privileged clflush
// baseline for comparison.
//
// Output is a pure function of the spec (machine preset, padding
// range, reps, seed, mode): the sweep engine's merged histograms are
// bit-identical for any worker count, and the tables are derived only
// from them, so -workers changes wall-clock time and nothing else —
// asserted by this package's tests.
//
// Usage:
//
//	pthammer-sweep [-mode evict|flush] [-padmin N] [-padmax N]
//	               [-padstep N] [-reps N] [-targets N] [-noise P]
//	               [-seed N] [-workers N] [-o FILE]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"pthammer/internal/machine"
	"pthammer/internal/pagetable"
	"pthammer/internal/phys"
	"pthammer/internal/sweep"
)

// buildSpec assembles the sweep from the command's knobs. Targets are
// spread one per 2 MiB region so every page has its own leaf page
// table — the same layout the hammer scenarios use.
func buildSpec(mode string, targets, padMin, padMax, padStep, reps, workers int, noise float64, seed int64) (sweep.Spec, error) {
	if targets <= 0 {
		return sweep.Spec{}, fmt.Errorf("targets must be positive (got %d)", targets)
	}
	cfg := machine.SandyBridge()
	if noise > 0 {
		cfg.NoiseProb = noise
		cfg.NoiseMin = 100
		cfg.NoiseMax = 500
	}
	addrs := make([]phys.Addr, targets)
	for i := range addrs {
		addrs[i] = phys.Addr(uint64(i) * pagetable.Span(2))
	}
	s := sweep.Spec{
		Machine:  cfg,
		Addrs:    addrs,
		PadMin:   padMin,
		PadMax:   padMax,
		PadStep:  padStep,
		Reps:     reps,
		Workers:  workers,
		BaseSeed: seed,
	}
	switch mode {
	case "evict":
		s.EvictBetween = true
	case "flush":
		s.FlushBetween = true
	default:
		return sweep.Spec{}, fmt.Errorf("unknown mode %q (want evict or flush)", mode)
	}
	return s, nil
}

// renderTables runs the sweep and renders both tables. Everything
// written is derived from the spec and the (worker-count-independent)
// histograms, so the bytes are deterministic for a fixed spec — the
// contract the determinism test pins across worker counts.
func renderTables(s sweep.Spec, mode string) ([]byte, error) {
	res, err := sweep.Run(s)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# pthammer-sweep preset=SandyBridge mode=%s targets=%d reps=%d seed=%d noise=%g\n",
		mode, len(s.Addrs), s.Reps, s.BaseSeed, s.Machine.NoiseProb)

	fmt.Fprintf(&buf, "# figure5: load latency (cycles) vs padding NOPs\n")
	fmt.Fprintf(&buf, "padding\tsamples\tmin\tp25\tp50\tp90\tmax\tmean\n")
	for _, p := range res.Points {
		h := p.Hist
		qs := h.Quantiles(0, 0.25, 0.5, 0.9, 1)
		fmt.Fprintf(&buf, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			p.Padding, h.Total(), qs[0], qs[1], qs[2], qs[3], qs[4], h.Mean())
	}

	fmt.Fprintf(&buf, "# figure6: merged latency distribution\n")
	fmt.Fprintf(&buf, "latency\tcount\n")
	for _, b := range res.Merged().Bins() {
		fmt.Fprintf(&buf, "%d\t%d\n", b.Latency, b.Count)
	}
	return buf.Bytes(), nil
}

func main() {
	mode := flag.String("mode", "evict", "measurement mode: evict (Algorithm 1 eviction sets, flush-free) or flush (privileged clflush baseline)")
	padMin := flag.Int("padmin", 0, "smallest padding NOP count")
	padMax := flag.Int("padmax", 100, "largest padding NOP count")
	padStep := flag.Int("padstep", 10, "padding step")
	reps := flag.Int("reps", 20, "timed replays of the target stream per padding value")
	targets := flag.Int("targets", 2, "number of target pages (one per 2 MiB region)")
	noise := flag.Float64("noise", 0.05, "per-load latency-spike probability (0 = fully deterministic)")
	seed := flag.Int64("seed", 1, "base seed for the per-shard noise streams")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never affects the tables")
	out := flag.String("o", "", "output path (default stdout)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pthammer-sweep:", err)
		os.Exit(1)
	}
	spec, err := buildSpec(*mode, *targets, *padMin, *padMax, *padStep, *reps, *workers, *noise, *seed)
	if err != nil {
		fail(err)
	}
	tables, err := renderTables(spec, *mode)
	if err != nil {
		fail(err)
	}
	if *out == "" {
		os.Stdout.Write(tables)
		return
	}
	if err := os.WriteFile(*out, tables, 0o644); err != nil {
		fail(err)
	}
	fmt.Println("wrote", *out)
}
