// Command pthammer-bench runs the repository's standard performance
// scenarios against the SandyBridge preset and writes the results as
// JSON, seeding the repo's perf trajectory: each perf-focused PR reruns
// the tool and records a new BENCH_NNNN.json to compare against the
// last one.
//
// The scenario bodies live in internal/bench, shared with the in-tree
// `go test -bench` benchmarks so both always measure the same loops.
//
// Usage: pthammer-bench [-o BENCH_0002.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"pthammer/internal/bench"
)

// scenarioResult is one scenario's measurement. LoadsPerSec counts
// simulated loads (not benchmark iterations) retired per wall-clock
// second.
type scenarioResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	LoadsPerSec float64 `json:"loads_per_sec,omitempty"`
	// SpeedupVsBaseline is baseline ns/op divided by this run's ns/op,
	// for scenarios that existed before the hot-path overhaul.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// baselineNsPerOp records the same scenario bodies measured at the
// pre-overhaul commit (c14fafa, map-based ACT counters, div/mod
// decode, unfused set probes) on the reference CI-class host, so the
// report carries the speedup this PR delivered. Scenarios without a
// pre-PR equivalent (the sweep engine is new) are absent.
var baselineNsPerOp = map[string]float64{
	"warm-load":         16.30,
	"flush-hammer-loop": 286.5,
	"cold-load-sweep":   319.7,
	"tlb-thrash":        113.6,
}

// report is the file layout of BENCH_NNNN.json.
type report struct {
	Tool           string             `json:"tool"`
	GoVersion      string             `json:"go_version"`
	GOOS           string             `json:"goos"`
	GOARCH         string             `json:"goarch"`
	Preset         string             `json:"preset"`
	BaselineCommit string             `json:"baseline_commit"`
	BaselineNsOp   map[string]float64 `json:"baseline_ns_per_op"`
	Scenarios      []scenarioResult   `json:"scenarios"`
}

func main() {
	out := flag.String("o", "BENCH_0002.json", "output path for the JSON report")
	flag.Parse()

	rep := report{
		Tool:           "pthammer-bench",
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Preset:         "SandyBridge",
		BaselineCommit: "c14fafa",
		BaselineNsOp:   baselineNsPerOp,
	}
	for _, sc := range bench.Scenarios() {
		// Best of three runs: the minimum is the least disturbed by
		// whatever else the host is doing, the usual benchstat practice.
		var res testing.BenchmarkResult
		for attempt := 0; attempt < 3; attempt++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				sc.Run(b)
			})
			if attempt == 0 || r.NsPerOp() < res.NsPerOp() {
				res = r
			}
		}
		r := scenarioResult{
			Name:        sc.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if sc.LoadsPerOp > 0 && res.T > 0 {
			r.LoadsPerSec = float64(sc.LoadsPerOp) * float64(res.N) / res.T.Seconds()
		}
		if base, ok := baselineNsPerOp[sc.Name]; ok && r.NsPerOp > 0 {
			r.SpeedupVsBaseline = base / r.NsPerOp
		}
		rep.Scenarios = append(rep.Scenarios, r)
		fmt.Printf("%-20s %12.1f ns/op %6d allocs/op %14.0f loads/sec\n",
			sc.Name, r.NsPerOp, r.AllocsPerOp, r.LoadsPerSec)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "pthammer-bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "pthammer-bench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
