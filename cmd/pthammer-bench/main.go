// Command pthammer-bench runs the repository's standard performance
// scenarios against the SandyBridge preset and writes the results as
// JSON, seeding the repo's perf trajectory: each perf-focused PR reruns
// the tool and records a new BENCH_NNNN.json to compare against the
// last one.
//
// The scenario bodies live in internal/bench, shared with the in-tree
// `go test -bench` benchmarks so both always measure the same loops.
//
// Usage:
//
//	pthammer-bench             rerun and write the next BENCH_NNNN.json
//	pthammer-bench -o FILE     rerun and write FILE
//	pthammer-bench -C DIR      look for baselines (and write reports) in DIR
//	pthammer-bench -check      regression gate: rerun and exit non-zero
//	                           if any steady-state scenario regresses
//	                           >25% vs. the newest usable committed
//	                           BENCH_NNNN.json or allocates per op
//
// Baseline discovery walks the committed BENCH_NNNN.json files newest
// to oldest and compares against the first that parses and validates
// (right tool, right preset, non-empty go_version, non-empty scenario
// list); broken files are skipped with a warning, and -check exits 4
// only when none is usable.
//
// -check is wired into CI so hot-path regressions fail the PR that
// introduces them, not the next perf PR.
//
// Exit codes: 0 success, 1 regression (or other runtime failure),
// 2 usage error, 3 report write failure, 4 baseline missing or corrupt.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"

	"pthammer/internal/bench"
)

// The command's exit codes, one per failure surface: CI scripts need
// to tell "your change is slower" (1) from "your baseline file is
// gone or unparseable" (4) from "the report didn't land on disk" (3).
const (
	exitOK         = 0
	exitRegression = 1
	exitUsage      = 2
	exitWrite      = 3
	exitBaseline   = 4
)

// maxRegression is the ns/op ratio past which -check fails a
// steady-state scenario.
const maxRegression = 1.25

// scenarioResult is one scenario's measurement. LoadsPerSec counts
// simulated loads (not benchmark iterations) retired per wall-clock
// second.
type scenarioResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SteadyState bool    `json:"steady_state,omitempty"`
	LoadsPerSec float64 `json:"loads_per_sec,omitempty"`
	// SpeedupVsBaseline is baseline ns/op divided by this run's ns/op,
	// for scenarios present in the previous committed report.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
}

// report is the file layout of BENCH_NNNN.json. Older reports carried
// extra fields; only the ones below are read back, so every committed
// generation stays parseable as a baseline.
type report struct {
	Tool         string           `json:"tool"`
	GoVersion    string           `json:"go_version"`
	GOOS         string           `json:"goos"`
	GOARCH       string           `json:"goarch"`
	Preset       string           `json:"preset"`
	BaselineFile string           `json:"baseline_file,omitempty"`
	Scenarios    []scenarioResult `json:"scenarios"`
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestBaseline finds the highest-numbered committed BENCH_NNNN.json
// in dir. ok is false when none exists.
func latestBaseline(dir string) (path string, num int, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, false, err
	}
	num = -1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, convErr := strconv.Atoi(m[1])
		if convErr != nil {
			continue
		}
		if n > num {
			num, path = n, filepath.Join(dir, e.Name())
		}
	}
	return path, num, num >= 0, nil
}

// loadReport parses a committed baseline.
func loadReport(path string) (report, error) {
	var rep report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// validateBaseline decides whether a parsed report can serve as a
// comparison baseline. A report from a different tool or preset would
// make every ns/op ratio meaningless; a report with no go_version or
// no scenarios is a truncated or hand-mangled file. A *different*
// go_version is fine — toolchain upgrades are exactly what the 25%
// regression allowance absorbs.
func validateBaseline(rep report) error {
	switch {
	case rep.Tool != "pthammer-bench":
		return fmt.Errorf("tool %q, want %q", rep.Tool, "pthammer-bench")
	case rep.Preset != "SandyBridge":
		return fmt.Errorf("preset %q, want %q", rep.Preset, "SandyBridge")
	case rep.GoVersion == "":
		return fmt.Errorf("missing go_version")
	case len(rep.Scenarios) == 0:
		return fmt.Errorf("no scenarios")
	}
	return nil
}

// usableBaseline walks the committed BENCH_NNNN.json files newest to
// oldest and returns the first one that parses and validates, warning
// on stderr for every file it skips. Before this walk existed the tool
// blindly trusted the highest-numbered file, so one corrupt or
// foreign-preset report silently disabled (or poisoned) the CI gate;
// now a bad newest file degrades to the previous good one, visibly.
// ok is false when no usable baseline exists at all.
func usableBaseline(dir string, warn io.Writer) (path string, rep report, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", report{}, false, err
	}
	type cand struct {
		num  int
		path string
	}
	var cands []cand
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, convErr := strconv.Atoi(m[1])
		if convErr != nil {
			continue
		}
		cands = append(cands, cand{n, filepath.Join(dir, e.Name())})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].num > cands[j].num })
	for _, c := range cands {
		rep, loadErr := loadReport(c.path)
		if loadErr != nil {
			fmt.Fprintf(warn, "pthammer-bench: skipping baseline %s: %v\n", c.path, loadErr)
			continue
		}
		if valErr := validateBaseline(rep); valErr != nil {
			fmt.Fprintf(warn, "pthammer-bench: skipping baseline %s: %v\n", c.path, valErr)
			continue
		}
		return c.path, rep, true, nil
	}
	return "", report{}, false, nil
}

// measure runs every scenario, best of three (the minimum is the least
// disturbed by whatever else the host is doing, the usual benchstat
// practice).
func measure() []scenarioResult {
	var out []scenarioResult
	for _, sc := range bench.Scenarios() {
		var res testing.BenchmarkResult
		for attempt := 0; attempt < 3; attempt++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				sc.Run(b)
			})
			if attempt == 0 || r.NsPerOp() < res.NsPerOp() {
				res = r
			}
		}
		r := scenarioResult{
			Name:        sc.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			SteadyState: sc.SteadyState,
		}
		if sc.LoadsPerOp > 0 && res.T > 0 {
			r.LoadsPerSec = float64(sc.LoadsPerOp) * float64(res.N) / res.T.Seconds()
		}
		out = append(out, r)
		fmt.Printf("%-22s %12.1f ns/op %6d allocs/op %14.0f loads/sec\n",
			sc.Name, r.NsPerOp, r.AllocsPerOp, r.LoadsPerSec)
	}
	return out
}

// check is the CI regression gate: every steady-state scenario must
// stay allocation-free and within maxRegression of the committed
// baseline. The ns/op comparison diffs only scenarios present in BOTH
// the run and the baseline: a newly added scenario has no meaningful
// baseline yet (it is alloc-checked only, and its first committed
// BENCH_NNNN.json becomes its baseline), and a scenario that exists
// only in the baseline was renamed or retired. Both one-sided cases
// are reported as notes so they are visible in CI logs without
// failing the build that legitimately introduces them.
//
// compared counts the ns/op comparisons actually performed: when it is
// zero the gate vacuously passed (the run and the baseline share no
// steady-state scenario with a usable baseline number), which the
// caller surfaces as a distinct warning rather than a clean pass.
func check(results []scenarioResult, baseline report, baselinePath string) (failures, notes []string, compared int) {
	base := make(map[string]scenarioResult, len(baseline.Scenarios))
	for _, s := range baseline.Scenarios {
		base[s.Name] = s
	}
	measured := make(map[string]bool, len(results))
	for _, r := range results {
		measured[r.Name] = true
		if !r.SteadyState {
			continue
		}
		if r.AllocsPerOp > 0 {
			failures = append(failures,
				fmt.Sprintf("%s: %d allocs/op on the hot path, want 0", r.Name, r.AllocsPerOp))
		}
		b, ok := base[r.Name]
		if !ok {
			notes = append(notes,
				fmt.Sprintf("%s: new scenario, not in %s (alloc-checked only)", r.Name, baselinePath))
			continue
		}
		if b.NsPerOp <= 0 {
			notes = append(notes,
				fmt.Sprintf("%s: baseline ns/op %.1f unusable, skipping comparison", r.Name, b.NsPerOp))
			continue
		}
		compared++
		if ratio := r.NsPerOp / b.NsPerOp; ratio > maxRegression {
			failures = append(failures,
				fmt.Sprintf("%s: %.1f ns/op vs %.1f in %s (%.2fx > %.2fx allowed)",
					r.Name, r.NsPerOp, b.NsPerOp, baselinePath, ratio, maxRegression))
		}
	}
	for _, s := range baseline.Scenarios {
		if !measured[s.Name] {
			notes = append(notes,
				fmt.Sprintf("%s: in %s but no longer measured (renamed or retired?)", s.Name, baselinePath))
		}
	}
	return failures, notes, compared
}

// run is main with its environment made explicit so the error paths
// are table-testable: args exclude the program name, measureFn stands
// in for the (slow) real benchmark sweep, and the return value is the
// process exit code.
func run(args []string, stdout, stderr io.Writer, measureFn func() []scenarioResult) int {
	fs := flag.NewFlagSet("pthammer-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output path for the JSON report (default: next BENCH_NNNN.json in the -C directory)")
	dir := fs.String("C", ".", "directory holding the BENCH_NNNN.json baselines; reports are written there")
	checkMode := fs.Bool("check", false, "regression gate: compare against the latest BENCH_NNNN.json and exit non-zero on regression; writes no report")
	if err := fs.Parse(args); err != nil {
		// The flag set already printed the parse error and usage.
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pthammer-bench: unexpected arguments: %q\n", fs.Args())
		fs.Usage()
		return exitUsage
	}

	// The output number always continues from the highest-numbered file,
	// usable or not, so a fresh report never overwrites a quarantined
	// one; the comparison baseline is the newest file that validates.
	_, baseNum, _, err := latestBaseline(*dir)
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-bench:", err)
		return exitBaseline
	}
	basePath, baseline, haveBase, err := usableBaseline(*dir, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-bench:", err)
		return exitBaseline
	}

	if *checkMode {
		if !haveBase {
			fmt.Fprintf(stderr, "pthammer-bench: -check needs a usable BENCH_NNNN.json baseline in %s\n", *dir)
			return exitBaseline
		}
		failures, notes, compared := check(measureFn(), baseline, basePath)
		for _, n := range notes {
			fmt.Fprintln(stdout, "note:", n)
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(stderr, "REGRESSION:", f)
			}
			return exitRegression
		}
		if compared == 0 {
			// Notes explain each one-sided scenario above; this line
			// makes the vacuous pass itself unmissable in CI logs.
			fmt.Fprintf(stdout, "warning: no ns/op comparisons performed: the run and %s share no steady-state scenario with a usable baseline\n",
				basePath)
			return exitOK
		}
		fmt.Fprintf(stdout, "check passed: %d steady-state scenarios within %.0f%% of %s, 0 allocs/op\n",
			compared, (maxRegression-1)*100, basePath)
		return exitOK
	}

	rep := report{
		Tool:      "pthammer-bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Preset:    "SandyBridge",
	}
	var baseNs map[string]float64
	if haveBase {
		rep.BaselineFile = filepath.Base(basePath)
		baseNs = make(map[string]float64, len(baseline.Scenarios))
		for _, s := range baseline.Scenarios {
			baseNs[s.Name] = s.NsPerOp
		}
	}
	rep.Scenarios = measureFn()
	for i := range rep.Scenarios {
		if b, ok := baseNs[rep.Scenarios[i].Name]; ok && rep.Scenarios[i].NsPerOp > 0 {
			rep.Scenarios[i].SpeedupVsBaseline = b / rep.Scenarios[i].NsPerOp
		}
	}

	path := *out
	if path == "" {
		path = filepath.Join(*dir, fmt.Sprintf("BENCH_%04d.json", baseNum+1))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "pthammer-bench:", err)
		return exitRegression
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(stderr, "pthammer-bench:", err)
		return exitWrite
	}
	fmt.Fprintln(stdout, "wrote", path)
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, measure))
}
