package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func steadyResult(name string, ns float64, allocs int64) scenarioResult {
	return scenarioResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs, SteadyState: true}
}

// TestCheckDiffsOnlySharedScenarios: a newly added scenario is never
// ns-compared (its number would otherwise trip the gate on first
// landing), a removed one only produces a note, and a genuinely
// regressed shared scenario still fails.
func TestCheckDiffsOnlySharedScenarios(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{
		steadyResult("warm-load", 100, 0),
		steadyResult("retired-loop", 50, 0),
	}}

	results := []scenarioResult{
		steadyResult("warm-load", 110, 0),
		// A brand-new, much slower scenario: must not fail the gate.
		steadyResult("implicit-hammer-loop", 9000, 0),
		// Non-steady scenarios are never checked at all.
		{Name: "sweep-engine", NsPerOp: 1e9, AllocsPerOp: 500},
	}
	failures, notes := check(results, baseline, "BENCH_TEST.json")
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	var sawNew, sawRetired bool
	for _, n := range notes {
		if strings.Contains(n, "implicit-hammer-loop") && strings.Contains(n, "new scenario") {
			sawNew = true
		}
		if strings.Contains(n, "retired-loop") && strings.Contains(n, "no longer measured") {
			sawRetired = true
		}
	}
	if !sawNew || !sawRetired {
		t.Fatalf("notes missing one-sided scenarios: %v", notes)
	}
}

// TestCheckStillCatchesRegressions: the shared-scenario comparison and
// the alloc gate keep their teeth.
func TestCheckStillCatchesRegressions(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{steadyResult("warm-load", 100, 0)}}

	failures, _ := check([]scenarioResult{steadyResult("warm-load", 100*maxRegression*1.01, 0)},
		baseline, "BENCH_TEST.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "warm-load") {
		t.Fatalf("ns/op regression not caught: %v", failures)
	}

	failures, _ = check([]scenarioResult{steadyResult("fresh-loop", 10, 3)}, baseline, "BENCH_TEST.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("hot-path alloc not caught: %v", failures)
	}
}

// TestCheckSkipsUnusableBaseline: a zero ns/op baseline entry cannot
// produce a ratio; it is skipped with a note, not a crash or failure.
func TestCheckSkipsUnusableBaseline(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{steadyResult("warm-load", 0, 0)}}
	failures, notes := check([]scenarioResult{steadyResult("warm-load", 100, 0)}, baseline, "BENCH_TEST.json")
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "unusable") {
		t.Fatalf("missing unusable-baseline note: %v", notes)
	}
}

// TestLatestBaselinePicksHighestNumber covers the baseline discovery
// the gate depends on.
func TestLatestBaselinePicksHighestNumber(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0002.json", "BENCH_0010.json", "BENCH_0003.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, num, ok, err := latestBaseline(dir)
	if err != nil || !ok {
		t.Fatalf("latestBaseline: %v ok=%v", err, ok)
	}
	if num != 10 || filepath.Base(path) != "BENCH_0010.json" {
		t.Fatalf("picked %s (#%d), want BENCH_0010.json", path, num)
	}

	empty := t.TempDir()
	if _, _, ok, err := latestBaseline(empty); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want no baseline", ok, err)
	}
}
