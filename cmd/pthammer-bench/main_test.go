package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func steadyResult(name string, ns float64, allocs int64) scenarioResult {
	return scenarioResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs, SteadyState: true}
}

// validBaseline wraps a scenarios fragment in the header fields
// usableBaseline requires of a committed report.
func validBaseline(scenarios string) string {
	return `{"tool":"pthammer-bench","go_version":"go1.24.0","preset":"SandyBridge","scenarios":[` + scenarios + `]}`
}

// TestCheckDiffsOnlySharedScenarios: a newly added scenario is never
// ns-compared (its number would otherwise trip the gate on first
// landing), a removed one only produces a note, and a genuinely
// regressed shared scenario still fails.
func TestCheckDiffsOnlySharedScenarios(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{
		steadyResult("warm-load", 100, 0),
		steadyResult("retired-loop", 50, 0),
	}}

	results := []scenarioResult{
		steadyResult("warm-load", 110, 0),
		// A brand-new, much slower scenario: must not fail the gate.
		steadyResult("implicit-hammer-loop", 9000, 0),
		// Non-steady scenarios are never checked at all.
		{Name: "sweep-engine", NsPerOp: 1e9, AllocsPerOp: 500},
	}
	failures, notes, compared := check(results, baseline, "BENCH_TEST.json")
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	var sawNew, sawRetired bool
	for _, n := range notes {
		if strings.Contains(n, "implicit-hammer-loop") && strings.Contains(n, "new scenario") {
			sawNew = true
		}
		if strings.Contains(n, "retired-loop") && strings.Contains(n, "no longer measured") {
			sawRetired = true
		}
	}
	if !sawNew || !sawRetired {
		t.Fatalf("notes missing one-sided scenarios: %v", notes)
	}
	if compared != 1 {
		t.Fatalf("compared = %d, want 1 (only warm-load is shared)", compared)
	}
}

// TestCheckStillCatchesRegressions: the shared-scenario comparison and
// the alloc gate keep their teeth.
func TestCheckStillCatchesRegressions(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{steadyResult("warm-load", 100, 0)}}

	failures, _, _ := check([]scenarioResult{steadyResult("warm-load", 100*maxRegression*1.01, 0)},
		baseline, "BENCH_TEST.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "warm-load") {
		t.Fatalf("ns/op regression not caught: %v", failures)
	}

	failures, _, _ = check([]scenarioResult{steadyResult("fresh-loop", 10, 3)}, baseline, "BENCH_TEST.json")
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("hot-path alloc not caught: %v", failures)
	}
}

// TestCheckSkipsUnusableBaseline: a zero ns/op baseline entry cannot
// produce a ratio; it is skipped with a note, not a crash or failure.
func TestCheckSkipsUnusableBaseline(t *testing.T) {
	baseline := report{Scenarios: []scenarioResult{steadyResult("warm-load", 0, 0)}}
	failures, notes, compared := check([]scenarioResult{steadyResult("warm-load", 100, 0)}, baseline, "BENCH_TEST.json")
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "unusable") {
		t.Fatalf("missing unusable-baseline note: %v", notes)
	}
	if compared != 0 {
		t.Fatalf("compared = %d, want 0 (the only shared scenario was skipped)", compared)
	}
}

// TestCheckWarnsOnZeroComparisons: a baseline holding only one-sided
// scenarios makes the ns/op gate vacuous; -check must still exit 0 but
// say so with a distinct warning line, not a clean "check passed".
func TestCheckWarnsOnZeroComparisons(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0001.json"),
		[]byte(validBaseline(`{"name":"retired-loop","ns_per_op":50,"steady_state":true}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	measure := func() []scenarioResult {
		return []scenarioResult{steadyResult("brand-new-loop", 10, 0)}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-check", "-C", dir}, &stdout, &stderr, measure); code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "warning: no ns/op comparisons performed") {
		t.Fatalf("missing zero-comparison warning:\n%s", out)
	}
	if strings.Contains(out, "check passed") {
		t.Fatalf("vacuous run claims a clean pass:\n%s", out)
	}
	// Both one-sided scenarios still get their explanatory notes.
	for _, want := range []string{"brand-new-loop: new scenario", "retired-loop: in "} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing note %q:\n%s", want, out)
		}
	}
}

// TestLatestBaselinePicksHighestNumber covers the baseline discovery
// the gate depends on.
func TestLatestBaselinePicksHighestNumber(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_0002.json", "BENCH_0010.json", "BENCH_0003.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, num, ok, err := latestBaseline(dir)
	if err != nil || !ok {
		t.Fatalf("latestBaseline: %v ok=%v", err, ok)
	}
	if num != 10 || filepath.Base(path) != "BENCH_0010.json" {
		t.Fatalf("picked %s (#%d), want BENCH_0010.json", path, num)
	}

	empty := t.TempDir()
	if _, _, ok, err := latestBaseline(empty); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v, want no baseline", ok, err)
	}
}

// stubMeasure stands in for the real benchmark sweep so the CLI tests
// never run benchmarks; t.Fatal-ing variant for paths that must fail
// before measuring.
func stubMeasure() []scenarioResult {
	return []scenarioResult{steadyResult("warm-load", 100, 0)}
}

// TestRunErrorPaths is the CLI hardening contract: every bad
// invocation returns its designated exit code with a message on
// stderr, none of them panics, and baseline problems are told apart
// from usage and write problems.
func TestRunErrorPaths(t *testing.T) {
	corrupt := t.TempDir()
	if err := os.WriteFile(filepath.Join(corrupt, "BENCH_0001.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	empty := t.TempDir()

	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"unknown flag", []string{"-no-such-flag"}, exitUsage, "flag provided but not defined"},
		{"stray arguments", []string{"extra"}, exitUsage, "unexpected arguments"},
		{"check without baseline", []string{"-C", empty, "-check"}, exitBaseline, "needs a usable BENCH_NNNN.json baseline"},
		{"check with only a corrupt baseline", []string{"-C", corrupt, "-check"}, exitBaseline, "skipping baseline"},
		{"unreadable baseline dir", []string{"-C", "/nonexistent-dir"}, exitBaseline, "no such file or directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			measured := false
			code := run(tc.args, &stdout, &stderr, func() []scenarioResult {
				measured = true
				return stubMeasure()
			})
			if code != tc.code {
				t.Fatalf("exit code = %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr missing %q:\n%s", tc.stderr, stderr.String())
			}
			if measured {
				t.Fatal("benchmarks ran before the failure was diagnosed")
			}
		})
	}
}

// TestUsableBaselineFallback is the discovery contract: the newest
// BENCH_NNNN.json that parses AND validates wins; every newer file that
// does not is skipped with a stderr warning naming it; and a different
// (but non-empty) go_version is not a reason to skip.
func TestUsableBaselineFallback(t *testing.T) {
	good := validBaseline(`{"name":"warm-load","ns_per_op":100,"steady_state":true}`)
	cases := []struct {
		name     string
		files    map[string]string
		wantPath string // base name of the chosen baseline; "" = none usable
		wantWarn []string
	}{
		{
			name: "wrong preset falls back",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0009.json": `{"tool":"pthammer-bench","go_version":"go1.24.0","preset":"Skylake","scenarios":[{"name":"x","ns_per_op":1}]}`,
			},
			wantPath: "BENCH_0001.json",
			wantWarn: []string{`BENCH_0009.json: preset "Skylake"`},
		},
		{
			name: "wrong tool falls back",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0002.json": `{"tool":"benchstat","go_version":"go1.24.0","preset":"SandyBridge","scenarios":[{"name":"x","ns_per_op":1}]}`,
			},
			wantPath: "BENCH_0001.json",
			wantWarn: []string{`BENCH_0002.json: tool "benchstat"`},
		},
		{
			name: "empty go_version falls back",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0002.json": `{"tool":"pthammer-bench","preset":"SandyBridge","scenarios":[{"name":"x","ns_per_op":1}]}`,
			},
			wantPath: "BENCH_0001.json",
			wantWarn: []string{"BENCH_0002.json: missing go_version"},
		},
		{
			name: "corrupt JSON falls back",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0002.json": "{truncated",
			},
			wantPath: "BENCH_0001.json",
			wantWarn: []string{"BENCH_0002.json"},
		},
		{
			name: "no scenarios falls back",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0002.json": `{"tool":"pthammer-bench","go_version":"go1.24.0","preset":"SandyBridge","scenarios":[]}`,
			},
			wantPath: "BENCH_0001.json",
			wantWarn: []string{"BENCH_0002.json: no scenarios"},
		},
		{
			name: "different go_version is accepted",
			files: map[string]string{
				"BENCH_0001.json": good,
				"BENCH_0002.json": `{"tool":"pthammer-bench","go_version":"go1.21.0","preset":"SandyBridge","scenarios":[{"name":"x","ns_per_op":1}]}`,
			},
			wantPath: "BENCH_0002.json",
		},
		{
			name: "all unusable",
			files: map[string]string{
				"BENCH_0001.json": "{truncated",
				"BENCH_0002.json": `{"tool":"benchstat"}`,
			},
			wantPath: "",
			wantWarn: []string{"BENCH_0001.json", "BENCH_0002.json"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, body := range tc.files {
				if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			var warn bytes.Buffer
			path, rep, ok, err := usableBaseline(dir, &warn)
			if err != nil {
				t.Fatal(err)
			}
			if ok != (tc.wantPath != "") {
				t.Fatalf("ok = %v, want %v (warnings: %s)", ok, tc.wantPath != "", warn.String())
			}
			if ok {
				if filepath.Base(path) != tc.wantPath {
					t.Fatalf("picked %s, want %s", filepath.Base(path), tc.wantPath)
				}
				if len(rep.Scenarios) == 0 {
					t.Fatal("chosen baseline came back without scenarios")
				}
			}
			for _, w := range tc.wantWarn {
				if !strings.Contains(warn.String(), w) {
					t.Fatalf("warnings missing %q:\n%s", w, warn.String())
				}
			}
		})
	}
}

// TestRunCheckFailsWhenAllBaselinesUnusable: the gate must refuse to
// vacuously pass when every committed baseline is broken — exit 4, with
// each skipped file named, before any benchmark runs.
func TestRunCheckFailsWhenAllBaselinesUnusable(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"BENCH_0001.json": "{not json",
		"BENCH_0002.json": `{"tool":"pthammer-bench","go_version":"go1.24.0","preset":"Haswell","scenarios":[{"name":"x","ns_per_op":1}]}`,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	measured := false
	code := run([]string{"-C", dir, "-check"}, &stdout, &stderr, func() []scenarioResult {
		measured = true
		return stubMeasure()
	})
	if code != exitBaseline {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitBaseline, stderr.String())
	}
	if measured {
		t.Fatal("benchmarks ran with no usable baseline")
	}
	for _, want := range []string{"BENCH_0001.json", "BENCH_0002.json", "needs a usable"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestRunWriteSkipsCorruptBaseline: in write mode a broken newest
// baseline no longer aborts the run — it is skipped with a warning and
// the report still lands, numbered past the broken file so it is never
// overwritten, with speedups computed against the older good baseline.
func TestRunWriteSkipsCorruptBaseline(t *testing.T) {
	dir := t.TempDir()
	good := validBaseline(`{"name":"warm-load","ns_per_op":200,"steady_state":true}`)
	for name, body := range map[string]string{
		"BENCH_0003.json": good,
		"BENCH_0007.json": "{truncated",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir}, &stdout, &stderr, stubMeasure); code != exitOK {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "skipping baseline") {
		t.Fatalf("missing skip warning:\n%s", stderr.String())
	}
	rep, err := loadReport(filepath.Join(dir, "BENCH_0008.json"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineFile != "BENCH_0003.json" {
		t.Fatalf("baseline_file = %q, want BENCH_0003.json", rep.BaselineFile)
	}
	if got := rep.Scenarios[0].SpeedupVsBaseline; got != 2 {
		t.Fatalf("speedup vs baseline = %v, want 2", got)
	}
}

// TestRunWriteFailureIsDistinct: a report that cannot land on disk is
// exit 3, after measurement, not a baseline or usage error.
func TestRunWriteFailureIsDistinct(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-o", "/nonexistent-dir/out.json"}, &stdout, &stderr, stubMeasure)
	if code != exitWrite {
		t.Fatalf("exit code = %d, want %d (stderr: %s)", code, exitWrite, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no such file or directory") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunCheckVerdicts drives the gate end to end through run(): a
// regression is exit 1, a clean run exit 0, both against a real
// baseline file in the -C directory.
func TestRunCheckVerdicts(t *testing.T) {
	dir := t.TempDir()
	baseline := validBaseline(`{"name":"warm-load","ns_per_op":100,"steady_state":true}`)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0001.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-check"}, &stdout, &stderr, func() []scenarioResult {
		return []scenarioResult{steadyResult("warm-load", 100*maxRegression*1.01, 0)}
	})
	if code != exitRegression || !strings.Contains(stderr.String(), "REGRESSION") {
		t.Fatalf("regression: exit %d, stderr %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-C", dir, "-check"}, &stdout, &stderr, stubMeasure)
	if code != exitOK || !strings.Contains(stdout.String(), "check passed") {
		t.Fatalf("clean run: exit %d, stdout %s, stderr %s", code, stdout.String(), stderr.String())
	}
}

// TestRunWritesNumberedReport: without -o the report lands as the next
// BENCH_NNNN.json in the -C directory and records its baseline.
func TestRunWritesNumberedReport(t *testing.T) {
	dir := t.TempDir()
	baseline := validBaseline(`{"name":"warm-load","ns_per_op":200,"steady_state":true}`)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0007.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir}, &stdout, &stderr, stubMeasure)
	if code != exitOK {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	next := filepath.Join(dir, "BENCH_0008.json")
	rep, err := loadReport(next)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineFile != "BENCH_0007.json" || len(rep.Scenarios) != 1 {
		t.Fatalf("report: %+v", rep)
	}
	if got := rep.Scenarios[0].SpeedupVsBaseline; got != 2 {
		t.Fatalf("speedup vs baseline = %v, want 2", got)
	}
}
