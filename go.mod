module pthammer

go 1.24
